#!/usr/bin/env python3
"""CI service-smoke leg: boot ``repro serve`` and drive the full loop.

A real subprocess server (one pool worker, fresh cache dir) is exercised
through :class:`repro.serve.client.ServeClient`:

1. **Upload → optimize → simulate → job status** all answer with the
   expected payloads; the optimize result round-trips through simulate
   with the exact same total shift count.
2. **Warm cache = zero compute**: a second byte-identical optimize
   request is answered from the content-keyed result cache — asserted via
   the server's own ``/v1/metrics`` (``pool.dispatches`` unchanged,
   ``serve.cache.hits`` advanced) rather than timing heuristics.
3. **Batched == single**: a burst of concurrent simulate requests for
   the same (trace, geometry) coalesces (``serve.batches`` grows by less
   than the request count) and every response is bit-identical to the
   locally computed vectorized result.
4. **Async jobs**: ``wait=false`` returns 202 + job id; polling reaches
   ``done`` with the same result payload.
5. **Clean shutdown**: ``/v1/shutdown`` exits the process with rc 0 and
   leaves no worker processes behind.

The server log lands at ``service-smoke-server.log`` (uploaded as a CI
artifact on failure).  Exit code 0 iff every gate holds.
"""

import concurrent.futures
import json
import os
import random
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

LOG_PATH = Path("service-smoke-server.log")
NUM_ITEMS = 24
NUM_ACCESSES = 4000
SIM_BURST = 8

CONFIG = {"words_per_dbc": 8, "num_ports": 2, "policy": "lazy"}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def gate(name: str, ok: bool, detail: str = "") -> None:
    status = "ok" if ok else "FAIL"
    print(f"[smoke] {name}: {status} {detail}".rstrip())
    if not ok:
        fail(f"{name} {detail}".rstrip())


def counter(metrics: dict, name: str) -> float:
    """Sum every labelled series of one counter in a metrics snapshot."""
    total = 0.0
    for key, value in (metrics.get("counters") or {}).items():
        if key == name or key.startswith(name + "{"):
            total += value
    return total


def main() -> int:
    cache_dir = tempfile.mkdtemp(prefix="repro-smoke-cache-")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    env["REPRO_CACHE_DIR"] = cache_dir
    LOG_PATH.unlink(missing_ok=True)

    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--pool-workers",
            "1",
            "--log",
            str(LOG_PATH),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        announce = json.loads(proc.stdout.readline())
        gate("announce", announce.get("event") == "listening", str(announce))
        port = announce["port"]

        from repro.serve.client import wait_for_server

        client = wait_for_server("127.0.0.1", port)

        # -- 1. upload → optimize → simulate → status -------------------
        rng = random.Random(2015)
        accesses = [
            (f"var{rng.randrange(NUM_ITEMS)}", rng.choice("RW"))
            for _ in range(NUM_ACCESSES)
        ]
        uploaded = client.upload_trace("smoke", accesses)
        trace_id = uploaded["trace_id"]
        gate(
            "upload",
            uploaded["num_accesses"] == NUM_ACCESSES
            and uploaded["num_items"] == NUM_ITEMS,
            trace_id[:12],
        )

        cold = client.optimize(trace_id, config=CONFIG)
        gate(
            "optimize-cold",
            cold["state"] == "done" and not cold["cached"],
            f"shifts={cold['result']['total_shifts']}",
        )
        job_status = client.job(cold["job_id"])
        gate("job-status", job_status["state"] == "done", cold["job_id"])

        metrics = client.metrics()
        dispatches_cold = counter(metrics, "pool.dispatches")
        hits_cold = counter(metrics, "serve.cache.hits")
        gate("pool-used-cold", dispatches_cold >= 1, f"{dispatches_cold:g}")

        # -- 2. identical request → pure cache hit ----------------------
        warm = client.optimize(trace_id, config=CONFIG)
        metrics = client.metrics()
        gate("optimize-warm-cached", bool(warm["cached"]))
        gate(
            "warm-zero-dispatch",
            counter(metrics, "pool.dispatches") == dispatches_cold,
            f"{counter(metrics, 'pool.dispatches'):g} == {dispatches_cold:g}",
        )
        gate(
            "warm-cache-hit-counted",
            counter(metrics, "serve.cache.hits") > hits_cold,
        )
        # A hit reports runtime 0.0 and a `cache: hit` marker by design;
        # the *answer* — placement and cost — must be byte-identical.
        gate(
            "warm-identical",
            warm["result"]["placement"] == cold["result"]["placement"]
            and warm["result"]["total_shifts"]
            == cold["result"]["total_shifts"],
            f"shifts={warm['result']['total_shifts']}",
        )
        gate(
            "warm-marked-hit",
            warm["result"]["details"].get("cache") == "hit",
        )

        # -- 3. concurrent simulate burst coalesces, bit-identical ------
        from repro.dwm.config import DWMConfig
        from repro.memory.batch_sim import simulate_vectorized
        from repro.trace.model import AccessTrace

        local_trace = AccessTrace(accesses, name="smoke")
        local_config = DWMConfig.for_items(
            NUM_ITEMS,
            words_per_dbc=CONFIG["words_per_dbc"],
            num_ports=CONFIG["num_ports"],
            port_policy=CONFIG["policy"],
        )
        placement_payload = cold["result"]["placement"]
        from repro.core.placement import Placement

        expected = simulate_vectorized(
            local_trace,
            local_config,
            Placement(
                {k: tuple(v) for k, v in placement_payload.items()}
            ),
        )
        batches_before = counter(client.metrics(), "serve.batches")
        with concurrent.futures.ThreadPoolExecutor(SIM_BURST) as pool:
            futures = [
                pool.submit(
                    client.simulate, trace_id, placement_payload, config=CONFIG
                )
                for _ in range(SIM_BURST)
            ]
            responses = [f.result() for f in futures]
        batches_after = counter(client.metrics(), "serve.batches")
        gate(
            "simulate-bit-identical",
            all(r["shifts"] == expected.shifts for r in responses),
            f"shifts={expected.shifts}",
        )
        fresh = [r for r in responses if r["details"].get("cache") != "hit"]
        gate(
            "simulate-coalesced",
            0 < batches_after - batches_before < SIM_BURST
            or len(fresh) <= 1,
            f"batches +{batches_after - batches_before:g} "
            f"for {len(fresh)} uncached of {SIM_BURST}",
        )

        # -- 4. async job path ------------------------------------------
        ticket = client.optimize(
            trace_id,
            method="random",
            config=CONFIG,
            kwargs={"seed": 7},
            wait=False,
        )
        gate("async-accepted", ticket["state"] in ("queued", "running"))
        finished = client.wait_for_job(ticket["job_id"], timeout=120)
        gate(
            "async-done",
            finished["state"] == "done",
            f"shifts={finished.get('result', {}).get('total_shifts')}",
        )

        # -- 5. clean shutdown ------------------------------------------
        client.shutdown()
        rc = proc.wait(timeout=30)
        gate("shutdown-rc", rc == 0, f"rc={rc}")
        print("[smoke] all gates passed")
        return 0
    finally:
        # SIGTERM first: the server tears down its pool workers (which
        # share our stderr pipe — a bare kill would orphan them and make
        # the read below block forever).
        stderr = ""
        if proc.poll() is None:
            proc.terminate()
        try:
            _, stderr = proc.communicate(timeout=20)
        except subprocess.TimeoutExpired:
            proc.kill()
            try:
                _, stderr = proc.communicate(timeout=5)
            except subprocess.TimeoutExpired:
                pass
        if stderr:
            print(f"[smoke] server stderr:\n{stderr}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
