#!/usr/bin/env python3
"""CI disk-full leg: prove writes abort typed and leave no partial artifact.

Caps the maximum file size this process may create (``RLIMIT_FSIZE``) so
any write past the cap fails with ``EFBIG`` (``SIGXFSZ`` is ignored so
the failure surfaces as ``OSError``), then drives every persisted
artifact family into the wall:

1. **Atomic writes** (``repro.util.atomic_write``) — must raise
   ``OSError``, leave the original file untouched, and leave no ``*.tmp``
   stray behind.
2. **Result cache** (``ResultCache.put``) — must swallow the failure (a
   cache that cannot persist degrades to a cache that never hits), leave
   no partial shard, and keep ``get`` returning ``None`` cleanly.
3. **Binary trace pack** (``repro.trace.binio.pack``) — must raise
   ``OSError``; the torn output must then be diagnosed by ``repro.fsck``
   (salvageable or unrecoverable, never misread as healthy).
4. **Checkpoint journal append** — must raise ``OSError``; the journal
   must still scan to a clean record boundary after fsck repair.
5. **CLI** (``repro place -o``) — must exit 1 with a one-line typed
   ``error:`` message (no traceback) and write no partial output file.

Exit code 0 iff all five hold.  POSIX-only (``RLIMIT_FSIZE``); prints a
skip message and exits 0 elsewhere.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

#: Writes under the cap succeed; the big payloads below blow past it.
CAP_BYTES = 64 * 1024
BIG = "x" * (CAP_BYTES + 4096)

CHECKS = []


def check(name):
    def decorate(fn):
        CHECKS.append((name, fn))
        return fn

    return decorate


def no_temps(root: Path) -> bool:
    return not list(root.rglob("*.tmp"))


@check("atomic_write aborts typed, original intact, no temp stray")
def check_atomic_write(root: Path) -> None:
    from repro.util import atomic_write_text

    target = root / "atomic" / "out.txt"
    target.parent.mkdir(parents=True)
    target.write_text("original")
    try:
        atomic_write_text(target, BIG)
    except OSError:
        pass
    else:
        raise AssertionError("oversized atomic write did not raise OSError")
    assert target.read_text() == "original", "original was clobbered"
    assert no_temps(root), "atomic_write leaked a temp file"


@check("cache.put degrades to never-hits, no partial shard")
def check_cache_put(root: Path) -> None:
    from repro.analysis.cache import ResultCache

    cache = ResultCache(root / "cache")
    key = "ab" + "0" * 62
    cache.put(key, {"blob": BIG})  # must not raise
    assert cache.get(key) is None, "partial shard served as a hit"
    shards = list((root / "cache").rglob("*.json"))
    assert shards == [], f"partial shard survived: {shards}"
    assert no_temps(root / "cache"), "cache leaked a temp file"


@check("pack aborts typed; fsck diagnoses the torn file")
def check_pack(root: Path) -> None:
    from repro.fsck import fsck_rtb

    path = root / "big.rtb"
    from repro.trace.binio import pack

    try:
        pack(
            ((f"item{i % 64}", "R") for i in range(CAP_BYTES)),
            path,
            name="diskfull",
        )
    except OSError:
        pass
    else:
        raise AssertionError("oversized pack did not raise OSError")
    report = fsck_rtb(path, repair=True)
    assert report.status in ("repaired", "unrecoverable"), report.render()


@check("journal append aborts typed; fsck repair restores a clean tail")
def check_journal(root: Path) -> None:
    from repro.analysis.checkpoint import CheckpointJournal, scan_journal
    from repro.fsck import fsck_journal

    path = root / "run.journal"
    journal = CheckpointJournal(path)
    journal.record("small", {"ok": True})
    try:
        journal.record("huge", {"blob": BIG})
    except OSError:
        pass
    else:
        raise AssertionError("oversized journal append did not raise OSError")
    journal.close()
    fsck_journal(path, repair=True)
    entries, good_offset, corrupt = scan_journal(path)
    assert list(entries) == ["small"] and corrupt == 0
    assert path.stat().st_size == good_offset, "torn tail survived repair"


@check("CLI exits 1 with a typed one-line error, no partial output")
def check_cli(root: Path) -> None:
    # A fresh interpreter so the child (not this capped process) owns the
    # limit; the trace JSON itself stays under the cap, the report doesn't.
    trace_path = root / "t.jsonl"
    from repro.trace.synthetic import zipf_trace
    from repro.trace import io as trace_io

    trace_io.save_jsonl(
        zipf_trace(num_items=24, num_accesses=2000, seed=3), trace_path
    )
    out = root / "placement.json"
    child = (
        "import resource, signal, sys\n"
        "signal.signal(signal.SIGXFSZ, signal.SIG_IGN)\n"
        f"resource.setrlimit(resource.RLIMIT_FSIZE, ({CAP_BYTES // 64}, "
        f"{CAP_BYTES // 64}))\n"
        "from repro.cli import main\n"
        f"sys.exit(main(['place', {str(trace_path)!r}, '-o', {str(out)!r}]))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", child],
        capture_output=True,
        text=True,
        env=dict(os.environ, PYTHONPATH="src"),
        cwd=Path(__file__).resolve().parents[1],
    )
    assert proc.returncode == 1, (proc.returncode, proc.stderr)
    assert "error:" in proc.stderr, proc.stderr
    assert "Traceback" not in proc.stderr, proc.stderr
    assert not out.exists(), "partial placement JSON survived"
    assert no_temps(root), "CLI write leaked a temp file"


def main() -> int:
    if not hasattr(signal, "SIGXFSZ") or not sys.platform.startswith(
        ("linux", "darwin")
    ):
        print("diskfull check: RLIMIT_FSIZE semantics need POSIX; skipping")
        return 0
    import resource

    signal.signal(signal.SIGXFSZ, signal.SIG_IGN)
    resource.setrlimit(resource.RLIMIT_FSIZE, (CAP_BYTES, CAP_BYTES))
    failures = 0
    with tempfile.TemporaryDirectory(prefix="diskfull-") as tmp:
        for name, fn in CHECKS:
            root = Path(tmp) / fn.__name__
            root.mkdir()
            try:
                fn(root)
            except AssertionError as exc:
                failures += 1
                print(f"FAIL {name}: {exc}")
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                failures += 1
                print(f"FAIL {name}: unexpected {type(exc).__name__}: {exc}")
            else:
                print(f"ok   {name}")
    print(
        "diskfull check:"
        f" {len(CHECKS) - failures}/{len(CHECKS)} guarantees hold"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
