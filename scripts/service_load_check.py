#!/usr/bin/env python3
"""CI service-load leg: overload a small server and prove it sheds cleanly.

A deliberately under-provisioned ``repro serve`` (one pool worker, token
bucket ``--rate 30 --burst 5``, compute queue bound 4) is hammered by
many concurrent clients on a fully cached request, then killed mid-load:

1. **Typed shedding, never hangs** — under sustained overload at least
   one request is rejected with the typed 429 (``RateLimited``); every
   request (success or rejection) completes within a hard wall-clock
   bound; nothing blocks on an unbounded queue.
2. **Cached-path latency** — p95 latency of the *successful* requests
   stays under a fixed bound: admission plus a cache hit is the whole
   code path, so warm traffic must stay fast even while being shed
   around.
3. **Clean shutdown under fire** — SIGTERM lands while requests are in
   flight; the process must exit promptly with the conventional rc 130
   (or 0 if the teardown won the race), leaving **no orphan worker
   processes** (found via an environment token scan) and **no leaked
   shared-memory segments or temp strays** (the same leak checks the
   chaos harness enforces).

The server log lands at ``service-load-server.log`` (uploaded as a CI
artifact on failure).  Exit code 0 iff every gate holds.
"""

import concurrent.futures
import json
import os
import random
import signal
import statistics
import subprocess
import sys
import tempfile
import time
import uuid
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

LOG_PATH = Path("service-load-server.log")
CLIENTS = 16
REQUESTS_PER_CLIENT = 12
HARD_WALL_SECONDS = 10.0
P95_BOUND_SECONDS = 2.0
CONFIG = {"words_per_dbc": 8, "num_ports": 1}
TOKEN_VAR = "REPRO_LOAD_CHECK_TOKEN"


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def gate(name: str, ok: bool, detail: str = "") -> None:
    status = "ok" if ok else "FAIL"
    print(f"[load] {name}: {status} {detail}".rstrip())
    if not ok:
        fail(f"{name} {detail}".rstrip())


def shm_snapshot() -> set:
    root = Path("/dev/shm")
    if not root.is_dir():
        return set()
    return {entry.name for entry in root.iterdir()}


def processes_with_token(token: str) -> list:
    """PIDs whose environment carries our token (Linux /proc scan)."""
    found = []
    proc_root = Path("/proc")
    if not proc_root.is_dir():
        return found
    needle = f"{TOKEN_VAR}={token}".encode()
    for entry in proc_root.iterdir():
        if not entry.name.isdigit() or int(entry.name) == os.getpid():
            continue
        try:
            environ = (entry / "environ").read_bytes()
        except OSError:
            continue
        if needle in environ:
            found.append(int(entry.name))
    return found


def spawn_server(env: dict) -> tuple:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--pool-workers",
            "1",
            "--rate",
            "30",
            "--burst",
            "5",
            "--max-queue",
            "4",
            "--log",
            str(LOG_PATH),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    announce = json.loads(proc.stdout.readline())
    if announce.get("event") != "listening":
        proc.kill()
        fail(f"bad announce: {announce}")
    return proc, announce["port"]


def reap(proc) -> str:
    """Terminate the server (SIGTERM first) and return its stderr."""
    stderr = ""
    if proc.poll() is None:
        proc.terminate()
    try:
        _, stderr = proc.communicate(timeout=20)
    except subprocess.TimeoutExpired:
        proc.kill()
        try:
            _, stderr = proc.communicate(timeout=5)
        except subprocess.TimeoutExpired:
            pass
    return stderr


def main() -> int:
    token = uuid.uuid4().hex
    cache_dir = tempfile.mkdtemp(prefix="repro-load-cache-")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    env["REPRO_CACHE_DIR"] = cache_dir
    env[TOKEN_VAR] = token
    LOG_PATH.unlink(missing_ok=True)
    shm_before = shm_snapshot()

    from repro.serve.client import ServeClient, wait_for_server
    from repro.serve.protocol import Overloaded, RateLimited, ServeError

    proc, port = spawn_server(env)
    stderr = ""
    try:
        client = wait_for_server("127.0.0.1", port)

        rng = random.Random(42)
        accesses = [
            (f"var{rng.randrange(16)}", rng.choice("RW")) for _ in range(1500)
        ]
        uploaded = client.upload_trace("load", accesses)
        trace_id = uploaded["trace_id"]

        def warm_optimize():
            deadline = time.monotonic() + 30.0
            while True:
                try:
                    return client.optimize(trace_id, config=CONFIG)
                except (RateLimited, Overloaded):
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.2)

        warm = warm_optimize()
        gate("warmup", warm["state"] == "done")

        # -- overload the cached path -----------------------------------
        def hammer(worker_index: int) -> list:
            worker = ServeClient("127.0.0.1", port, timeout=HARD_WALL_SECONDS)
            samples = []
            for _ in range(REQUESTS_PER_CLIENT):
                start = time.monotonic()
                try:
                    response = worker.optimize(trace_id, config=CONFIG)
                    outcome = (
                        "hit" if response.get("cached") else "computed"
                    )
                except RateLimited:
                    outcome = "429"
                except Overloaded:
                    outcome = "503"
                except ServeError as exc:
                    outcome = f"error:{exc.code}"
                samples.append((outcome, time.monotonic() - start))
                # Small pacing so the run spans a few bucket-refill
                # periods: still far above 30 req/s in aggregate, but
                # enough admitted successes to measure a p95 on.
                time.sleep(0.02)
            return samples

        with concurrent.futures.ThreadPoolExecutor(CLIENTS) as pool:
            all_samples = [
                sample
                for chunk in pool.map(hammer, range(CLIENTS))
                for sample in chunk
            ]

        outcomes = {}
        for outcome, _ in all_samples:
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
        print(f"[load] outcomes: {outcomes}")

        gate("typed-429-shedding", outcomes.get("429", 0) >= 1)
        slowest = max(seconds for _, seconds in all_samples)
        gate(
            "never-hangs",
            slowest < HARD_WALL_SECONDS,
            f"slowest={slowest:.3f}s",
        )
        unexpected = [o for o in outcomes if o.startswith("error:")]
        gate("no-untyped-failures", not unexpected, str(unexpected))
        hits = sorted(s for o, s in all_samples if o == "hit")
        gate("some-successes", len(hits) >= 5, f"{len(hits)} hits")
        p95 = hits[max(0, int(len(hits) * 0.95) - 1)]
        gate(
            "cached-p95",
            p95 < P95_BOUND_SECONDS,
            f"p95={p95:.3f}s median={statistics.median(hits):.3f}s",
        )

        # -- SIGTERM while requests are in flight ------------------------
        def background_fire():
            worker = ServeClient("127.0.0.1", port, timeout=HARD_WALL_SECONDS)
            try:
                for _ in range(50):
                    worker.optimize(trace_id, config=CONFIG)
            except Exception:
                pass  # connection errors expected once the server dies

        with concurrent.futures.ThreadPoolExecutor(4) as pool:
            for _ in range(4):
                pool.submit(background_fire)
            time.sleep(0.2)
            proc.send_signal(signal.SIGTERM)
            start = time.monotonic()
            try:
                rc = proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                rc = None
        elapsed = time.monotonic() - start
        gate(
            "sigterm-exit",
            rc in (0, 130),
            f"rc={rc} after {elapsed:.1f}s",
        )
        stderr = proc.stderr.read() or ""

        # -- leak checks (chaos-harness style) ---------------------------
        deadline = time.monotonic() + 10.0
        orphans = processes_with_token(token)
        while orphans and time.monotonic() < deadline:
            time.sleep(0.2)
            orphans = processes_with_token(token)
        gate("no-orphan-workers", not orphans, str(orphans))

        shm_leaked = shm_snapshot() - shm_before
        gate("no-shm-leak", not shm_leaked, str(sorted(shm_leaked)))

        strays = list(Path(cache_dir).rglob("*.tmp"))
        gate("no-tmp-strays", not strays, str(strays))
        print("[load] all gates passed")
        return 0
    finally:
        stderr = (reap(proc) or "") + stderr
        if stderr:
            print(f"[load] server stderr:\n{stderr}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
