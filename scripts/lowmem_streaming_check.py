#!/usr/bin/env python3
"""CI low-memory leg: prove the out-of-core path works where in-memory can't.

End-to-end under an address-space cap (``RLIMIT_AS``):

1. **Pack** a 10⁶-access synthetic trace straight from a generator into
   the binary format — no in-memory trace ever exists.
2. **Cap** the address space at the post-import footprint plus a headroom
   far smaller than the materialised trace needs.
3. **Streaming-simulate** the packed trace under the cap (two chunk sizes,
   results must agree) — this must succeed.
4. **Materialise + vectorized-simulate** the same trace — this must die
   with ``MemoryError``, demonstrating the cap is real and the in-memory
   engine cannot satisfy it.

Exit code 0 iff all four hold.  Linux-only (``RLIMIT_AS``); prints a
skip message and exits 0 elsewhere.
"""

import random
import resource
import sys
import tempfile
from pathlib import Path

NUM_ITEMS = 256
NUM_ACCESSES = 1_000_000
CHUNK_SIZE = 1 << 15
#: Address-space headroom above the post-pack footprint.  Far below the
#: ~160 MiB the materialised trace + vectorized scan need, comfortably
#: above the streaming engine's ~20 MiB working set.
HEADROOM_BYTES = 96 * 2**20


def synthetic_accesses(num_items: int, num_accesses: int, seed: int = 23):
    """Markov-ish access stream generated one record at a time."""
    rng = random.Random(seed)
    current = 0
    for _ in range(num_accesses):
        if rng.random() < 0.85:
            current = (current + rng.choice((-1, 0, 1))) % num_items
        else:
            current = rng.randrange(num_items)
        kind = "W" if rng.random() < 0.2 else "R"
        yield f"item{current}", kind


def vm_size_bytes() -> int:
    with open("/proc/self/status", encoding="ascii") as status:
        for line in status:
            if line.startswith("VmSize:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("VmSize not found in /proc/self/status")


def main() -> int:
    if not sys.platform.startswith("linux"):
        print("lowmem check: RLIMIT_AS semantics are Linux-only; skipping")
        return 0

    from repro.core.placement import Placement, Slot
    from repro.dwm.config import DWMConfig
    from repro.memory.batch_sim import simulate_vectorized
    from repro.memory.stream_sim import simulate_streaming
    from repro.trace.binio import open_binary, pack

    with tempfile.TemporaryDirectory(prefix="lowmem-") as tmp:
        path = Path(tmp) / "lowmem.rtb"
        count = pack(
            synthetic_accesses(NUM_ITEMS, NUM_ACCESSES),
            path,
            name="lowmem",
        )
        stream = open_binary(path)
        print(
            f"packed {count} accesses "
            f"({path.stat().st_size / 2**20:.1f} MiB) to {path}"
        )

        config = DWMConfig.for_items(
            NUM_ITEMS, words_per_dbc=32, num_ports=2, port_policy="lazy"
        )
        placement = Placement(
            {
                item: Slot(i // config.words_per_dbc, i % config.words_per_dbc)
                for i, item in enumerate(stream.items)
            }
        )

        cap = vm_size_bytes() + HEADROOM_BYTES
        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        resource.setrlimit(resource.RLIMIT_AS, (cap, hard))
        print(f"address space capped at {cap / 2**20:.0f} MiB")

        results = [
            simulate_streaming(
                stream, config, placement, chunk_size=size, validate=False
            )
            for size in (CHUNK_SIZE, CHUNK_SIZE * 4)
        ]
        if len({(r.shifts, r.per_dbc_shifts) for r in results}) != 1:
            print("FAIL: chunk sizes disagree under the cap")
            return 1
        print(
            f"streaming OK under cap: {results[0].shifts} shifts, "
            f"peak_rss={results[0].details['peak_rss_bytes'] / 2**20:.0f} MiB"
        )

        try:
            trace = stream.to_trace()
            simulate_vectorized(trace, config, placement, validate=False)
        except MemoryError:
            print("in-memory engine hit MemoryError under the cap (expected)")
        else:
            print(
                "FAIL: the in-memory engine fit under the cap — "
                "lower HEADROOM_BYTES so this leg actually bites"
            )
            return 1
        finally:
            resource.setrlimit(resource.RLIMIT_AS, (soft, hard))
    print("lowmem streaming check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
