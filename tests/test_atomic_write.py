"""Tests for the shared atomic-write helper (``repro.util``)."""

from __future__ import annotations

import os

import pytest

from repro.util import (
    TMP_SUFFIX,
    atomic_write,
    atomic_write_bytes,
    atomic_write_text,
)


def _no_temps(directory) -> bool:
    return not any(name.endswith(TMP_SUFFIX) for name in os.listdir(directory))


class TestAtomicWrite:
    def test_creates_file_with_content(self, tmp_path):
        target = tmp_path / "out.json"
        with atomic_write(target) as handle:
            handle.write("hello")
        assert target.read_text() == "hello"
        assert _no_temps(tmp_path)

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_failure_leaves_original_and_no_temp(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("original")
        with pytest.raises(RuntimeError):
            with atomic_write(target) as handle:
                handle.write("partial garbage")
                raise RuntimeError("writer died mid-stream")
        assert target.read_text() == "original"
        assert _no_temps(tmp_path)

    def test_failure_before_first_write_leaves_nothing(self, tmp_path):
        target = tmp_path / "never.txt"
        with pytest.raises(ValueError):
            with atomic_write(target):
                raise ValueError("early")
        assert not target.exists()
        assert _no_temps(tmp_path)

    def test_makes_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "c.txt"
        atomic_write_text(target, "deep")
        assert target.read_text() == "deep"

    def test_bytes_variant(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"\x00\x01\x02")
        assert target.read_bytes() == b"\x00\x01\x02"
        assert _no_temps(tmp_path)

    def test_temp_lives_in_target_directory(self, tmp_path):
        # Same-directory temp is what makes os.replace atomic; a temp in
        # /tmp would turn the rename into a copy on another filesystem.
        target = tmp_path / "out.txt"
        seen: list[str] = []
        with atomic_write(target) as handle:
            seen.append(handle.name)
            handle.write("x")
        assert os.path.dirname(seen[0]) == str(tmp_path)
        assert seen[0].endswith(TMP_SUFFIX)
