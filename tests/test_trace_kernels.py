"""Functional-correctness tests for the instrumented benchmark kernels.

The kernels must compute *correct* results (they are real executions whose
access sequences we trace), so each test checks the kernel's functional
output against an independent reference — numpy, zlib, or a clean-room
re-implementation.
"""

import random
import zlib

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.kernels import (
    KERNELS,
    SWEEP_KERNELS,
    benchmark_suite,
    bitonic_sort_trace,
    conv2d_trace,
    crc32_trace,
    dct8x8_trace,
    dijkstra_trace,
    fft_trace,
    fir_trace,
    histogram_trace,
    iir_trace,
    insertion_sort_trace,
    kmp_trace,
    lms_trace,
    matmul_trace,
    quicksort_trace,
    spmv_trace,
    transpose_trace,
    viterbi_trace,
    _rand_ints,
    _rand_values,
)


class TestRegistry:
    def test_seventeen_kernels(self):
        assert len(KERNELS) == 17

    def test_sweep_kernels_subset(self):
        assert set(SWEEP_KERNELS) <= set(KERNELS)

    def test_benchmark_suite_all(self):
        suite = benchmark_suite()
        assert set(suite) == set(KERNELS)
        assert all(len(trace) > 0 for trace in suite.values())

    def test_benchmark_suite_selection(self):
        suite = benchmark_suite(("fir", "crc32"))
        assert set(suite) == {"fir", "crc32"}

    def test_benchmark_suite_unknown_raises(self):
        with pytest.raises(TraceError):
            benchmark_suite(("nope",))

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernels_deterministic(self, name):
        assert KERNELS[name]() == KERNELS[name]()

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_traces_have_reads_and_items(self, name):
        trace = KERNELS[name]()
        assert trace.num_items > 0
        reads, _writes = trace.read_write_counts()
        assert reads > 0


class TestFIR:
    def test_matches_direct_convolution(self):
        taps, samples, seed = 6, 20, 1
        trace = fir_trace(taps=taps, samples=samples, seed=seed)
        coeffs = _rand_values(taps, seed)
        inputs = _rand_values(samples, seed + 1)
        expected = []
        for n in range(samples):
            acc = 0.0
            for k in range(taps):
                if n - k >= 0:
                    acc += coeffs[k] * inputs[n - k]
            expected.append(acc)
        assert trace.metadata["result"] == pytest.approx(expected)

    def test_trace_length_scales_with_samples(self):
        short = fir_trace(taps=4, samples=8)
        long = fir_trace(taps=4, samples=16)
        assert len(long) > len(short)


class TestIIR:
    def test_matches_reference_biquad_cascade(self):
        sections, samples, seed = 2, 16, 2
        trace = iir_trace(sections=sections, samples=samples, seed=seed)
        coeffs = _rand_values(5 * sections, seed, -0.4, 0.4)
        inputs = _rand_values(samples, seed + 1)
        state = [0.0] * (2 * sections)
        expected = []
        for sample in inputs:
            x = sample
            for s in range(sections):
                b0, b1, b2, a1, a2 = coeffs[5 * s : 5 * s + 5]
                w1, w2 = state[2 * s], state[2 * s + 1]
                w0 = x - a1 * w1 - a2 * w2
                x = b0 * w0 + b1 * w1 + b2 * w2
                state[2 * s + 1] = w1
                state[2 * s] = w0
            expected.append(x)
        assert trace.metadata["result"] == pytest.approx(expected)


class TestMatmul:
    def test_matches_numpy(self):
        size, seed = 4, 3
        trace = matmul_trace(size=size, seed=seed)
        a = np.array(_rand_values(size * size, seed)).reshape(size, size)
        b = np.array(_rand_values(size * size, seed + 1)).reshape(size, size)
        expected = (a @ b).ravel()
        assert trace.metadata["result"] == pytest.approx(expected.tolist())


class TestFFT:
    def test_matches_numpy_fft(self):
        size, seed = 16, 4
        trace = fft_trace(size=size, seed=seed)
        inputs = _rand_values(size, seed)
        expected = np.fft.fft(inputs)
        real, imag = trace.metadata["result"]
        assert real == pytest.approx(expected.real.tolist(), abs=1e-9)
        assert imag == pytest.approx(expected.imag.tolist(), abs=1e-9)

    def test_non_power_of_two_raises(self):
        with pytest.raises(TraceError):
            fft_trace(size=12)


class TestDCT:
    def test_dc_coefficient_is_block_sum(self):
        trace = dct8x8_trace(blocks=2, seed=5)
        for block_index, out in enumerate(trace.metadata["result"]):
            block = _rand_values(64, 5 + block_index, 0.0, 255.0)
            assert out[0] == pytest.approx(sum(block))

    def test_one_output_block_per_input_block(self):
        trace = dct8x8_trace(blocks=3)
        assert len(trace.metadata["result"]) == 3


class TestSorts:
    def test_insertion_sort_sorts(self):
        trace = insertion_sort_trace(length=16, seed=8)
        result = trace.metadata["result"]
        assert result == sorted(result)

    def test_insertion_sort_is_permutation(self):
        trace = insertion_sort_trace(length=16, seed=8)
        assert sorted(trace.metadata["result"]) == sorted(_rand_ints(16, 8))

    def test_quicksort_sorts(self):
        trace = quicksort_trace(length=20, seed=9)
        result = trace.metadata["result"]
        assert result == sorted(result)

    def test_quicksort_is_permutation(self):
        trace = quicksort_trace(length=20, seed=9)
        assert sorted(trace.metadata["result"]) == sorted(_rand_ints(20, 9))


class TestHistogram:
    def test_total_count_equals_samples(self):
        trace = histogram_trace(bins=8, samples=100, seed=10)
        assert sum(trace.metadata["result"]) == 100

    def test_counts_match_reference(self):
        bins, samples, seed = 8, 100, 10
        trace = histogram_trace(bins=bins, samples=samples, seed=seed)
        expected = [0] * bins
        for value in _rand_ints(samples, seed):
            expected[value % bins] += 1
        assert trace.metadata["result"] == expected


class TestKMP:
    def test_planted_pattern_found(self):
        text_length = 160
        trace = kmp_trace(text_length=text_length, pattern_length=8, seed=11)
        assert text_length // 3 in trace.metadata["result"]

    def test_matches_in_range(self):
        trace = kmp_trace(text_length=120, pattern_length=6, seed=2)
        for position in trace.metadata["result"]:
            assert 0 <= position <= 120 - 6


class TestDijkstra:
    def test_source_distance_zero(self):
        trace = dijkstra_trace(nodes=10, seed=12)
        assert trace.metadata["result"][0] == 0.0

    def test_all_reachable_with_positive_distances(self):
        trace = dijkstra_trace(nodes=10, seed=12)
        distances = trace.metadata["result"]
        assert all(d < float("inf") for d in distances)
        assert all(d >= 0 for d in distances)

    def test_ring_bound_holds(self):
        # The generator guarantees a ring with weights <= 10, so every node
        # is at most (nodes/2)*10 away from the source.
        nodes = 8
        trace = dijkstra_trace(nodes=nodes, seed=1)
        assert max(trace.metadata["result"]) <= 10 * nodes


class TestCRC32:
    def test_matches_zlib(self):
        num_bytes, seed = 64, 13
        trace = crc32_trace(num_bytes=num_bytes, seed=seed)
        buffer = bytes(_rand_ints(num_bytes, seed))
        assert trace.metadata["result"] == zlib.crc32(buffer)

    def test_different_data_different_crc(self):
        a = crc32_trace(num_bytes=32, seed=1).metadata["result"]
        b = crc32_trace(num_bytes=32, seed=2).metadata["result"]
        assert a != b


class TestLMS:
    def test_matches_reference_implementation(self):
        taps, samples, seed = 4, 24, 6
        trace = lms_trace(taps=taps, samples=samples, seed=seed)
        rng = random.Random(seed)
        weights = [0.0] * taps
        delay = [0.0] * taps
        expected = []
        mu = 0.05
        for _ in range(samples):
            sample = rng.uniform(-1, 1)
            desired = 0.7 * sample + rng.uniform(-0.05, 0.05)
            delay = [sample] + delay[:-1]
            estimate = sum(w * x for w, x in zip(weights, delay))
            err = desired - estimate
            expected.append(err)
            weights = [w + mu * err * x for w, x in zip(weights, delay)]
        assert trace.metadata["result"] == pytest.approx(expected)

    def test_filter_converges(self):
        trace = lms_trace(taps=8, samples=96, seed=6)
        errors = [abs(e) for e in trace.metadata["result"]]
        quarter = len(errors) // 4
        assert sum(errors[-quarter:]) < sum(errors[:quarter])


class TestViterbi:
    def test_path_states_in_range(self):
        states, steps = 5, 12
        trace = viterbi_trace(states=states, steps=steps, seed=14)
        path = trace.metadata["result"]
        assert len(path) == steps
        assert all(0 <= s < states for s in path)

    def test_matches_reference_dp(self):
        import random as random_module

        states, steps, seed = 4, 8, 14
        trace = viterbi_trace(states=states, steps=steps, seed=seed)
        rng = random_module.Random(seed)
        trans = [
            [rng.uniform(-2.0, -0.1) for _ in range(states)]
            for _ in range(states)
        ]
        # Kernel builds transition row-major then emission row-major.
        flat_trans = [value for row in trans for value in row]
        del flat_trans
        emit = [
            [rng.uniform(-2.0, -0.1) for _ in range(steps)]
            for _ in range(states)
        ]
        score = [emit[s][0] for s in range(states)]
        back = [[0] * states for _ in range(steps)]
        for t in range(1, steps):
            new_score = []
            for s in range(states):
                best, best_p = None, 0
                for p in range(states):
                    candidate = score[p] + trans[p][s]
                    if best is None or candidate > best:
                        best, best_p = candidate, p
                new_score.append(best + emit[s][t])
                back[t][s] = best_p
            score = new_score
        final = max(range(states), key=lambda s: score[s])
        path = [final]
        for t in range(steps - 1, 0, -1):
            path.append(back[t][path[-1]])
        path.reverse()
        assert trace.metadata["result"] == path


class TestBitonicSort:
    def test_sorts(self):
        trace = bitonic_sort_trace(length=16, seed=15)
        result = trace.metadata["result"]
        assert result == sorted(result)

    def test_is_permutation(self):
        trace = bitonic_sort_trace(length=16, seed=15)
        assert sorted(trace.metadata["result"]) == sorted(_rand_ints(16, 15))

    def test_data_independent_access_pattern(self):
        """The compare-exchange schedule doesn't depend on the data."""
        a = bitonic_sort_trace(length=8, seed=1)
        b = bitonic_sort_trace(length=8, seed=2)
        assert a.item_sequence == b.item_sequence

    def test_non_power_of_two_raises(self):
        with pytest.raises(TraceError):
            bitonic_sort_trace(length=12)


class TestTranspose:
    def test_matches_numpy(self):
        rows, cols, seed = 4, 6, 16
        trace = transpose_trace(rows=rows, cols=cols, seed=seed)
        source = np.array(_rand_values(rows * cols, seed)).reshape(rows, cols)
        assert trace.metadata["result"] == pytest.approx(
            source.T.ravel().tolist()
        )


class TestSpMV:
    def test_matches_reference(self):
        trace = spmv_trace(size=10, density=0.3, seed=17)
        values, columns, row_ptr = trace.metadata["csr"]
        vector = _rand_values(10, 18)
        expected = []
        for row in range(10):
            acc = 0.0
            for entry in range(row_ptr[row], row_ptr[row + 1]):
                acc += values[entry] * vector[columns[entry]]
            expected.append(acc)
        assert trace.metadata["result"] == pytest.approx(expected)

    def test_invalid_density_raises(self):
        with pytest.raises(TraceError):
            spmv_trace(density=0.0)
        with pytest.raises(TraceError):
            spmv_trace(density=1.5)


class TestConv2D:
    def test_matches_numpy(self):
        image, kernel, seed = 6, 3, 7
        trace = conv2d_trace(image=image, kernel=kernel, seed=seed)
        img = np.array(_rand_values(image * image, seed)).reshape(image, image)
        ker = np.array(_rand_values(kernel * kernel, seed + 1)).reshape(kernel, kernel)
        out_size = image - kernel + 1
        expected = np.zeros((out_size, out_size))
        for r in range(out_size):
            for c in range(out_size):
                expected[r, c] = (img[r : r + kernel, c : c + kernel] * ker).sum()
        assert trace.metadata["result"] == pytest.approx(expected.ravel().tolist())

    def test_kernel_larger_than_image_raises(self):
        with pytest.raises(TraceError):
            conv2d_trace(image=2, kernel=3)
