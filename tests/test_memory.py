"""Unit and differential tests for the memory subsystem."""

import pytest

from repro.core.baselines import declaration_order_placement, random_placement
from repro.core.cost import evaluate_placement, per_dbc_costs
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig, PortPolicy
from repro.dwm.energy import DWMEnergyModel, SRAMEnergyModel
from repro.errors import PlacementError
from repro.memory.result import SimulationResult
from repro.memory.spm import ScratchpadMemory, simulate_placement
from repro.memory.sram import SRAMScratchpad
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace, zipf_trace


@pytest.fixture
def problem():
    trace = markov_trace(12, 300, locality=0.8, seed=31, write_fraction=0.3)
    config = DWMConfig(words_per_dbc=8, num_dbcs=2, port_offsets=(0,))
    return PlacementProblem(trace=trace, config=config)


class TestScratchpadSimulation:
    def test_counts_reads_writes(self, problem):
        placement = declaration_order_placement(problem)
        sim = ScratchpadMemory(problem.config, placement).simulate(problem.trace)
        reads, writes = problem.trace.read_write_counts()
        assert sim.reads == reads
        assert sim.writes == writes
        assert sim.accesses == len(problem.trace)

    def test_per_dbc_shifts_sum(self, problem):
        placement = declaration_order_placement(problem)
        sim = ScratchpadMemory(problem.config, placement).simulate(problem.trace)
        assert sum(sim.per_dbc_shifts) == sim.shifts

    def test_uncovered_item_raises(self, problem):
        placement = Placement({"v0": (0, 0)})
        spm = ScratchpadMemory(problem.config, placement)
        with pytest.raises(PlacementError):
            spm.simulate(problem.trace)

    def test_max_access_shifts_bounded(self, problem):
        placement = random_placement(problem, 0)
        sim = ScratchpadMemory(problem.config, placement).simulate(problem.trace)
        assert 0 <= sim.max_access_shifts <= problem.config.max_shift_distance


class TestDifferentialSimVsEvaluator:
    """The analytical evaluator and the event simulator must agree exactly."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_placements_agree(self, problem, seed):
        placement = random_placement(problem, seed)
        sim = ScratchpadMemory(problem.config, placement).simulate(problem.trace)
        assert sim.shifts == evaluate_placement(problem, placement)

    @pytest.mark.parametrize("ports", [(0,), (0, 7), (3,), (2, 5)])
    def test_port_layouts_agree(self, ports):
        trace = zipf_trace(10, 200, seed=3)
        config = DWMConfig(words_per_dbc=8, num_dbcs=2, port_offsets=ports)
        problem = PlacementProblem(trace=trace, config=config)
        placement = random_placement(problem, 1)
        sim = ScratchpadMemory(config, placement).simulate(trace)
        assert sim.shifts == evaluate_placement(problem, placement)

    def test_eager_policy_agrees(self):
        trace = markov_trace(8, 150, seed=2)
        config = DWMConfig(
            words_per_dbc=8, num_dbcs=1, port_offsets=(0,),
            port_policy=PortPolicy.EAGER,
        )
        problem = PlacementProblem(trace=trace, config=config)
        placement = declaration_order_placement(problem)
        sim = ScratchpadMemory(config, placement).simulate(trace)
        assert sim.shifts == evaluate_placement(problem, placement)

    def test_per_dbc_attribution_agrees(self, problem):
        placement = random_placement(problem, 2)
        sim = ScratchpadMemory(problem.config, placement).simulate(problem.trace)
        analytical = per_dbc_costs(problem, placement)
        for dbc, shifts in enumerate(sim.per_dbc_shifts):
            assert analytical.get(dbc, 0) == shifts


class TestFunctionalSimulation:
    """The bit-true device model must agree and preserve data integrity."""

    def test_matches_fast_engine(self, problem):
        placement = declaration_order_placement(problem)
        spm = ScratchpadMemory(problem.config, placement)
        fast = spm.simulate(problem.trace)
        functional = spm.simulate_functional(problem.trace)
        assert functional.shifts == fast.shifts
        assert functional.reads == fast.reads
        assert functional.writes == fast.writes

    def test_multi_port_functional(self):
        trace = markov_trace(10, 120, seed=9, write_fraction=0.4)
        config = DWMConfig(words_per_dbc=8, num_dbcs=2, port_offsets=(1, 6))
        problem = PlacementProblem(trace=trace, config=config)
        placement = declaration_order_placement(problem)
        spm = ScratchpadMemory(config, placement)
        assert spm.simulate_functional(trace).shifts == spm.simulate(trace).shifts

    def test_details_flag(self, problem):
        placement = declaration_order_placement(problem)
        spm = ScratchpadMemory(problem.config, placement)
        assert spm.simulate_functional(problem.trace).details["functional"]


class TestSimulationResult:
    def make(self, shifts=10, reads=5, writes=5):
        return SimulationResult(
            trace_name="t", config_description="c",
            shifts=shifts, reads=reads, writes=writes,
        )

    def test_shifts_per_access(self):
        assert self.make().shifts_per_access == 1.0

    def test_energy_breakdown(self):
        breakdown = self.make().energy(DWMEnergyModel())
        assert breakdown.total_energy_pj > 0
        assert breakdown.shift_energy_pj > 0

    def test_sram_reference_has_no_shift_energy(self):
        reference = self.make().sram_reference(SRAMEnergyModel())
        assert reference.shift_energy_pj == 0.0

    def test_normalized_shifts(self):
        assert self.make(shifts=5).normalized_shifts(self.make(shifts=10)) == 0.5

    def test_normalized_zero_baseline(self):
        zero = self.make(shifts=0)
        assert zero.normalized_shifts(zero) == 0.0
        assert self.make(shifts=1).normalized_shifts(zero) == float("inf")

    def test_speedup_over(self):
        fast = self.make(shifts=0)
        slow = self.make(shifts=100)
        assert fast.speedup_over(slow) > 1.0


class TestSRAMScratchpad:
    def test_counts_accesses(self):
        trace = AccessTrace([("a", "R"), ("b", "W"), ("a", "R")])
        sim = SRAMScratchpad(capacity_words=16).simulate(trace)
        assert sim.reads == 2
        assert sim.writes == 1
        assert sim.shifts == 0

    def test_placement_insensitive_by_construction(self):
        trace = markov_trace(6, 100, seed=0)
        sram = SRAMScratchpad(capacity_words=8)
        assert sram.simulate(trace).shifts == 0

    def test_simulate_placement_convenience(self, problem):
        placement = declaration_order_placement(problem)
        fast = simulate_placement(problem.trace, problem.config, placement)
        functional = simulate_placement(
            problem.trace, problem.config, placement, functional=True
        )
        assert fast.shifts == functional.shifts
