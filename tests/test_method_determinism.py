"""Tie-breaking determinism for the cross-paper placement methods.

Same trace + geometry must yield a byte-identical placement on every run
and in every execution mode: repeated in-process runs, and child
processes under both the ``fork`` and ``spawn`` start methods (the two
modes ``--jobs`` workers can run in, and the modes in which string
hashing — the classic source of ordering nondeterminism — differs from
the parent: ``spawn`` children get a fresh ``PYTHONHASHSEED``).
Companion to the CLI byte-identity tests in ``tests/test_cli.py``.
"""

import json
import multiprocessing

import pytest

from repro.core.api import build_problem, plan_placement
from repro.dwm.config import DWMConfig
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace, zipf_trace

METHODS = ("shiftsreduce", "generalized")


def _case_payload(seed: int) -> dict:
    trace = markov_trace(9, 150, locality=0.6, seed=seed)
    return {
        "accesses": [(access.item, access.kind.value) for access in trace],
        "words_per_dbc": 6,
        "num_dbcs": 2,
        "num_ports": 2,
    }


def _placement_fingerprint(payload: dict, method: str) -> str:
    """Canonical JSON of the placement the method produces for ``payload``."""
    trace = AccessTrace([tuple(access) for access in payload["accesses"]])
    config = DWMConfig.with_uniform_ports(
        words_per_dbc=payload["words_per_dbc"],
        num_dbcs=payload["num_dbcs"],
        num_ports=payload["num_ports"],
    )
    problem = build_problem(trace, config)
    plan = plan_placement(problem, method=method)
    mapping = {
        item: list(slot) for item, slot in plan.placement.as_dict().items()
    }
    return json.dumps(mapping, sort_keys=True)


@pytest.mark.parametrize("method", METHODS)
def test_repeated_runs_are_byte_identical(method):
    payload = _case_payload(seed=3)
    first = _placement_fingerprint(payload, method)
    for _ in range(3):
        assert _placement_fingerprint(payload, method) == first


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_subprocess_runs_match_parent(method, start_method):
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{start_method} start method unavailable")
    payload = _case_payload(seed=7)
    parent = _placement_fingerprint(payload, method)
    context = multiprocessing.get_context(start_method)
    with context.Pool(processes=2) as pool:
        children = pool.starmap(
            _placement_fingerprint, [(payload, method)] * 4
        )
    assert all(child == parent for child in children), (
        f"{method} placement differs across {start_method} workers"
    )


@pytest.mark.parametrize("method", METHODS)
def test_eager_policy_is_deterministic_too(method):
    trace = zipf_trace(8, 120, seed=11)
    payload = {
        "accesses": [(access.item, access.kind.value) for access in trace],
        "words_per_dbc": 8,
        "num_dbcs": 1,
        "num_ports": 2,
    }
    trace_obj = AccessTrace([tuple(a) for a in payload["accesses"]])
    config = DWMConfig(
        words_per_dbc=8, num_dbcs=1, port_offsets=(0, 7), port_policy="eager"
    )
    problem = build_problem(trace_obj, config)
    first = plan_placement(problem, method=method).placement.as_dict()
    for _ in range(3):
        assert plan_placement(problem, method=method).placement.as_dict() == first
