"""End-to-end tests for the asyncio placement service.

The in-process tests run a real :class:`PlacementServer` (real sockets,
real HTTP) on a background thread and drive it through the stdlib
client; the teardown tests spawn the actual ``repro serve`` CLI as a
subprocess and kill it.  No async test plugin is used — the event loop
lives entirely inside the server thread.
"""

import concurrent.futures
import json
import multiprocessing
import os
import random
import signal
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.analysis.cache import ResultCache
from repro.dwm.config import DWMConfig
from repro.memory import shm
from repro.memory.batch_sim import simulate_vectorized
from repro.obs import MetricsRegistry, set_registry
from repro.serve.client import ServeClient, wait_for_server
from repro.serve.protocol import (
    BadRequest,
    NotFound,
    Overloaded,
    RateLimited,
)
from repro.serve.server import PlacementServer
from repro.trace.model import AccessTrace

SRC = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(autouse=True)
def registry():
    """Metrics isolation: every test gets a fresh process registry."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


def make_accesses(seed: int = 5, items: int = 12, length: int = 600):
    rng = random.Random(seed)
    return [
        (f"v{rng.randrange(items)}", rng.choice("RW")) for _ in range(length)
    ]


@contextmanager
def running_server(**kwargs):
    server = PlacementServer(**kwargs)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    try:
        port = server.wait_until_listening(timeout=15.0)
        client = wait_for_server("127.0.0.1", port)
        yield server, client
    finally:
        server.request_shutdown()
        assert server.wait_until_stopped(timeout=30.0)
        thread.join(timeout=10.0)


CONFIG = {"words_per_dbc": 8, "num_ports": 1}


class TestRoundTrip:
    def test_upload_optimize_simulate_status(self):
        with running_server() as (server, client):
            health = client.health()
            assert health["status"] == "ok"

            accesses = make_accesses()
            uploaded = client.upload_trace("rt", accesses)
            trace_id = uploaded["trace_id"]
            assert uploaded["num_accesses"] == len(accesses)
            assert not uploaded["reused"]

            info = client.trace_info(trace_id)
            assert info["kind"] == "jsonl"
            assert info["num_items"] == uploaded["num_items"]

            optimized = client.optimize(trace_id, config=CONFIG)
            assert optimized["state"] == "done"
            placement = optimized["result"]["placement"]

            simulated = client.simulate(trace_id, placement, config=CONFIG)
            assert simulated["shifts"] == optimized["result"]["total_shifts"]

            status = client.job(optimized["job_id"])
            assert status["state"] == "done"
            assert (
                status["result"]["total_shifts"]
                == optimized["result"]["total_shifts"]
            )

            metrics = client.metrics()
            assert any(
                key.startswith("serve.requests") for key in metrics["counters"]
            )

    def test_duplicate_upload_reuses_record(self):
        with running_server() as (_, client):
            accesses = make_accesses()
            first = client.upload_trace("dup", accesses)
            second = client.upload_trace("dup", accesses)
            assert second["trace_id"] == first["trace_id"]
            assert second["reused"]

    def test_async_job_polling(self):
        with running_server() as (_, client):
            uploaded = client.upload_trace("async", make_accesses())
            ticket = client.optimize(
                uploaded["trace_id"],
                method="random",
                config=CONFIG,
                kwargs={"seed": 3},
                wait=False,
            )
            assert ticket["state"] in ("queued", "running")
            finished = client.wait_for_job(ticket["job_id"], timeout=60)
            assert finished["state"] == "done"
            assert finished["result"]["total_shifts"] >= 0

    def test_server_results_match_local_compute(self):
        accesses = make_accesses(seed=8)
        with running_server() as (_, client):
            uploaded = client.upload_trace("parity", accesses)
            response = client.optimize(uploaded["trace_id"], config=CONFIG)
        from repro.core.api import optimize_placement

        local_trace = AccessTrace(accesses, name="parity")
        local_config = DWMConfig.for_items(
            local_trace.num_items, words_per_dbc=8
        )
        local = optimize_placement(local_trace, local_config)
        assert response["result"]["total_shifts"] == local.total_shifts
        assert response["result"]["placement"] == {
            item: list(slot)
            for item, slot in local.placement.as_dict().items()
        }


class TestCacheFront:
    def test_warm_optimize_skips_compute(self, registry, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with running_server(cache=cache) as (_, client):
            uploaded = client.upload_trace("warm", make_accesses())
            cold = client.optimize(uploaded["trace_id"], config=CONFIG)
            assert not cold["cached"]
            runs_after_cold = registry.counter_value(
                "optimize.runs", method="heuristic"
            )
            warm = client.optimize(uploaded["trace_id"], config=CONFIG)
            assert warm["cached"]
            assert warm["result"]["details"]["cache"] == "hit"
            # The optimizer never ran again: answered purely from cache.
            assert (
                registry.counter_value("optimize.runs", method="heuristic")
                == runs_after_cold
            )
            assert (
                warm["result"]["total_shifts"]
                == cold["result"]["total_shifts"]
            )
            assert warm["result"]["placement"] == cold["result"]["placement"]

    def test_warm_simulate_served_from_cache(self, registry, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with running_server(cache=cache) as (_, client):
            uploaded = client.upload_trace("simwarm", make_accesses())
            optimized = client.optimize(uploaded["trace_id"], config=CONFIG)
            placement = optimized["result"]["placement"]
            cold = client.simulate(
                uploaded["trace_id"], placement, config=CONFIG
            )
            warm = client.simulate(
                uploaded["trace_id"], placement, config=CONFIG
            )
            assert warm["details"].get("cache") == "hit"
            assert warm["shifts"] == cold["shifts"]
            assert warm["per_dbc_shifts"] == cold["per_dbc_shifts"]
            assert (
                registry.counter_value(
                    "serve.cache.hits", endpoint="simulate"
                )
                == 1
            )


class TestBatching:
    def test_concurrent_simulates_coalesce_and_match_local(self, registry):
        accesses = make_accesses(seed=13, items=16, length=800)
        local_trace = AccessTrace(accesses, name="batch")
        config = DWMConfig.for_items(local_trace.num_items, words_per_dbc=8)
        items = list(local_trace.items)
        words = config.words_per_dbc

        def rotated_placement(shift: int) -> dict:
            order = items[shift:] + items[:shift]
            return {
                item: [index // words, index % words]
                for index, item in enumerate(order)
            }

        payloads = [rotated_placement(i) for i in range(6)]
        with running_server(batch_window=0.1) as (_, client):
            uploaded = client.upload_trace("batch", accesses)
            trace_id = uploaded["trace_id"]
            with concurrent.futures.ThreadPoolExecutor(6) as pool:
                responses = list(
                    pool.map(
                        lambda p: client.simulate(trace_id, p, config=CONFIG),
                        payloads,
                    )
                )
        batches = registry.counter_value("serve.batches")
        assert 1 <= batches < 6
        from repro.core.placement import Placement

        for payload, response in zip(payloads, responses):
            expected = simulate_vectorized(
                local_trace,
                config,
                Placement({k: tuple(v) for k, v in payload.items()}),
            )
            assert response["shifts"] == expected.shifts
            assert response["per_dbc_shifts"] == list(expected.per_dbc_shifts)
            assert response["batched"] >= 1


class TestAdmissionOverHttp:
    def test_empty_bucket_is_typed_429(self):
        # rate so slow the bucket (burst == rate < 1 token) never fills.
        with running_server(rate=0.001) as (_, client):
            uploaded = client.upload_trace("shed", make_accesses())
            with pytest.raises(RateLimited):
                client.optimize(uploaded["trace_id"], config=CONFIG)

    def test_full_queue_is_typed_503(self):
        accesses = make_accesses()
        items = AccessTrace(accesses, name="full").items
        # Placement validation happens before admission (a malformed
        # request is a 400, not load), so the 503 check needs a valid one.
        placement = {
            item: [index // 8, index % 8] for index, item in enumerate(items)
        }
        with running_server(max_queue=0) as (_, client):
            uploaded = client.upload_trace("full", accesses)
            with pytest.raises(Overloaded):
                client.optimize(uploaded["trace_id"], config=CONFIG)
            with pytest.raises(Overloaded):
                client.simulate(uploaded["trace_id"], placement, config=CONFIG)

    def test_rejections_counted(self, registry):
        with running_server(max_queue=0) as (_, client):
            uploaded = client.upload_trace("count", make_accesses())
            for _ in range(3):
                with pytest.raises(Overloaded):
                    client.optimize(uploaded["trace_id"], config=CONFIG)
            assert (
                registry.counter_value(
                    "serve.admission.rejected", code=503, endpoint="optimize"
                )
                == 3
            )


class TestTypedErrors:
    def test_unknown_trace_404(self):
        with running_server() as (_, client):
            with pytest.raises(NotFound):
                client.optimize("deadbeef")
            with pytest.raises(NotFound):
                client.job("job-999999")
            with pytest.raises(NotFound):
                client.trace_info("deadbeef")

    def test_unknown_route_404(self):
        with running_server() as (_, client):
            with pytest.raises(NotFound):
                client._request("GET", "/v1/nope")

    def test_bad_payloads_400(self):
        with running_server() as (_, client):
            with pytest.raises(BadRequest):
                client._request("POST", "/v1/traces", body=b"not json")
            with pytest.raises(BadRequest):
                client.upload_trace("empty", [])
            uploaded = client.upload_trace("bad", make_accesses())
            with pytest.raises(BadRequest):
                client.optimize(
                    uploaded["trace_id"], config={"bogus_field": 1}
                )
            with pytest.raises(BadRequest):
                client.simulate(
                    uploaded["trace_id"], {"v0": [0, 0]}, config=CONFIG
                )  # placement missing most items -> validation error
            with pytest.raises(BadRequest):
                client.optimize(uploaded["trace_id"], method="not-a-method")


class TestRtbTraces:
    def test_rtb_upload_and_streaming_simulate(self, tmp_path):
        from repro.trace.binio import save_binary

        accesses = make_accesses(seed=4, items=10, length=700)
        trace = AccessTrace(accesses, name="bin")
        path = tmp_path / "t.rtb"
        save_binary(trace, path)
        with running_server(spool_dir=str(tmp_path / "spool")) as (_, client):
            uploaded = client.upload_rtb_file(path)
            assert uploaded["kind"] == "rtb"
            assert uploaded["num_accesses"] == len(accesses)
            optimized = client.optimize(uploaded["trace_id"], config=CONFIG)
            assert optimized["state"] == "done"
            simulated = client.simulate(
                uploaded["trace_id"],
                optimized["result"]["placement"],
                config=CONFIG,
            )
            assert simulated["shifts"] == optimized["result"]["total_shifts"]

    def test_invalid_rtb_is_typed_400(self, tmp_path):
        with running_server(spool_dir=str(tmp_path / "spool")) as (_, client):
            with pytest.raises(BadRequest):
                client.upload_rtb(b"\x00" * 64)


class TestShutdown:
    def test_graceful_shutdown_leaves_nothing_behind(self):
        with running_server(pool_workers=1) as (server, client):
            uploaded = client.upload_trace("bye", make_accesses())
            client.optimize(uploaded["trace_id"], config=CONFIG)
            client.shutdown()
            assert server.wait_until_stopped(timeout=30.0)
            with pytest.raises((Overloaded, OSError, TimeoutError)):
                ServeClient("127.0.0.1", server.port, timeout=2.0).health()
        assert multiprocessing.active_children() == []
        assert shm.active_segments() == []

    def test_drained_server_sheds_typed(self):
        with running_server() as (server, client):
            uploaded = client.upload_trace("drain", make_accesses())
            server.admission.drain()
            with pytest.raises(Overloaded, match="shutting down"):
                client.optimize(uploaded["trace_id"], config=CONFIG)


class TestCliTeardown:
    """SIGTERM must reuse the toolkit teardown path (satellite bugfix)."""

    def _spawn(self, tmp_path, extra_args=()):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        announce = json.loads(proc.stdout.readline())
        assert announce["event"] == "listening"
        return proc, announce["port"]

    def test_sigterm_idle_exits_130_clean(self, tmp_path):
        proc, port = self._spawn(tmp_path)
        try:
            wait_for_server("127.0.0.1", port)
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=20)
            stderr = proc.stderr.read()
            assert rc == 130
            assert "interrupted" in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.communicate(timeout=10)

    def test_sigterm_with_inflight_job_exits_clean(self, tmp_path):
        proc, port = self._spawn(tmp_path, ("--pool-workers", "1"))
        try:
            client = wait_for_server("127.0.0.1", port)
            uploaded = client.upload_trace(
                "inflight", make_accesses(seed=17, items=20, length=3000)
            )
            # A slow annealing job is mid-flight (in the worker pool)
            # when the signal lands.
            ticket = client.optimize(
                uploaded["trace_id"],
                method="annealing",
                config=CONFIG,
                kwargs={"max_evaluations": 50000, "cooling": 0.999},
                wait=False,
            )
            assert ticket["state"] in ("queued", "running")
            time.sleep(0.3)
            start = time.monotonic()
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=25)
            elapsed = time.monotonic() - start
            stderr = proc.stderr.read()
            assert rc == 130, stderr
            assert "interrupted" in stderr
            assert elapsed < 20.0
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.communicate(timeout=10)
        # No orphaned pool workers: our direct child is gone and no
        # process still holds the server's stderr pipe (communicate
        # returning above proves the pipe drained).
        assert multiprocessing.active_children() == []
