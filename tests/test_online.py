"""Unit tests for repro.core.online (adaptive placement)."""

import pytest

from repro.core.online import (
    OnlinePlacer,
    OnlineResult,
    compare_static_vs_online,
)
from repro.dwm.config import DWMConfig
from repro.errors import OptimizationError
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace, zipf_trace


def phased_trace(per_phase=2000):
    a = markov_trace(20, per_phase, locality=0.9, seed=1).prefixed("a_")
    b = markov_trace(20, per_phase, locality=0.9, seed=2).prefixed("b_")
    return a.concatenated(b)


class TestOnlinePlacerValidation:
    def test_bad_window_raises(self):
        with pytest.raises(OptimizationError):
            OnlinePlacer(DWMConfig(), window=0)

    def test_bad_hysteresis_raises(self):
        with pytest.raises(OptimizationError):
            OnlinePlacer(DWMConfig(), hysteresis=0.5)

    def test_bad_amortization_raises(self):
        with pytest.raises(OptimizationError):
            OnlinePlacer(DWMConfig(), amortization_windows=0)

    def test_empty_trace(self):
        result = OnlinePlacer(DWMConfig()).run(AccessTrace([]))
        assert result == OnlineResult(0, 0, 0, 0)


class TestOnlinePlacerBehaviour:
    def test_stable_workload_never_migrates(self):
        trace = markov_trace(16, 2000, locality=0.9, seed=7)
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=8)
        result = OnlinePlacer(config, window=400).run(trace)
        assert result.replacements == 0
        assert result.migration_shifts == 0

    def test_phase_change_triggers_migration(self):
        trace = phased_trace()
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=8)
        result = OnlinePlacer(config, window=400).run(trace)
        assert result.replacements >= 1
        assert result.migration_shifts > 0
        assert result.migrated_words > 0

    def test_total_includes_migration(self):
        trace = phased_trace()
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=8)
        result = OnlinePlacer(config, window=400).run(trace)
        assert result.total_shifts == result.access_shifts + result.migration_shifts

    def test_deterministic(self):
        trace = phased_trace(per_phase=800)
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=8)
        first = OnlinePlacer(config, window=300).run(trace)
        second = OnlinePlacer(config, window=300).run(trace)
        assert first == second


class TestCompareStaticVsOnline:
    @pytest.fixture(scope="class")
    def comparison(self):
        a = markov_trace(30, 3000, locality=0.9, seed=1).prefixed("a_")
        b = zipf_trace(30, 3000, alpha=1.3, seed=2).prefixed("b_")
        trace = a.concatenated(b)
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=16)
        return compare_static_vs_online(trace, config, window=500)

    def test_oracle_is_lower_bound_of_statics(self, comparison):
        assert comparison["oracle_static"] <= comparison["static_first_window"]

    def test_online_beats_stale_profile(self, comparison):
        assert comparison["online"] < comparison["static_first_window"]

    def test_migration_accounted(self, comparison):
        assert comparison["online_migration"] >= 0
        assert comparison["online_replacements"] >= 1
