"""Unit tests for the generalized port-aware placement."""

import pytest

from repro.core.api import build_problem, optimize_placement
from repro.core.generalized import generalized_placement, multi_port_chain_offsets
from repro.dwm.config import DWMConfig
from repro.errors import OptimizationError
from repro.trace.synthetic import markov_trace, zipf_trace


class TestMultiPortChainOffsets:
    def test_single_port_is_contiguous_and_injective(self):
        config = DWMConfig(words_per_dbc=8, num_dbcs=1, port_offsets=(3,))
        order = ["a", "b", "c", "d"]
        offsets = multi_port_chain_offsets(order, config)
        values = sorted(offsets.values())
        assert values == list(range(values[0], values[0] + len(order)))
        assert all(0 <= value < 8 for value in values)

    def test_two_ports_split_the_chain_across_neighbourhoods(self):
        config = DWMConfig(words_per_dbc=10, num_dbcs=1, port_offsets=(1, 8))
        order = [f"v{i}" for i in range(6)]
        offsets = multi_port_chain_offsets(order, config)
        assert len(set(offsets.values())) == len(order)
        assert all(0 <= value < 10 for value in offsets.values())
        # The first half of the chain lands near port 1, the second near 8.
        first_half = [offsets[f"v{i}"] for i in range(3)]
        second_half = [offsets[f"v{i}"] for i in range(3, 6)]
        assert max(first_half) < min(second_half)
        assert min(first_half) <= 2
        assert max(second_half) >= 7

    def test_more_ports_than_items(self):
        config = DWMConfig(words_per_dbc=8, num_dbcs=1, port_offsets=(0, 3, 6))
        offsets = multi_port_chain_offsets(["a", "b"], config)
        assert len(set(offsets.values())) == 2

    def test_full_dbc_stays_feasible(self):
        config = DWMConfig(words_per_dbc=6, num_dbcs=1, port_offsets=(0, 5))
        order = [f"v{i}" for i in range(6)]
        offsets = multi_port_chain_offsets(order, config)
        assert sorted(offsets.values()) == list(range(6))

    def test_capacity_overflow_raises(self):
        config = DWMConfig(words_per_dbc=3, num_dbcs=1)
        with pytest.raises(OptimizationError):
            multi_port_chain_offsets(["a", "b", "c", "d"], config)


class TestGeneralizedPlacement:
    @pytest.mark.parametrize("num_ports", [1, 2, 3])
    def test_never_worse_than_heuristic(self, num_ports):
        for seed in range(4):
            trace = markov_trace(10, 180, locality=0.7, seed=seed)
            config = DWMConfig.for_items(
                trace.num_items, words_per_dbc=8, num_ports=num_ports
            )
            heuristic = optimize_placement(trace, config, method="heuristic")
            ours = optimize_placement(trace, config, method="generalized")
            assert ours.total_shifts <= heuristic.total_shifts

    def test_valid_on_eager_policy(self):
        trace = zipf_trace(8, 120, seed=5)
        config = DWMConfig(
            words_per_dbc=8,
            num_dbcs=2,
            port_offsets=(1, 6),
            port_policy="eager",
        )
        result = optimize_placement(trace, config, method="generalized")
        result.placement.validate(config, list(trace.items))
        heuristic = optimize_placement(trace, config, method="heuristic")
        assert result.total_shifts <= heuristic.total_shifts

    def test_multi_port_improves_over_single_port_anchoring(self):
        # Two hot clusters with a two-port DBC: splitting the chain across
        # the port neighbourhoods must not lose to one-port anchoring.
        trace = markov_trace(12, 400, locality=0.85, seed=9)
        two_port = DWMConfig.with_uniform_ports(
            words_per_dbc=12, num_dbcs=1, num_ports=2
        )
        one_port = DWMConfig(words_per_dbc=12, num_dbcs=1)
        cost_two = optimize_placement(trace, two_port, method="generalized")
        cost_one = optimize_placement(trace, one_port, method="generalized")
        assert cost_two.total_shifts <= cost_one.total_shifts

    def test_deterministic_placement(self):
        trace = markov_trace(8, 120, locality=0.5, seed=13)
        config = DWMConfig.with_uniform_ports(
            words_per_dbc=4, num_dbcs=3, num_ports=2
        )
        problem = build_problem(trace, config)
        first = generalized_placement(problem).as_dict()
        for _ in range(3):
            assert generalized_placement(problem).as_dict() == first
