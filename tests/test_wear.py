"""Unit tests for repro.analysis.wear."""

import pytest

from repro.analysis.wear import (
    WearReport,
    lifetime_estimate_accesses,
    wear_aware_placement,
    wear_report,
)
from repro.core.api import build_problem, optimize_placement
from repro.core.cost import evaluate_placement
from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig
from repro.errors import OptimizationError
from repro.trace.model import AccessTrace
from repro.trace.kernels import fir_trace
from repro.trace.synthetic import markov_trace


@pytest.fixture
def problem():
    trace = markov_trace(16, 400, locality=0.85, seed=51)
    config = DWMConfig(words_per_dbc=8, num_dbcs=2, port_offsets=(0,))
    return PlacementProblem(trace=trace, config=config)


class TestWearReportMetrics:
    def test_level_distribution(self):
        report = WearReport(
            per_dbc_shifts=(10, 10, 10), per_dbc_writes=(1, 1, 1),
            total_shifts=30,
        )
        assert report.max_mean_shift_ratio == 1.0
        assert report.shift_gini == pytest.approx(0.0)

    def test_concentrated_distribution(self):
        report = WearReport(
            per_dbc_shifts=(30, 0, 0), per_dbc_writes=(0, 0, 0),
            total_shifts=30,
        )
        assert report.max_mean_shift_ratio == 3.0
        assert report.shift_gini == pytest.approx(2 / 3)
        assert report.hottest_dbc == 0

    def test_empty_array(self):
        report = WearReport(per_dbc_shifts=(), per_dbc_writes=(), total_shifts=0)
        assert report.max_mean_shift_ratio == 1.0
        assert report.shift_gini == 0.0

    def test_zero_shift_run(self):
        report = WearReport(
            per_dbc_shifts=(0, 0), per_dbc_writes=(3, 0), total_shifts=0
        )
        assert report.max_mean_shift_ratio == 1.0


class TestWearReportFromTrace:
    def test_shift_totals_match_evaluator(self, problem):
        placement = optimize_placement(
            problem.trace, problem.config, method="declaration"
        ).placement
        report = wear_report(problem, placement)
        assert report.total_shifts == evaluate_placement(problem, placement)
        assert sum(report.per_dbc_shifts) == report.total_shifts

    def test_write_attribution(self):
        trace = AccessTrace([("a", "W"), ("b", "W"), ("a", "R")])
        config = DWMConfig(words_per_dbc=4, num_dbcs=2, port_offsets=(0,))
        problem = build_problem(trace, config)
        from repro.core.placement import Placement

        placement = Placement({"a": (0, 0), "b": (1, 0)})
        report = wear_report(problem, placement)
        assert report.per_dbc_writes == (1, 1)


class TestWearAwarePlacement:
    def test_never_increases_wear_ratio(self, problem):
        heuristic = optimize_placement(
            problem.trace, problem.config, method="heuristic"
        ).placement
        baseline_ratio = wear_report(problem, heuristic).max_mean_shift_ratio
        balanced = wear_aware_placement(problem)
        balanced_ratio = wear_report(problem, balanced).max_mean_shift_ratio
        assert balanced_ratio <= baseline_ratio + 1e-9

    def test_respects_shift_budget(self, problem):
        heuristic_cost = optimize_placement(
            problem.trace, problem.config, method="heuristic"
        ).total_shifts
        balanced = wear_aware_placement(problem, max_shift_overhead=0.10)
        cost = evaluate_placement(problem, balanced)
        assert cost <= heuristic_cost * 1.10 + 1e-9

    def test_improves_concentrated_kernel(self):
        trace = fir_trace()
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=16)
        problem = PlacementProblem(trace=trace, config=config)
        heuristic = optimize_placement(trace, config, method="heuristic").placement
        before = wear_report(problem, heuristic).max_mean_shift_ratio
        balanced = wear_aware_placement(problem)
        after = wear_report(problem, balanced).max_mean_shift_ratio
        assert after < before

    def test_zero_budget_keeps_cost(self, problem):
        heuristic_cost = optimize_placement(
            problem.trace, problem.config, method="heuristic"
        ).total_shifts
        balanced = wear_aware_placement(problem, max_shift_overhead=0.0)
        assert evaluate_placement(problem, balanced) <= heuristic_cost

    def test_negative_budget_raises(self, problem):
        with pytest.raises(OptimizationError):
            wear_aware_placement(problem, max_shift_overhead=-0.1)

    def test_valid_placement(self, problem):
        wear_aware_placement(problem).validate(
            problem.config, problem.items
        )


class TestLifetimeEstimate:
    def test_infinite_without_shifts(self):
        report = WearReport((0, 0), (0, 0), 0)
        assert lifetime_estimate_accesses(report) == float("inf")

    def test_leveling_extends_lifetime(self):
        concentrated = WearReport((100, 0), (0, 0), 100)
        level = WearReport((50, 50), (0, 0), 100)
        assert lifetime_estimate_accesses(level) > lifetime_estimate_accesses(
            concentrated
        )

    def test_scales_with_trace_length(self):
        report = WearReport((10,), (0,), 10)
        assert lifetime_estimate_accesses(
            report, shift_endurance=100, trace_length=7
        ) == pytest.approx(70.0)
