"""Unit tests for the full heuristic and its ablation variants."""


from repro.core.baselines import declaration_order_placement, random_placement
from repro.core.cost import evaluate_placement
from repro.core.heuristic import (
    chain_and_cut_groups,
    declaration_block_groups,
    grouping_only_placement,
    heuristic_placement,
    hot_spread_groups,
    ordering_only_placement,
)
from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace, pingpong_trace, stencil_trace


def cost_of(problem, placement):
    return evaluate_placement(problem, placement)


class TestCandidateGroupings:
    def test_chain_and_cut_covers_all_items(self, locality_problem):
        groups = chain_and_cut_groups(locality_problem)
        placed = sorted(item for group in groups for item in group)
        assert placed == sorted(locality_problem.items)
        capacity = locality_problem.config.words_per_dbc
        assert all(len(group) <= capacity for group in groups)
        assert len(groups) <= locality_problem.config.num_dbcs

    def test_declaration_blocks_shape(self, locality_problem):
        groups = declaration_block_groups(locality_problem)
        length = locality_problem.config.words_per_dbc
        assert all(len(group) <= length for group in groups)
        flattened = [item for group in groups for item in group]
        assert flattened == list(locality_problem.items)

    def test_hot_spread_round_robin(self, locality_problem):
        groups = hot_spread_groups(locality_problem)
        hot = locality_problem.hot_order
        # The k hottest items land in k distinct groups.
        first_wave = hot[: len(groups)]
        containing = []
        for item in first_wave:
            for index, group in enumerate(groups):
                if item in group:
                    containing.append(index)
        assert len(set(containing)) == len(first_wave)


class TestHeuristicQuality:
    def test_beats_declaration_on_locality_trace(self):
        trace = markov_trace(24, 600, locality=0.85, seed=5)
        config = DWMConfig(words_per_dbc=8, num_dbcs=3, port_offsets=(0,))
        problem = PlacementProblem(trace=trace, config=config)
        heuristic = cost_of(problem, heuristic_placement(problem))
        declaration = cost_of(problem, declaration_order_placement(problem))
        assert heuristic < declaration

    def test_beats_random_on_locality_trace(self, locality_problem):
        heuristic = cost_of(locality_problem, heuristic_placement(locality_problem))
        random_cost = cost_of(
            locality_problem, random_placement(locality_problem, 0)
        )
        assert heuristic <= random_cost

    def test_pingpong_solved_to_zero_with_enough_dbcs(self):
        trace = pingpong_trace(num_pairs=3, rounds=20)
        config = DWMConfig(words_per_dbc=4, num_dbcs=6, port_offsets=(0,))
        problem = PlacementProblem(trace=trace, config=config)
        assert cost_of(problem, heuristic_placement(problem)) == 0

    def test_streaming_not_worse_than_declaration(self):
        trace = stencil_trace(width=24, sweeps=4)
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=8)
        problem = PlacementProblem(trace=trace, config=config)
        heuristic = cost_of(problem, heuristic_placement(problem))
        declaration = cost_of(problem, declaration_order_placement(problem))
        assert heuristic <= declaration

    def test_never_worse_than_declaration_blocks_candidate(self, locality_problem):
        """Candidate selection guarantees <= the ordered declaration blocks."""
        from repro.core.ordering import order_groups

        heuristic = cost_of(locality_problem, heuristic_placement(locality_problem))
        ordered_decl = cost_of(
            locality_problem,
            order_groups(
                locality_problem, declaration_block_groups(locality_problem)
            ),
        )
        assert heuristic <= ordered_decl

    def test_single_item_trace(self):
        trace = AccessTrace(["only"] * 5)
        config = DWMConfig(words_per_dbc=4, num_dbcs=1, port_offsets=(0,))
        problem = PlacementProblem(trace=trace, config=config)
        placement = heuristic_placement(problem)
        assert cost_of(problem, placement) == placement["only"].offset

    def test_deterministic(self, locality_problem):
        assert heuristic_placement(locality_problem) == heuristic_placement(
            locality_problem
        )

    def test_valid_placement(self, locality_problem):
        heuristic_placement(locality_problem).validate(
            locality_problem.config, locality_problem.items
        )


class TestAblationVariants:
    def test_grouping_only_uses_first_touch_order(self, locality_problem):
        placement = grouping_only_placement(locality_problem)
        placement.validate(locality_problem.config, locality_problem.items)
        # Offsets within each DBC must start at 0 (no port anchoring).
        for dbc in placement.dbcs_used():
            assert min(placement.dbc_contents(dbc)) == 0

    def test_ordering_only_keeps_declaration_blocks(self, locality_problem):
        placement = ordering_only_placement(locality_problem)
        placement.validate(locality_problem.config, locality_problem.items)
        length = locality_problem.config.words_per_dbc
        items = list(locality_problem.items)
        for index, item in enumerate(items):
            assert placement[item].dbc == index // length

    def test_combined_not_worse_than_ordering_only(self, locality_problem):
        combined = cost_of(locality_problem, heuristic_placement(locality_problem))
        ordering = cost_of(
            locality_problem, ordering_only_placement(locality_problem)
        )
        assert combined <= ordering


class TestHeuristicNumGroups:
    def test_explicit_num_groups_respected(self):
        trace = markov_trace(12, 200, seed=2)
        config = DWMConfig(words_per_dbc=16, num_dbcs=4, port_offsets=(0,))
        problem = PlacementProblem(trace=trace, config=config)
        placement = heuristic_placement(problem, num_groups=2)
        assert len(placement.dbcs_used()) <= 2
