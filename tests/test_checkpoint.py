"""Tests for the checkpoint/resume journal (repro.analysis.checkpoint)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.checkpoint import (
    CheckpointJournal,
    flush_active_journals,
    run_checkpointed,
    task_key,
)
from repro.analysis.dse import explore
from repro.analysis.parallel import TaskFailure
from repro.analysis.sweep import sweep
from repro.trace.synthetic import markov_trace


def _triple(value: int) -> int:
    return value * 3


def _fail_on_two(value: int) -> int:
    if value == 2:
        raise ValueError("poisoned")
    return value * 3


class TestTaskKey:
    def test_deterministic(self):
        assert task_key("k", {"a": 1}) == task_key("k", {"a": 1})

    def test_sensitive_to_kind_and_doc(self):
        base = task_key("k", {"a": 1})
        assert base != task_key("other", {"a": 1})
        assert base != task_key("k", {"a": 2})

    def test_key_order_irrelevant(self):
        assert task_key("k", {"a": 1, "b": 2}) == task_key("k", {"b": 2, "a": 1})


class TestCheckpointJournal:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record("k1", {"v": 1})
            journal.record("k2", [1, 2, 3])
            assert journal.recorded == 2
            assert "k1" in journal
            assert len(journal) == 2
        resumed = CheckpointJournal(path, resume=True)
        try:
            assert resumed.restored == 2
            assert resumed.get("k1") == {"v": 1}
            assert resumed.get("k2") == [1, 2, 3]
            assert resumed.corrupt_lines == 0
        finally:
            resumed.close()

    def test_non_resume_truncates(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record("k1", {"v": 1})
        with CheckpointJournal(path, resume=False) as journal:
            assert journal.restored == 0
            assert len(journal) == 0
        assert path.read_text(encoding="utf-8") == ""

    def test_truncated_last_line_skipped(self, tmp_path):
        """A kill mid-write can only tear the last line; resume survives it."""
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record("k1", {"v": 1})
            journal.record("k2", {"v": 2})
        text = path.read_text(encoding="utf-8")
        path.write_text(text[:-5], encoding="utf-8")  # tear the last line
        resumed = CheckpointJournal(path, resume=True)
        try:
            assert resumed.get("k1") == {"v": 1}
            assert resumed.get("k2") is None
            assert resumed.corrupt_lines == 1
        finally:
            resumed.close()

    def test_missing_file_resume_is_empty(self, tmp_path):
        with CheckpointJournal(tmp_path / "fresh.jsonl", resume=True) as journal:
            assert journal.restored == 0

    def test_flush_active_journals(self, tmp_path):
        with CheckpointJournal(tmp_path / "a.jsonl") as journal:
            journal.record("k", 1)
            assert flush_active_journals() >= 1
        # Closed journals are deregistered.
        assert flush_active_journals() == 0

    def test_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record("k", {"nested": {"x": [1.5, None, "s"]}})
        (line,) = path.read_text(encoding="utf-8").splitlines()
        record = json.loads(line)
        assert record["key"] == "k"
        assert record["payload"] == {"nested": {"x": [1.5, None, "s"]}}


class TestRunCheckpointed:
    def test_no_features_is_plain_map(self):
        assert run_checkpointed(_triple, [1, 2, 3], None) == [3, 6, 9]

    def test_journals_every_success(self, tmp_path):
        keys = [task_key("t", {"v": value}) for value in (1, 2, 3)]
        with CheckpointJournal(tmp_path / "j.jsonl") as journal:
            results = run_checkpointed(
                _triple, [1, 2, 3], keys, checkpoint=journal
            )
            assert results == [3, 6, 9]
            assert journal.recorded == 3

    def test_restores_instead_of_recomputing(self, tmp_path):
        path = tmp_path / "j.jsonl"
        keys = [task_key("t", {"v": value}) for value in (1, 2, 3)]
        with CheckpointJournal(path) as journal:
            run_checkpointed(_triple, [1, 2, 3], keys, checkpoint=journal)
        calls = []

        def counting(value):
            calls.append(value)
            return value * 3

        with CheckpointJournal(path, resume=True) as journal:
            results = run_checkpointed(
                counting, [1, 2, 3, 4], keys + [task_key("t", {"v": 4})],
                checkpoint=journal,
            )
        assert results == [3, 6, 9, 12]
        assert calls == [4]  # only the un-journaled task ran

    def test_failures_not_journaled_and_reindexed(self, tmp_path):
        keys = [task_key("t", {"v": value}) for value in (1, 2, 3)]
        with CheckpointJournal(tmp_path / "j.jsonl") as journal:
            results = run_checkpointed(
                _fail_on_two, [1, 2, 3], keys, checkpoint=journal, retries=1
            )
            assert results[0] == 3
            assert results[2] == 9
            failure = results[1]
            assert isinstance(failure, TaskFailure)
            assert failure.index == 1
            assert journal.recorded == 2
            assert keys[1] not in journal

    def test_failed_task_retried_on_resume(self, tmp_path):
        """A failed cell is absent from the journal, so resume re-runs it."""
        path = tmp_path / "j.jsonl"
        keys = [task_key("t", {"v": value}) for value in (1, 2, 3)]
        with CheckpointJournal(path) as journal:
            run_checkpointed(
                _fail_on_two, [1, 2, 3], keys, checkpoint=journal
            )
        with CheckpointJournal(path, resume=True) as journal:
            results = run_checkpointed(
                _triple, [1, 2, 3], keys, checkpoint=journal
            )
        assert results == [3, 6, 9]

    def test_key_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_checkpointed(_triple, [1, 2], ["only-one"], retries=1)


class TestSweepResume:
    """Interrupted-then-resumed sweeps render byte-identically."""

    @pytest.fixture
    def traces(self):
        return [markov_trace(16, 400, seed=seed) for seed in (0, 1)]

    def test_sweep_resume_byte_identical(self, tmp_path, traces):
        grid = dict(
            words_per_dbc_values=(8, 16),
            num_ports_values=(1,),
            methods=("declaration", "heuristic"),
        )
        # "Interrupt" after a partial journal: run the full sweep once
        # (the uninterrupted reference), then drop the second half of the
        # journal lines — the surviving prefix is exactly what a mid-run
        # kill leaves behind.
        path = tmp_path / "sweep.jsonl"
        with CheckpointJournal(path) as journal:
            reference = sweep(traces, checkpoint=journal, **grid)
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        assert len(lines) == len(reference)
        half = len(lines) // 2
        path.write_text("".join(lines[:half]), encoding="utf-8")

        with CheckpointJournal(path, resume=True) as journal:
            assert journal.restored == half
            resumed = sweep(traces, checkpoint=journal, **grid)
            # Only the lost half was recomputed (and re-journaled).
            assert journal.recorded == len(lines) - half

        # Restored records land at their original indices, byte-identical
        # to the uninterrupted run (floats round-trip exactly through JSON).
        assert resumed[:half] == reference[:half]
        # The recomputed half matches on every deterministic field (the
        # measured optimizer runtime is wall-clock and may differ).
        assert [
            (r.trace, r.method, r.words_per_dbc, r.num_ports, r.num_dbcs,
             r.total_shifts, r.num_accesses)
            for r in resumed
        ] == [
            (r.trace, r.method, r.words_per_dbc, r.num_ports, r.num_dbcs,
             r.total_shifts, r.num_accesses)
            for r in reference
        ]

    def test_dse_resume_restores_points(self, tmp_path):
        trace = markov_trace(24, 600, seed=3)
        grid = dict(lengths=(8, 16), ports=(1, 2), method="declaration")
        baseline = explore(trace, **grid)

        path = tmp_path / "dse.jsonl"
        with CheckpointJournal(path) as journal:
            explore(trace, checkpoint=journal, **grid)
        with CheckpointJournal(path, resume=True) as journal:
            resumed = explore(trace, checkpoint=journal, **grid)
            # Everything was journaled: nothing recomputed.
            assert journal.recorded == 0
        assert resumed == baseline


class TestTornTailResume:
    """Regression: resume must tolerate a torn multi-record tail.

    A crash (or chaos ``journal.append:truncate``) can leave the journal
    cut at *any* byte offset.  Truncate at every offset spanning the last
    three records and assert resume (a) never crashes, (b) restores
    exactly the fully-terminated record prefix, and (c) truncates the
    file back to a record boundary so subsequent appends are clean.
    """

    def _build(self, path, count=6):
        journal = CheckpointJournal(path)
        for index in range(count):
            journal.record(f"key-{index}", {"value": index, "pad": "x" * index})
        journal.close()
        return path.read_bytes()

    def test_every_byte_offset_of_last_three_records(self, tmp_path):
        source = tmp_path / "full.journal"
        raw = self._build(source)
        lines = raw.splitlines(keepends=True)
        assert len(lines) == 6
        boundary = [0]
        for line in lines:
            boundary.append(boundary[-1] + len(line))
        start = boundary[3]  # keep the first three records intact
        for cut in range(start, len(raw) + 1):
            path = tmp_path / "torn.journal"
            path.write_bytes(raw[:cut])
            journal = CheckpointJournal(path, resume=True)
            # (b) exactly the newline-terminated prefix survives.
            expected = sum(1 for b in boundary[1:] if b <= cut)
            assert journal.restored == expected, f"cut at byte {cut}"
            for i in range(expected):
                assert journal.get(f"key-{i}") is not None
            assert len(journal) == expected
            # (c) the file is back on a record boundary and appendable.
            assert path.stat().st_size == boundary[expected]
            assert journal.truncated_bytes == cut - boundary[expected]
            journal.record("appended", {"value": 99})
            journal.close()
            reread = CheckpointJournal(path, resume=True)
            assert reread.restored == expected + 1
            assert reread.get("appended") == {"value": 99}
            reread.close()

    def test_interior_corruption_skipped_but_tail_kept(self, tmp_path):
        path = tmp_path / "interior.journal"
        self._build(path, count=4)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"key": "key-1", "payload"!!garbage\n'
        path.write_bytes(b"".join(lines))
        journal = CheckpointJournal(path, resume=True)
        # The corrupt interior line is skipped; later intact records load.
        assert journal.corrupt_lines == 1
        assert len(journal) == 3
        for key in ("key-0", "key-2", "key-3"):
            assert key in journal
        assert "key-1" not in journal
        assert journal.truncated_bytes == 0  # tail was clean
        journal.close()
