"""Tests for repro.analysis.benchref: normalization + regression gate."""

import json
from pathlib import Path

import pytest

from repro.analysis.benchref import (
    classify_metric,
    compare,
    compare_files,
    denormalize,
    flatten_payload,
    load_reference,
    normalize,
    source_from_path,
    unflatten_payload,
)
from repro.errors import ReproError
from repro.obs import RunManifest

RESULTS = Path(__file__).parent.parent / "results"
BENCH_ARTIFACTS = sorted(RESULTS.glob("BENCH_e*.json"))


# ---------------------------------------------------------------------------
# Flatten / unflatten
# ---------------------------------------------------------------------------

class TestFlatten:
    def test_numeric_and_bool_leaves_become_metrics(self):
        metrics, extra = flatten_payload(
            {"a": {"b": 1, "c": 2.5, "d": True}, "e": 3}
        )
        assert metrics == {"a.b": 1, "a.c": 2.5, "a.d": True, "e": 3}
        assert extra == {}

    def test_other_leaves_go_to_extra(self):
        metrics, extra = flatten_payload(
            {"a": {"ids": ["x", "y"], "note": "hi", "none": None}, "n": 1}
        )
        assert metrics == {"n": 1}
        assert extra == {"a.ids": ["x", "y"], "a.note": "hi", "a.none": None}

    def test_rejects_dotted_keys(self):
        with pytest.raises(ReproError, match="contains"):
            flatten_payload({"a.b": 1})

    def test_rejects_non_string_keys(self):
        with pytest.raises(ReproError, match="not a string"):
            flatten_payload({1: 2})

    def test_rejects_empty_sections(self):
        with pytest.raises(ReproError, match="empty section"):
            flatten_payload({"a": {"b": {}}})

    def test_unflatten_inverts(self):
        payload = {"a": {"b": 1, "c": {"d": 2.0}}, "e": False, "s": "str"}
        metrics, extra = flatten_payload(payload)
        assert unflatten_payload(metrics, extra) == payload

    def test_unflatten_detects_leaf_collision(self):
        with pytest.raises(ReproError, match="collides"):
            unflatten_payload({"a": 1, "a.b": 2})


# ---------------------------------------------------------------------------
# Normalize / denormalize round trip over the committed artifacts (golden)
# ---------------------------------------------------------------------------

class TestNormalizeRoundTrip:
    def test_artifacts_exist(self):
        names = {path.name for path in BENCH_ARTIFACTS}
        assert {"BENCH_e18.json", "BENCH_e19.json", "BENCH_e20.json"} <= names

    @pytest.mark.parametrize(
        "path", BENCH_ARTIFACTS, ids=lambda path: path.name
    )
    def test_lossless_round_trip(self, path):
        payload = json.loads(path.read_text(encoding="utf-8"))
        manifest = normalize(payload, source_from_path(path))
        assert denormalize(manifest) == payload

    @pytest.mark.parametrize(
        "path", BENCH_ARTIFACTS, ids=lambda path: path.name
    )
    def test_round_trip_survives_manifest_json(self, path):
        """Normalize -> serialize -> parse -> denormalize is still lossless."""
        payload = json.loads(path.read_text(encoding="utf-8"))
        manifest = normalize(payload, source_from_path(path))
        rebuilt = RunManifest.from_json(manifest.to_json())
        assert denormalize(rebuilt) == payload

    def test_source_from_path(self):
        assert source_from_path("results/BENCH_e18.json") == "e18"
        assert source_from_path("/x/BENCH_smoke-1.json") == "smoke-1"
        assert source_from_path("other.json") == "other"

    def test_normalize_sets_kind_and_run_id(self):
        manifest = normalize({"n": 1}, "e99", seed=5)
        assert manifest.kind == "bench"
        assert manifest.run_id == "e99"
        assert manifest.seed == 5

    def test_load_reference_raw_and_manifest(self, tmp_path):
        raw = tmp_path / "BENCH_e18.json"
        raw.write_text(json.dumps({"a": {"speedup": 2.0}}), encoding="utf-8")
        from_raw = load_reference(raw)
        assert from_raw.run_id == "e18"
        assert from_raw.metrics == {"a.speedup": 2.0}
        normalized = tmp_path / "manifest.json"
        normalized.write_text(from_raw.to_json(), encoding="utf-8")
        from_manifest = load_reference(normalized)
        assert from_manifest.metrics == from_raw.metrics

    def test_load_reference_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ReproError, match="JSON object"):
            load_reference(path)


# ---------------------------------------------------------------------------
# Direction classification
# ---------------------------------------------------------------------------

class TestClassify:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("simulation.scalar_accesses_per_sec", "higher"),
            ("parallel.sweep_speedup", "higher"),
            ("cache.cold_hits", "higher"),
            ("random.fault_reduction_percent", "higher"),  # reduction > fault
            ("simulation.scalar_seconds", "lower"),
            ("cache.cold_misses", "lower"),
            ("heuristic.fault_count", "lower"),
            ("declaration.corrupted_accesses", "lower"),
            ("by_geometry.1p-lazy.total_shifts", "lower"),
            ("simulation.engines_exact_match", "exact"),
            ("by_geometry.1p-lazy.identical", "exact"),
            ("simulation.num_accesses", "info"),
            ("parallel.cpu_count", "info"),
        ],
    )
    def test_name_patterns(self, name, expected):
        assert classify_metric(name) == expected

    def test_bool_value_forces_exact(self):
        assert classify_metric("whatever", True) == "exact"


# ---------------------------------------------------------------------------
# Comparison / regression gate
# ---------------------------------------------------------------------------

def _manifest(metrics, run_id="m"):
    return RunManifest(kind="bench", run_id=run_id, metrics=metrics)


class TestCompare:
    def test_self_compare_passes(self):
        for path in BENCH_ARTIFACTS:
            report = compare_files(path, path)
            assert report.ok, f"{path.name}: {report.regressions}"

    def test_injected_throughput_regression_detected(self, tmp_path):
        """Acceptance: a 20% throughput drop must trip the gate at 10%."""
        baseline_path = RESULTS / "BENCH_e18.json"
        payload = json.loads(baseline_path.read_text(encoding="utf-8"))
        for section in payload["by_geometry"].values():
            section["incremental_evals_per_sec"] *= 0.8
        regressed = tmp_path / "BENCH_e18.json"
        regressed.write_text(json.dumps(payload), encoding="utf-8")
        report = compare_files(baseline_path, regressed)
        assert not report.ok
        names = {delta.name for delta in report.regressions}
        assert any("incremental_evals_per_sec" in name for name in names)

    def test_drop_within_tolerance_passes(self):
        report = compare(
            _manifest({"x_per_sec": 100.0}),
            _manifest({"x_per_sec": 95.0}),
            default_tolerance=0.10,
        )
        assert report.ok
        assert report.deltas[0].status == "ok"

    def test_improvement_is_not_regression(self):
        report = compare(
            _manifest({"x_per_sec": 100.0, "run_seconds": 10.0}),
            _manifest({"x_per_sec": 200.0, "run_seconds": 1.0}),
        )
        assert report.ok
        assert {delta.status for delta in report.deltas} == {"improved"}

    def test_lower_better_rise_is_regression(self):
        report = compare(
            _manifest({"run_seconds": 10.0}),
            _manifest({"run_seconds": 12.0}),
            default_tolerance=0.10,
        )
        assert not report.ok

    def test_missing_metric_is_regression(self):
        report = compare(
            _manifest({"a_per_sec": 1.0, "b_per_sec": 2.0}),
            _manifest({"a_per_sec": 1.0}),
        )
        assert not report.ok
        assert report.regressions[0].status == "missing"

    def test_new_metric_is_ok(self):
        report = compare(
            _manifest({"a_per_sec": 1.0}),
            _manifest({"a_per_sec": 1.0, "b_per_sec": 2.0}),
        )
        assert report.ok
        statuses = {delta.name: delta.status for delta in report.deltas}
        assert statuses["b_per_sec"] == "new"

    def test_exact_metric_gated_at_zero(self):
        report = compare(
            _manifest({"engines_exact_match": True}),
            _manifest({"engines_exact_match": False}),
            default_tolerance=0.50,
        )
        assert not report.ok
        assert report.deltas[0].tolerance == 0.0

    def test_info_metrics_never_gate(self):
        report = compare(
            _manifest({"num_accesses": 100}),
            _manifest({"num_accesses": 1}),
        )
        assert report.ok
        assert report.deltas[0].status == "info"

    def test_glob_tolerance_override(self):
        metrics_base = {"sim.x_per_sec": 100.0}
        metrics_cand = {"sim.x_per_sec": 60.0}
        strict = compare(_manifest(metrics_base), _manifest(metrics_cand))
        assert not strict.ok
        loose = compare(
            _manifest(metrics_base),
            _manifest(metrics_cand),
            tolerances={"sim.*": 0.50},
        )
        assert loose.ok

    def test_override_can_tighten_exact_family(self):
        report = compare(
            _manifest({"x_per_sec": 100.0}),
            _manifest({"x_per_sec": 99.5}),
            tolerances={"x_per_sec": 0.0},
        )
        assert not report.ok

    def test_zero_baseline_handling(self):
        report = compare(
            _manifest({"faults": 0, "hits": 0}),
            _manifest({"faults": 3, "hits": 0}),
        )
        statuses = {delta.name: delta.status for delta in report.deltas}
        assert statuses["faults"] == "regression"
        assert statuses["hits"] == "ok"

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ReproError, match=">= 0"):
            compare(_manifest({}), _manifest({}), default_tolerance=-0.1)

    def test_render_mentions_verdict_and_regressions_first(self):
        report = compare(
            _manifest({"a_per_sec": 100.0, "zz_info": 1}),
            _manifest({"a_per_sec": 10.0, "zz_info": 1}),
        )
        text = report.render()
        assert "FAIL (1 regression(s))" in text
        assert text.index("a_per_sec") < text.index("zz_info")

    def test_render_pass_verdict(self):
        text = compare(_manifest({"n": 1}), _manifest({"n": 1})).render()
        assert "PASS" in text
