"""Tests for the unified graceful-degradation layer (``repro.robust``)."""

from __future__ import annotations

import os
import signal
import warnings

import pytest

from repro import robust
from repro.errors import (
    CacheArtifactError,
    ConfigError,
    InjectedFaultError,
    SimulationError,
    TraceFormatError,
)


@pytest.fixture(autouse=True)
def _clean_slate():
    robust.reset_degradations()
    yield
    robust.reset_degradations()


class TestRecoverability:
    @pytest.mark.parametrize(
        "exc",
        [
            InjectedFaultError("chaos"),
            TraceFormatError("torn"),
            CacheArtifactError("corrupt shard"),
            OSError("disk"),
            IOError("io"),
            MemoryError(),
            TimeoutError(),
            EOFError(),
        ],
    )
    def test_infrastructure_failures_are_recoverable(self, exc):
        assert robust.is_recoverable(exc)

    @pytest.mark.parametrize(
        "exc",
        [
            ConfigError("bad geometry"),
            SimulationError("inconsistent counters"),
            TypeError("a plain bug"),
            KeyboardInterrupt(),
        ],
    )
    def test_semantic_failures_propagate(self, exc):
        assert not robust.is_recoverable(exc)

    def test_pool_errors_are_recoverable(self):
        from repro.analysis.pool import PoolCrashError, PoolDispatchError

        assert robust.is_recoverable(PoolCrashError("worker died"))
        assert robust.is_recoverable(PoolDispatchError("send failed"))


class TestAccounting:
    def test_record_counts_and_summarises(self):
        robust.record_degradation("map", "pooled", "serial", "t", warn=False)
        robust.record_degradation("map", "pooled", "serial", "t", warn=False)
        robust.record_degradation(
            "engine", "streaming", "vectorized", warn=False
        )
        assert robust.degradation_summary() == {
            "map:pooled->serial": 2,
            "engine:streaming->vectorized": 1,
        }
        assert len(robust.degradation_events()) == 3

    def test_counter_reaches_obs_registry(self):
        from repro.obs import get_registry

        before = get_registry().counter_value(
            "robust.degradations", domain="cache", edge="entry->quarantine+recompute"
        )
        robust.record_degradation(
            "cache", "entry", "quarantine+recompute", warn=False
        )
        after = get_registry().counter_value(
            "robust.degradations", domain="cache", edge="entry->quarantine+recompute"
        )
        assert after == before + 1

    def test_warns_once_per_edge(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            robust.record_degradation("kernel", "compiled", "numpy", "x")
            robust.record_degradation("kernel", "compiled", "numpy", "y")
        assert len(caught) == 1
        assert "kernel" in str(caught[0].message)

    def test_reset_rearms_warnings(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            robust.record_degradation("stream", "parallel", "sequential")
            robust.reset_degradations()
            robust.record_degradation("stream", "parallel", "sequential")
        assert len(caught) == 2
        assert robust.degradation_summary() == {
            "stream:parallel->sequential": 1
        }

    def test_chains_cover_every_documented_domain(self):
        assert set(robust.DEGRADATION_CHAINS) == {
            "engine", "stream", "kernel", "ilp", "map", "cache", "trace",
            "serve",
        }
        for chain in robust.DEGRADATION_CHAINS.values():
            assert len(chain) >= 2


class TestRunWithFallbacks:
    def test_first_success_records_nothing(self):
        result = robust.run_with_fallbacks(
            "map", [("pooled", lambda: 42), ("serial", lambda: 0)]
        )
        assert result == 42
        assert robust.degradation_summary() == {}

    def test_recoverable_failure_degrades(self):
        def boom():
            raise OSError("broken pipe")

        result = robust.run_with_fallbacks(
            "map", [("pooled", boom), ("serial", lambda: 7)], warn=False
        )
        assert result == 7
        assert robust.degradation_summary() == {"map:pooled->serial": 1}

    def test_semantic_failure_propagates_immediately(self):
        def bad_config():
            raise ConfigError("nope")

        with pytest.raises(ConfigError):
            robust.run_with_fallbacks(
                "engine",
                [("streaming", bad_config), ("vectorized", lambda: 1)],
            )
        assert robust.degradation_summary() == {}

    def test_last_level_failure_propagates(self):
        def boom():
            raise OSError("still broken")

        with pytest.raises(OSError):
            robust.run_with_fallbacks(
                "map", [("pooled", boom), ("serial", boom)], warn=False
            )

    def test_empty_attempts_rejected(self):
        with pytest.raises(ValueError):
            robust.run_with_fallbacks("map", [])


@pytest.mark.skipif(
    not hasattr(signal, "SIGTERM"), reason="no SIGTERM on this platform"
)
def test_sigterm_handler_raises_keyboard_interrupt():
    previous = signal.getsignal(signal.SIGTERM)
    try:
        robust.install_sigterm_handler()
        with pytest.raises(KeyboardInterrupt):
            os.kill(os.getpid(), signal.SIGTERM)
    finally:
        signal.signal(signal.SIGTERM, previous)
