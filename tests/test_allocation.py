"""Unit tests for repro.core.allocation (SPM allocation substrate)."""

import pytest

from repro.core.allocation import (
    DataObject,
    _knapsack_select,
    allocate,
    object_name_of,
    partition_objects,
    simulate_allocation,
)
from repro.dwm.config import DWMConfig
from repro.errors import OptimizationError
from repro.trace.model import AccessTrace
from repro.trace.kernels import crc32_trace


class TestObjectNameOf:
    def test_array_element(self):
        assert object_name_of("A[3]") == "A"

    def test_nested_brackets_take_last(self):
        assert object_name_of("blk0[12]") == "blk0"

    def test_scalar(self):
        assert object_name_of("counter") == "counter"

    def test_negative_index(self):
        assert object_name_of("x[-1]") == "x"


class TestPartitionObjects:
    def test_groups_array_elements(self):
        trace = AccessTrace(["A[0]", "A[1]", "s", "A[0]"])
        objects = {obj.name: obj for obj in partition_objects(trace)}
        assert set(objects) == {"A", "s"}
        assert objects["A"].size_words == 2
        assert objects["A"].accesses == 3
        assert objects["s"].accesses == 1

    def test_heat_density(self):
        obj = DataObject(name="A", items=("A[0]", "A[1]"), accesses=10)
        assert obj.heat_density == 5.0

    def test_first_touch_order(self):
        trace = AccessTrace(["B[0]", "A[0]", "B[1]"])
        names = [obj.name for obj in partition_objects(trace)]
        assert names == ["B", "A"]


class TestKnapsack:
    def test_picks_best_subset(self):
        objects = [
            DataObject("A", ("A[0]", "A[1]"), 0),
            DataObject("B", ("B[0]",), 0),
            DataObject("C", ("C[0]", "C[1]"), 0),
        ]
        chosen = _knapsack_select(objects, [10.0, 9.0, 8.0], capacity=3)
        assert [objects[i].name for i in chosen] == ["A", "B"]

    def test_capacity_zero_chooses_nothing(self):
        objects = [DataObject("A", ("A[0]",), 5)]
        assert _knapsack_select(objects, [1.0], 0) == []

    def test_prefers_denser_combination(self):
        objects = [
            DataObject("big", tuple(f"b[{i}]" for i in range(4)), 0),
            DataObject("s1", ("s1",), 0),
            DataObject("s2", ("s2",), 0),
        ]
        chosen = _knapsack_select(objects, [10.0, 6.0, 6.0], capacity=4)
        assert sorted(objects[i].name for i in chosen) == ["s1", "s2"]


class TestAllocate:
    @pytest.fixture
    def trace(self):
        return crc32_trace()

    def test_respects_capacity(self, trace):
        config = DWMConfig(words_per_dbc=16, num_dbcs=2)
        allocation = allocate(trace, config)
        assert allocation.used_words <= allocation.capacity_words

    def test_unknown_policy_raises(self, trace):
        config = DWMConfig(words_per_dbc=16, num_dbcs=1)
        with pytest.raises(OptimizationError):
            allocate(trace, config, policy="psychic")

    def test_unknown_placement_method_raises(self, trace):
        config = DWMConfig(words_per_dbc=16, num_dbcs=1)
        with pytest.raises(OptimizationError):
            allocate(trace, config, placement_method="mystic")

    def test_full_capacity_takes_everything(self, trace):
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=64)
        allocation = allocate(trace, config)
        assert allocation.used_words == trace.num_items

    def test_hot_objects_preferred(self, trace):
        # crc scalar + table are the densest objects; a 17-word SPM should
        # hold them rather than buffer slices.
        config = DWMConfig(words_per_dbc=17, num_dbcs=1)
        allocation = allocate(trace, config, policy="oblivious")
        assert "crc" in allocation.resident_objects
        assert "tbl" in allocation.resident_objects

    def test_placement_valid_for_resident_items(self, trace):
        config = DWMConfig(words_per_dbc=16, num_dbcs=2)
        allocation = allocate(trace, config)
        resident = [
            item for item in trace.items if allocation.is_resident(item)
        ]
        allocation.placement.validate(config, resident)

    def test_policies_agree_when_everything_fits(self, trace):
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=64)
        oblivious = allocate(trace, config, policy="oblivious")
        aware = allocate(trace, config, policy="placement_aware")
        assert set(oblivious.resident_objects) == set(aware.resident_objects)


class TestSimulateAllocation:
    def test_hit_fraction_and_latency(self):
        trace = AccessTrace(["A[0]", "A[1]", "B[0]", "A[0]"])
        config = DWMConfig(words_per_dbc=2, num_dbcs=1, port_offsets=(0,))
        allocation = allocate(trace, config, dram_latency_ns=100.0)
        sim = simulate_allocation(trace, config, allocation, dram_latency_ns=100.0)
        assert sim.spm_accesses + sim.dram_accesses == len(trace)
        # A (3 accesses, 2 words) must win the 2-word SPM over B.
        assert allocation.resident_objects == ("A",)
        assert sim.spm_accesses == 3
        assert sim.spm_hit_fraction == pytest.approx(0.75)
        # Latency: 1 dram access at 100 + 3 reads at 1.0 + shift costs.
        assert sim.total_latency_ns >= 100.0 + 3.0

    def test_zero_capacity_everything_in_dram(self):
        trace = AccessTrace(["A[0]", "B[0]"])
        config = DWMConfig(words_per_dbc=1, num_dbcs=1)
        allocation = allocate(trace, config, dram_latency_ns=10.0)
        # Only one word fits; at most one access hits.
        sim = simulate_allocation(trace, config, allocation, dram_latency_ns=10.0)
        assert sim.dram_accesses >= 1

    def test_larger_spm_never_slower(self):
        trace = crc32_trace()
        latencies = []
        for dbcs in (1, 2, 8):
            config = DWMConfig(words_per_dbc=16, num_dbcs=dbcs)
            allocation = allocate(trace, config)
            sim = simulate_allocation(trace, config, allocation)
            latencies.append(sim.total_latency_ns)
        assert latencies == sorted(latencies, reverse=True)
