"""Tests for the persistent placement-result cache."""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.cache import (
    CACHE_DIR_ENV,
    CACHE_ENV,
    ResultCache,
    cache_scope,
    ensure_configured_from_env,
    placement_cache_disabled,
    placement_key,
)
from repro.analysis.experiments import run_e9
from repro.core.api import get_placement_cache, optimize_placement
from repro.dwm.config import DWMConfig
from repro.trace.synthetic import markov_trace


@pytest.fixture
def trace():
    return markov_trace(16, 500, seed=13)


@pytest.fixture
def config(trace):
    return DWMConfig.for_items(trace.num_items, words_per_dbc=8)


class TestPlacementKey:
    def test_stable_across_rename(self, trace, config):
        renamed = trace.renamed("something-else")
        assert placement_key(trace, config, "heuristic", {}) == placement_key(
            renamed, config, "heuristic", {}
        )

    def test_sensitive_to_trace_content(self, trace, config):
        other = markov_trace(16, 500, seed=14)
        assert placement_key(trace, config, "heuristic", {}) != placement_key(
            other, config, "heuristic", {}
        )

    def test_sensitive_to_config(self, trace, config):
        import dataclasses

        eager = dataclasses.replace(config, port_policy="eager")
        assert placement_key(trace, config, "heuristic", {}) != placement_key(
            trace, eager, "heuristic", {}
        )

    def test_sensitive_to_method_and_kwargs(self, trace, config):
        base = placement_key(trace, config, "heuristic", {})
        assert base != placement_key(trace, config, "declaration", {})
        assert base != placement_key(trace, config, "heuristic", {"seed": 1})

    def test_kwargs_order_irrelevant(self, trace, config):
        assert placement_key(
            trace, config, "annealing", {"seed": 1, "max_evaluations": 10}
        ) == placement_key(
            trace, config, "annealing", {"max_evaluations": 10, "seed": 1}
        )


class TestResultCacheStore:
    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, {"hello": [1, 2]})
        assert cache.get(key) == {"hello": [1, 2]}
        assert len(cache) == 1

    def test_missing_key_is_none(self, tmp_path):
        assert ResultCache(tmp_path).get("ff" + "0" * 62) is None

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        cache.put(key, {"fine": True})
        cache._path(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_corrupt_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        cache.put(key, {"fine": True})
        cache._path(key).write_text("{not json", encoding="utf-8")
        assert cache.corrupt_count() == 0
        assert cache.get(key) is None
        # The torn file is renamed *.corrupt: the key is free again and the
        # evidence is kept on disk.
        assert cache.quarantined == 1
        assert cache.corrupt_count() == 1
        assert not cache._path(key).exists()
        assert cache._path(key).with_suffix(".corrupt").exists()
        assert len(cache) == 0
        # A rewrite after quarantine hits normally again.
        cache.put(key, {"fine": True})
        assert cache.get(key) == {"fine": True}
        assert cache.quarantined == 1

    def test_clear_removes_quarantined_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ee" + "0" * 62
        cache.put(key, {"fine": True})
        cache._path(key).write_text("{not json", encoding="utf-8")
        cache.get(key)
        assert cache.corrupt_count() == 1
        cache.clear()
        assert cache.corrupt_count() == 0

    def test_missing_entry_not_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ff" + "0" * 62) is None
        assert cache.quarantined == 0
        assert cache.corrupt_count() == 0

    def test_invalidate_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = [prefix + "0" * 62 for prefix in ("aa", "bb", "cc")]
        for key in keys:
            cache.put(key, {"k": key})
        assert cache.invalidate(keys[0]) is True
        assert cache.invalidate(keys[0]) is False
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.size_bytes() == 0


class TestOptimizeWithCache:
    def test_warm_rerun_hits(self, tmp_path, trace, config):
        with cache_scope(enabled=True, root=tmp_path) as cache:
            cold = optimize_placement(trace, config, method="heuristic")
            assert cache.hits == 0 and cache.misses == 1
            warm = optimize_placement(trace, config, method="heuristic")
            assert cache.hits == 1 and cache.misses == 1
        assert warm.placement.as_dict() == cold.placement.as_dict()
        assert warm.total_shifts == cold.total_shifts
        assert warm.details["cache"] == "hit"
        assert warm.runtime_seconds == 0.0
        assert "cache" not in cold.details

    def test_cache_survives_process_scopes(self, tmp_path, trace, config):
        """A fresh cache object over the same directory still hits."""
        with cache_scope(enabled=True, root=tmp_path):
            cold = optimize_placement(trace, config, method="heuristic")
        with cache_scope(enabled=True, root=tmp_path) as cache:
            warm = optimize_placement(trace, config, method="heuristic")
            assert cache.hits == 1
        assert warm.total_shifts == cold.total_shifts

    def test_different_kwargs_do_not_collide(self, tmp_path, trace, config):
        with cache_scope(enabled=True, root=tmp_path) as cache:
            a = optimize_placement(trace, config, method="random", seed=0)
            b = optimize_placement(trace, config, method="random", seed=1)
            assert cache.hits == 0 and cache.misses == 2
        assert a.placement.as_dict() != b.placement.as_dict()

    def test_corrupt_payload_recomputes(self, tmp_path, trace, config):
        with cache_scope(enabled=True, root=tmp_path) as cache:
            cold = optimize_placement(trace, config, method="heuristic")
            key = placement_key(trace, config, "heuristic", {})
            cache.put(key, {"schema": 1, "nonsense": True})
            recomputed = optimize_placement(trace, config, method="heuristic")
            assert recomputed.total_shifts == cold.total_shifts
            assert "cache" not in recomputed.details

    def test_disabled_scope_never_touches_disk(self, tmp_path, trace, config):
        with cache_scope(enabled=False, root=tmp_path) as cache:
            assert cache is None
            optimize_placement(trace, config, method="heuristic")
        assert len(ResultCache(tmp_path)) == 0


class TestActivationPlumbing:
    def test_scope_restores_hook_and_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert get_placement_cache() is None
        with cache_scope(enabled=True, root=tmp_path):
            assert get_placement_cache() is not None
            assert os.environ[CACHE_ENV] == "1"
            assert os.environ[CACHE_DIR_ENV] == str(tmp_path)
        assert get_placement_cache() is None
        assert CACHE_ENV not in os.environ

    def test_placement_cache_disabled_nests(self, tmp_path, trace, config):
        with cache_scope(enabled=True, root=tmp_path) as cache:
            with placement_cache_disabled():
                assert get_placement_cache() is None
                optimize_placement(trace, config, method="frequency")
            assert get_placement_cache() is cache
            assert cache.hits == 0 and cache.misses == 0

    def test_ensure_configured_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "1")
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        from repro.core.api import set_placement_cache

        previous = set_placement_cache(None)
        try:
            cache = ensure_configured_from_env()
            assert isinstance(cache, ResultCache)
            assert cache.root == tmp_path
        finally:
            set_placement_cache(previous)

    def test_e9_bypasses_cache(self, tmp_path):
        """E9 times the optimizer; a warm cache must not short-circuit it."""
        with cache_scope(enabled=True, root=tmp_path) as cache:
            run_e9(sizes=(8,), methods=("frequency",))
            assert cache.hits == 0 and cache.misses == 0
        assert len(ResultCache(tmp_path)) == 0
