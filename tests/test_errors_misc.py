"""Tests for the exception hierarchy and remaining small surfaces."""

import pytest

from repro.errors import (
    CapacityError,
    ConfigError,
    OptimizationError,
    PlacementError,
    ReproError,
    SimulationError,
    TraceError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigError, TraceError, PlacementError, CapacityError,
        SimulationError, OptimizationError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        # Config/trace/placement problems double as ValueErrors so generic
        # callers can catch them idiomatically.
        assert issubclass(ConfigError, ValueError)
        assert issubclass(TraceError, ValueError)
        assert issubclass(PlacementError, ValueError)

    def test_runtime_error_compatibility(self):
        assert issubclass(SimulationError, RuntimeError)
        assert issubclass(OptimizationError, RuntimeError)

    def test_capacity_is_placement_error(self):
        assert issubclass(CapacityError, PlacementError)

    def test_single_catch_at_api_boundary(self):
        from repro.core.api import optimize_placement
        from repro.trace.model import AccessTrace

        with pytest.raises(ReproError):
            optimize_placement(AccessTrace(["a"]), method="nope")


class TestExperimentsMain:
    def test_main_prints_single_experiment(self, capsys):
        from repro.analysis.experiments import main

        assert main(["e1"]) == 0
        out = capsys.readouterr().out
        assert "Benchmark characteristics" in out

    def test_main_unknown_id_raises(self):
        from repro.analysis.experiments import main

        with pytest.raises(KeyError):
            main(["e999"])


class TestPackageSurface:
    def test_version_exposed(self):
        import repro

        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.core
        import repro.dwm
        import repro.memory
        import repro.trace

        for module in (repro.core, repro.dwm, repro.memory, repro.trace,
                       repro.analysis):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (
                    module.__name__, name
                )
