"""Unit tests for repro.core.baselines."""

import pytest

from repro.core.baselines import (
    declaration_order_placement,
    frequency_placement,
    random_placement,
    random_placement_mean_shifts,
)
from repro.core.cost import evaluate_placement
from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig
from repro.trace.model import AccessTrace


@pytest.fixture
def problem():
    trace = AccessTrace(["a", "b", "c", "b", "b", "a", "d", "d"])
    config = DWMConfig(words_per_dbc=4, num_dbcs=2, port_offsets=(0,))
    return PlacementProblem(trace=trace, config=config)


class TestDeclarationOrder:
    def test_first_touch_sequential(self, problem):
        placement = declaration_order_placement(problem)
        assert placement["a"].dbc == 0 and placement["a"].offset == 0
        assert placement["b"].offset == 1
        assert placement["c"].offset == 2
        assert placement["d"].offset == 3

    def test_valid(self, problem):
        placement = declaration_order_placement(problem)
        placement.validate(problem.config, problem.items)


class TestRandom:
    def test_deterministic_per_seed(self, problem):
        assert random_placement(problem, seed=3) == random_placement(problem, seed=3)

    def test_seeds_differ(self, locality_problem):
        assert random_placement(locality_problem, 0) != random_placement(
            locality_problem, 1
        )

    def test_valid(self, problem):
        random_placement(problem, 7).validate(problem.config, problem.items)

    def test_mean_shifts_between_min_max(self, locality_problem):
        seeds = range(4)
        costs = [
            evaluate_placement(
                locality_problem, random_placement(locality_problem, s)
            )
            for s in seeds
        ]
        mean = random_placement_mean_shifts(locality_problem, list(seeds))
        assert min(costs) <= mean <= max(costs)


class TestFrequency:
    def test_round_robin_hot_items_at_ports(self, problem):
        # All 4 items fit one DBC (min_dbcs_needed == 1), so round-robin
        # degenerates to proximity ranking on DBC 0 (port at offset 0).
        placement = frequency_placement(problem, distribute="round_robin")
        # b is hottest (3 accesses): gets the port-closest offset (0).
        assert placement["b"].offset == 0
        assert placement["b"].dbc == 0
        # a (2, earlier first touch than d) gets the next-closest offset.
        assert placement["a"].offset == 1
        assert placement["d"].offset == 2
        assert placement["c"].offset == 3

    def test_round_robin_spreads_over_needed_dbcs(self):
        trace = AccessTrace(["a", "b", "c", "b", "b", "a", "d", "d", "e", "f"])
        config = DWMConfig(words_per_dbc=3, num_dbcs=4, port_offsets=(0,))
        problem = PlacementProblem(trace=trace, config=config)
        placement = frequency_placement(problem, distribute="round_robin")
        # 6 items over DBCs of 3 words -> 2 DBCs; top-2 hot items get the
        # port offset of their own DBC.
        hot = problem.hot_order
        assert placement[hot[0]] .offset == 0
        assert placement[hot[1]].offset == 0
        assert placement[hot[0]].dbc != placement[hot[1]].dbc

    def test_packed_fills_dbc0_first(self, problem):
        placement = frequency_placement(problem, distribute="packed")
        hot = problem.hot_order
        for item in hot[:4]:
            assert placement[item].dbc == 0

    def test_unknown_mode_raises(self, problem):
        with pytest.raises(ValueError, match="distribute"):
            frequency_placement(problem, distribute="diagonal")

    def test_hotter_items_closer_to_port(self, locality_problem):
        placement = frequency_placement(locality_problem, distribute="packed")
        config = locality_problem.config
        hot = locality_problem.hot_order

        def port_distance(item):
            slot = placement[item]
            return min(abs(slot.offset - p) for p in config.port_offsets)

        first_dbc_items = [i for i in hot if placement[i].dbc == 0]
        distances = [port_distance(i) for i in first_dbc_items]
        assert distances == sorted(distances)

    def test_valid(self, locality_problem):
        for mode in ("round_robin", "packed"):
            frequency_placement(locality_problem, distribute=mode).validate(
                locality_problem.config, locality_problem.items
            )
