"""Additional rendering tests: heatmaps and formatting edge cases."""


from repro.analysis.report import (
    format_bar_chart,
    format_grouped_bars,
    format_heatmap,
    format_table,
)


class TestHeatmap:
    def test_intensities_scale_to_glyphs(self):
        text = format_heatmap({"r": [0.0, 0.5, 1.0]}, levels=" ab")
        row = next(line for line in text.splitlines() if line.startswith("r"))
        cells = row.split("|")[1]
        assert cells[0] == " "
        assert cells[2] == "b"

    def test_all_zero_rows(self):
        text = format_heatmap({"a": [0, 0], "b": [0]})
        assert "scale" not in text  # no max line when everything is zero
        assert "a" in text and "b" in text

    def test_scale_line_present(self):
        text = format_heatmap({"a": [3.0]})
        assert "max=3" in text

    def test_labels_aligned(self):
        text = format_heatmap({"x": [1], "longer": [1]})
        lines = [line for line in text.splitlines() if "|" in line]
        assert lines[0].index("|") == lines[1].index("|")

    def test_title(self):
        assert format_heatmap({}, title="T").startswith("T")


class TestTableEdgeCases:
    def test_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert "a" in text and "b" in text

    def test_mixed_types(self):
        text = format_table(("v",), [(None,), (True,), (1.5,)])
        assert "None" in text
        assert "True" in text
        assert "1.500" in text

    def test_custom_float_format(self):
        text = format_table(("v",), [(0.123456,)], float_format="{:.1f}")
        assert "0.1" in text
        assert "0.12" not in text


class TestBarChartEdgeCases:
    def test_zero_values_render(self):
        text = format_bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in text and "b" in text

    def test_negative_width_never_crashes(self):
        # Rounded bar lengths are clamped at zero.
        text = format_bar_chart({"a": 1.0}, width=1)
        assert "a" in text


class TestGroupedBarsEdgeCases:
    def test_empty(self):
        text = format_grouped_bars({})
        assert text == ""

    def test_missing_series_in_some_groups(self):
        text = format_grouped_bars(
            {"g1": {"m1": 1.0}, "g2": {"m2": 2.0}}
        )
        assert "g1:" in text and "g2:" in text
        assert "m1" in text and "m2" in text

    def test_all_zero_values(self):
        text = format_grouped_bars({"g": {"m": 0.0}})
        assert "0.000" in text
