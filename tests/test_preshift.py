"""Unit tests for the speculative pre-shifting controller."""

import pytest

from repro.core.api import build_problem, optimize_placement
from repro.core.placement import Placement
from repro.dwm.config import DWMConfig, PortPolicy
from repro.dwm.preshift import (
    NextOffsetPredictor,
    PreshiftResult,
    simulate_preshift,
)
from repro.errors import OptimizationError
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace, uniform_trace


class TestPredictor:
    def test_no_history_no_prediction(self):
        assert NextOffsetPredictor().predict(0) is None

    def test_learns_deterministic_transition(self):
        predictor = NextOffsetPredictor()
        for _ in range(3):
            predictor.observe(0, 1)
            predictor.observe(0, 2)
        # After observing offset 1, the successor has always been 2.
        predictor.observe(0, 1)
        assert predictor.predict(0) == 2

    def test_confidence_gate_blocks_weak_signal(self):
        predictor = NextOffsetPredictor()
        # 1 -> 2 once, 1 -> 3 once: 50% confidence < default 60%.
        predictor.observe(0, 1)
        predictor.observe(0, 2)
        predictor.observe(0, 1)
        predictor.observe(0, 3)
        predictor.observe(0, 1)
        assert predictor.predict(0) is None
        # With the gate relaxed the majority successor is returned.
        assert predictor.predict(0, confidence=0.0, min_observations=1) in (2, 3)

    def test_min_observations(self):
        predictor = NextOffsetPredictor()
        predictor.observe(0, 1)
        predictor.observe(0, 2)
        predictor.observe(0, 1)
        assert predictor.predict(0, min_observations=2) is None

    def test_per_dbc_isolation(self):
        predictor = NextOffsetPredictor()
        for _ in range(3):
            predictor.observe(0, 1)
            predictor.observe(0, 2)
        predictor.observe(0, 1)
        assert predictor.predict(1) is None


class TestSimulatePreshift:
    def test_perfectly_periodic_pattern_near_free(self):
        # a b a b ... on one DBC: after warm-up every access is predicted.
        trace = AccessTrace(["a", "b"] * 50)
        config = DWMConfig(words_per_dbc=8, num_dbcs=1, port_offsets=(0,))
        problem = build_problem(trace, config)
        placement = Placement({"a": (0, 0), "b": (0, 4)})
        result = simulate_preshift(problem, placement)
        assert result.latency_reduction_percent > 80.0
        assert result.prediction_accuracy > 0.9

    def test_random_pattern_abstains(self):
        trace = uniform_trace(16, 400, seed=3)
        config = DWMConfig.for_items(16, words_per_dbc=16)
        problem = build_problem(trace, config)
        placement = optimize_placement(
            trace, config, method="declaration"
        ).placement
        result = simulate_preshift(problem, placement)
        # The gate may allow a few speculations, but never a latency loss
        # beyond noise, and overhead stays bounded.
        assert result.latency_reduction_percent >= -5.0

    def test_baseline_matches_evaluator(self):
        from repro.core.cost import evaluate_placement

        trace = markov_trace(10, 200, seed=4)
        config = DWMConfig.for_items(10, words_per_dbc=8)
        problem = build_problem(trace, config)
        placement = optimize_placement(trace, config, method="heuristic").placement
        result = simulate_preshift(problem, placement)
        assert result.baseline_demand_shifts == evaluate_placement(
            problem, placement
        )

    def test_energy_includes_speculation(self):
        trace = AccessTrace(["a", "b"] * 30)
        config = DWMConfig(words_per_dbc=8, num_dbcs=1, port_offsets=(0,))
        problem = build_problem(trace, config)
        placement = Placement({"a": (0, 0), "b": (0, 4)})
        result = simulate_preshift(problem, placement)
        assert result.total_energy_shifts == (
            result.demand_shifts + result.speculative_shifts
        )
        assert result.speculative_shifts > 0

    def test_eager_policy_rejected(self):
        trace = AccessTrace(["a"])
        config = DWMConfig(
            words_per_dbc=4, num_dbcs=1, port_policy=PortPolicy.EAGER
        )
        problem = build_problem(trace, config)
        with pytest.raises(OptimizationError, match="lazy"):
            simulate_preshift(problem, Placement({"a": (0, 0)}))


class TestPreshiftResult:
    def test_zero_baseline(self):
        result = PreshiftResult(0, 0, 0, 0, 0)
        assert result.latency_reduction_percent == 0.0
        assert result.energy_overhead_percent == 0.0
        assert result.prediction_accuracy == 0.0

    def test_metrics(self):
        result = PreshiftResult(
            demand_shifts=50, speculative_shifts=30,
            baseline_demand_shifts=100, predictions=10, correct_predictions=7,
        )
        assert result.latency_reduction_percent == pytest.approx(50.0)
        assert result.energy_overhead_percent == pytest.approx(-20.0)
        assert result.prediction_accuracy == pytest.approx(0.7)
