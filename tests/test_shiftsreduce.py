"""Unit tests for the ShiftsReduce bidirectional placement."""

import pytest

from repro.core.api import build_problem, optimize_placement
from repro.core.cost import evaluate_placement
from repro.core.shiftsreduce import bidirectional_order, shiftsreduce_placement
from repro.dwm.config import DWMConfig
from repro.errors import OptimizationError
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace, pingpong_trace, zipf_trace


class TestBidirectionalOrder:
    def test_trivial_sizes(self):
        assert bidirectional_order([], {}) == []
        assert bidirectional_order(["a"], {}) == ["a"]

    def test_duplicate_items_raise(self):
        with pytest.raises(OptimizationError):
            bidirectional_order(["a", "a"], {})

    def test_is_a_permutation(self):
        items = [f"v{i}" for i in range(8)]
        affinity = {("v0", "v1"): 3, ("v1", "v2"): 2, ("v5", "v6"): 4}
        order = bidirectional_order(items, affinity)
        assert sorted(order) == sorted(items)

    def test_highest_degree_seed_sits_between_its_neighbours(self):
        # Star around "hub": the hub seeds the chain and satellites attach
        # on both sides, so the hub cannot end up at either extreme end.
        items = ["hub", "a", "b", "c", "d"]
        affinity = {
            ("hub", "a"): 5,
            ("hub", "b"): 5,
            ("hub", "c"): 5,
            ("hub", "d"): 5,
        }
        order = bidirectional_order(items, affinity)
        position = order.index("hub")
        assert 0 < position < len(order) - 1

    def test_chain_affinity_recovers_the_chain(self):
        items = ["a", "b", "c", "d", "e"]
        affinity = {
            ("a", "b"): 10,
            ("b", "c"): 10,
            ("c", "d"): 10,
            ("d", "e"): 10,
        }
        order = bidirectional_order(items, affinity)
        index = {item: position for position, item in enumerate(order)}
        for left, right in (("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")):
            assert abs(index[left] - index[right]) == 1

    def test_deterministic_across_runs(self):
        trace = markov_trace(9, 150, locality=0.6, seed=7)
        problem = build_problem(trace, DWMConfig(words_per_dbc=16, num_dbcs=1))
        first = bidirectional_order(list(problem.items), problem.affinity)
        for _ in range(3):
            again = bidirectional_order(list(problem.items), problem.affinity)
            assert again == first


class TestShiftsreducePlacement:
    @pytest.mark.parametrize("num_ports", [1, 2])
    def test_never_worse_than_heuristic(self, num_ports):
        for seed in range(4):
            trace = markov_trace(10, 180, locality=0.7, seed=seed)
            config = DWMConfig.for_items(
                trace.num_items, words_per_dbc=8, num_ports=num_ports
            )
            heuristic = optimize_placement(trace, config, method="heuristic")
            ours = optimize_placement(trace, config, method="shiftsreduce")
            assert ours.total_shifts <= heuristic.total_shifts

    def test_valid_on_eager_policy(self):
        trace = zipf_trace(8, 120, seed=3)
        config = DWMConfig(
            words_per_dbc=8,
            num_dbcs=2,
            port_offsets=(0, 5),
            port_policy="eager",
        )
        result = optimize_placement(trace, config, method="shiftsreduce")
        result.placement.validate(config, list(trace.items))
        heuristic = optimize_placement(trace, config, method="heuristic")
        assert result.total_shifts <= heuristic.total_shifts

    def test_beats_declaration_on_pingpong(self):
        trace = pingpong_trace(4, 30)
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=4)
        ours = optimize_placement(trace, config, method="shiftsreduce")
        declaration = optimize_placement(trace, config, method="declaration")
        assert ours.total_shifts <= declaration.total_shifts

    def test_single_item_trace(self):
        trace = AccessTrace([("x", "read")] * 5)
        config = DWMConfig(words_per_dbc=4, num_dbcs=1)
        problem = build_problem(trace, config)
        placement = shiftsreduce_placement(problem)
        placement.validate(config, ["x"])
        assert evaluate_placement(problem, placement) >= 0

    def test_deterministic_placement(self):
        trace = markov_trace(8, 120, locality=0.5, seed=11)
        config = DWMConfig(words_per_dbc=4, num_dbcs=3)
        problem = build_problem(trace, config)
        first = shiftsreduce_placement(problem).as_dict()
        for _ in range(3):
            assert shiftsreduce_placement(problem).as_dict() == first
