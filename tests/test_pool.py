"""Tests for the persistent worker pool and shared-memory trace layer.

Covers the lifecycle guarantees the orchestration layer depends on:
workers persist across batches, a worker that dies mid-task is replaced
and the task retried on a fresh worker, an interrupt mid-batch tears the
pool down and flushes checkpoints, and no shared-memory segment outlives
its ``publish_traces`` block — under both fork and spawn start methods.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle

import pytest

from repro.analysis import pool as pool_mod
from repro.analysis.checkpoint import CheckpointJournal, run_checkpointed, task_key
from repro.analysis.parallel import MP_START_ENV, TaskFailure
from repro.analysis.sweep import sweep
from repro.memory import shm
from repro.trace.synthetic import markov_trace

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------------
# Worker bodies — top-level so every start method (fork/spawn) can pickle them.
# ---------------------------------------------------------------------------

def _triple(value: int) -> int:
    return value * 3


def _worker_pid(_task) -> int:
    return os.getpid()


def _crash_once(task):
    """Kill the worker on the first attempt; succeed on the retry.  The
    marker file carries state across worker generations."""
    marker, value = task
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        os._exit(11)
    return value * 7


def _interrupt_task(value):
    raise KeyboardInterrupt


def _handle_info(handle):
    """Resolve a TraceHandle inside a worker (fork: registry; spawn: attach)."""
    trace = handle.trace()
    resolved = handle.resolved()
    return (
        trace.name,
        handle.fingerprint(),
        int(resolved.item_at.sum()),
        int(resolved.is_write.sum()),
    )


@pytest.fixture
def traces():
    return [markov_trace(8, 120, seed=s) for s in (10, 11)]


@pytest.fixture
def fresh_pools():
    """Isolate each test's pools; never leak workers into the next test."""
    pool_mod.shutdown_pools()
    yield
    pool_mod.shutdown_pools()


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
class TestPoolLifecycle:
    def test_workers_persist_across_batches(self, fresh_pools):
        pool = pool_mod.get_pool(2)
        first = set(pool.run(_worker_pid, list(range(6))))
        second = set(pool.run(_worker_pid, list(range(6))))
        assert first == second  # same processes served both batches
        assert pool_mod.get_pool(2) is pool

    def test_results_in_task_order(self, fresh_pools):
        pool = pool_mod.get_pool(2)
        assert pool.run(_triple, [3, 1, 2]) == [9, 3, 6]

    def test_worker_death_retries_on_fresh_worker(self, fresh_pools, tmp_path):
        pool = pool_mod.get_pool(2)
        marker = str(tmp_path / "crash-marker")
        results = pool.run(_crash_once, [(marker, 5)], retries=1)
        assert results == [35]
        # The pool replaced the dead worker and still works.
        assert pool.run(_triple, [2]) == [6]

    def test_exhausted_retries_become_task_failure(self, fresh_pools, tmp_path):
        pool = pool_mod.get_pool(2)
        missing = str(tmp_path / "never-created" / "marker")
        results = pool.run(_crash_once, [(missing, 1)], retries=0)
        assert isinstance(results[0], TaskFailure)
        assert results[0].kind == "error"

    def test_interrupt_mid_batch_tears_pool_down(self, fresh_pools):
        pool = pool_mod.get_pool(2)
        pids = set(pool.run(_worker_pid, list(range(4))))

        def boom(_index, _value):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            pool.run(_triple, list(range(8)), on_result=boom)
        assert pool.closed
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # every worker is gone
        # The registry hands out a fresh pool afterwards.
        replacement = pool_mod.get_pool(2)
        assert replacement is not pool
        assert replacement.run(_triple, [4]) == [12]

    def test_worker_keyboard_interrupt_is_a_failure_not_a_hang(
        self, fresh_pools
    ):
        pool = pool_mod.get_pool(2)
        results = pool.run(_interrupt_task, [1], retries=0)
        assert isinstance(results[0], TaskFailure)


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
class TestCheckpointInterrupt:
    def test_interrupt_flushes_completed_cells(self, fresh_pools, tmp_path):
        """A KeyboardInterrupt mid-batch must leave completed tasks in the
        journal so the run can resume."""
        journal_path = tmp_path / "journal.jsonl"
        keys = [task_key("cell", {"i": i}) for i in range(4)]
        seen: list[int] = []

        def fn(value):
            if value == 2:
                raise KeyboardInterrupt
            seen.append(value)
            return value

        with pytest.raises(KeyboardInterrupt):
            with CheckpointJournal(journal_path, resume=False) as journal:
                run_checkpointed(
                    fn, [0, 1, 2, 3], keys, checkpoint=journal, retries=1
                )
        resumed = CheckpointJournal(journal_path, resume=True)
        try:
            assert resumed.restored == len(seen) > 0
        finally:
            resumed.close()


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
class TestSharedMemory:
    def test_publish_release_roundtrip(self, fresh_pools):
        trace = markov_trace(8, 200, seed=1)
        handle = shm.publish(trace)
        try:
            assert shm.active_segments() == [handle.shm_name]
            assert handle.trace() is trace  # in-process: zero-copy
            assert handle.fingerprint() == trace.fingerprint()
        finally:
            shm.release(handle)
        assert shm.active_segments() == []

    def test_local_handle_refuses_to_pickle(self):
        trace = markov_trace(8, 50, seed=2)
        handle = shm.local_handle(trace)
        assert handle.trace() is trace
        with pytest.raises(pickle.PicklingError):
            pickle.dumps(handle)

    def test_publish_traces_serial_publishes_nothing(self):
        trace = markov_trace(8, 50, seed=3)
        with shm.publish_traces([trace], jobs=1) as (handle,):
            assert handle.shm_name is None
            assert shm.active_segments() == []

    def test_publish_traces_releases_on_interrupt(self):
        trace = markov_trace(8, 50, seed=4)
        with pytest.raises(KeyboardInterrupt):
            with shm.publish_traces([trace], jobs=2):
                assert len(shm.active_segments()) == 1
                raise KeyboardInterrupt
        assert shm.active_segments() == []

    def test_worker_resolves_published_trace(self, fresh_pools):
        trace = markov_trace(8, 300, seed=5)
        from repro.memory.batch_sim import resolve_trace

        resolved = resolve_trace(trace)
        expected = (
            trace.name,
            trace.fingerprint(),
            int(resolved.item_at.sum()),
            int(resolved.is_write.sum()),
        )
        with shm.publish_traces([trace], jobs=2) as (handle,):
            pool = pool_mod.get_pool(2)
            results = pool.run(_handle_info, [handle, handle], propagate=True)
        assert results == [expected, expected]

    def test_no_leaked_segments_after_parallel_sweep(self, fresh_pools, traces):
        records = sweep(
            traces,
            methods=("declaration",),
            words_per_dbc_values=(16,),
            jobs=2,
        )
        assert len(records) == len(traces)
        assert shm.active_segments() == []


def _strip_runtime(records):
    """SweepRecord tuples without the (wall-clock) runtime field."""
    return [
        (r.trace, r.method, r.words_per_dbc, r.num_ports, r.num_dbcs,
         r.total_shifts, r.num_accesses)
        for r in records
    ]


class TestSerialPooledParity:
    """Serial and pooled runs produce byte-identical records and journals
    (satellite of the persistent-pool rework): parallelism must stay a
    pure wall-clock optimisation, under both start methods."""

    GRID = dict(
        methods=("declaration", "heuristic"),
        words_per_dbc_values=(8, 16),
        num_ports_values=(1,),
    )

    def _run(self, traces, tmp_path, tag, jobs):
        path = tmp_path / f"journal-{tag}.jsonl"
        with CheckpointJournal(path) as journal:
            records = sweep(traces, checkpoint=journal, jobs=jobs, **self.GRID)
        keys = [
            json.loads(line)["key"]
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        return records, keys

    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
    def test_fork_records_and_journal_keys_identical(
        self, fresh_pools, tmp_path, traces
    ):
        serial, serial_keys = self._run(traces, tmp_path, "serial", jobs=1)
        pooled, pooled_keys = self._run(traces, tmp_path, "pooled", jobs=2)
        assert _strip_runtime(pooled) == _strip_runtime(serial)
        assert sorted(pooled_keys) == sorted(serial_keys)

    def test_spawn_records_and_journal_keys_identical(
        self, fresh_pools, tmp_path, traces, monkeypatch
    ):
        serial, serial_keys = self._run(traces, tmp_path, "serial", jobs=1)
        monkeypatch.setenv(MP_START_ENV, "spawn")
        pooled, pooled_keys = self._run(traces, tmp_path, "spawn", jobs=2)
        assert _strip_runtime(pooled) == _strip_runtime(serial)
        assert sorted(pooled_keys) == sorted(serial_keys)

    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
    def test_pooled_run_resumes_from_serial_journal(
        self, fresh_pools, tmp_path, traces
    ):
        """A journal written serially is fully honoured by a pooled resume:
        nothing is recomputed and the records match the serial run."""
        path = tmp_path / "cross-mode.jsonl"
        with CheckpointJournal(path) as journal:
            serial = sweep(traces, checkpoint=journal, jobs=1, **self.GRID)
        with CheckpointJournal(path, resume=True) as journal:
            assert journal.restored == len(serial)
            pooled = sweep(traces, checkpoint=journal, jobs=2, **self.GRID)
            assert journal.recorded == 0
        assert pooled == serial  # restored payloads: byte-identical


class TestSpawnStartMethod:
    """The pool and shm layers work without fork inheritance."""

    def test_spawn_worker_attaches_segment(self, fresh_pools, monkeypatch):
        monkeypatch.setenv(MP_START_ENV, "spawn")
        trace = markov_trace(6, 150, seed=6)
        from repro.memory.batch_sim import resolve_trace

        resolved = resolve_trace(trace)
        expected = (
            trace.name,
            trace.fingerprint(),
            int(resolved.item_at.sum()),
            int(resolved.is_write.sum()),
        )
        with shm.publish_traces([trace], jobs=2) as (handle,):
            pool = pool_mod.get_pool(2)
            results = pool.run(_handle_info, [handle], propagate=True)
        assert results == [expected]

    def test_spawn_results_match_fork_results(self, fresh_pools, monkeypatch):
        monkeypatch.setenv(MP_START_ENV, "spawn")
        pool = pool_mod.get_pool(2)
        assert pool.run(_triple, [1, 2, 3]) == [3, 6, 9]
