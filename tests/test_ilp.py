"""Unit tests for the ILP formulation (repro.core.ilp)."""

import itertools

import pytest

from repro.core.cost import linear_arrangement_cost
from repro.core.ilp import (
    ENUMERATION_BUDGET,
    Constraint,
    ILPModel,
    LinearExpr,
    Variable,
    assignment_for_order,
    build_minla_ilp,
    solve_by_enumeration,
    verify_formulation,
)
from repro.errors import OptimizationError
from repro.trace.stats import affinity_graph
from repro.trace.synthetic import markov_trace


class TestLinearExpr:
    def test_add_accumulates(self):
        expr = LinearExpr().add("x", 2.0).add("x", 3.0)
        assert expr.coefficients == {"x": 5.0}

    def test_evaluate(self):
        expr = LinearExpr({"x": 2.0, "y": -1.0}, constant=4.0)
        assert expr.evaluate({"x": 3.0, "y": 1.0}) == 9.0

    def test_render_skips_zero_coefficients(self):
        expr = LinearExpr({"a": 0.0, "b": 1.0})
        assert expr.render() == "b"

    def test_render_signs(self):
        expr = LinearExpr({"a": 1.0, "b": -2.0})
        assert expr.render() == "a - 2 b"

    def test_render_empty(self):
        assert LinearExpr().render() == "0"


class TestConstraint:
    def test_senses(self):
        expr = LinearExpr({"x": 1.0})
        assert Constraint("c", expr, "<=", 5).holds({"x": 5.0})
        assert not Constraint("c", expr, "<=", 5).holds({"x": 6.0})
        assert Constraint("c", expr, ">=", 5).holds({"x": 5.0})
        assert Constraint("c", expr, "=", 5).holds({"x": 5.0})
        assert not Constraint("c", expr, "=", 5).holds({"x": 4.0})


class TestModelStructure:
    @pytest.fixture
    def instance(self):
        items = ["a", "b", "c"]
        affinity = {("a", "b"): 2, ("b", "c"): 1}
        return items, affinity

    def test_variable_counts(self, instance):
        items, affinity = instance
        model = build_minla_ilp(items, affinity)
        binaries = [v for v in model.variables if v.is_binary]
        continuous = [v for v in model.variables if not v.is_binary]
        assert len(binaries) == 9  # n^2 assignment vars
        assert len(continuous) == 2  # one d per affinity pair

    def test_constraint_counts(self, instance):
        items, affinity = instance
        model = build_minla_ilp(items, affinity)
        # n item constraints + n position constraints + 2 per pair.
        assert len(model.constraints) == 3 + 3 + 2 * 2

    def test_empty_items_raise(self):
        with pytest.raises(OptimizationError):
            build_minla_ilp([], {})

    def test_check_requires_full_assignment(self, instance):
        items, affinity = instance
        model = build_minla_ilp(items, affinity)
        with pytest.raises(OptimizationError, match="misses"):
            model.check({"x_0_0": 1.0})


class TestLPExport:
    def test_lp_format_sections(self):
        model = build_minla_ilp(["a", "b"], {("a", "b"): 1})
        text = model.to_lp_format()
        assert text.startswith("\\ dwm-placement-minla")
        for section in ("Minimize", "Subject To", "Bounds", "Binary", "End"):
            assert section in text

    def test_lp_format_objective_mentions_d(self):
        model = build_minla_ilp(["a", "b"], {("a", "b"): 3})
        assert "3 d_0_1" in model.to_lp_format()


class TestAssignments:
    def test_assignment_is_feasible(self):
        items = ["a", "b", "c"]
        affinity = {("a", "b"): 2, ("a", "c"): 1}
        model = build_minla_ilp(items, affinity)
        for permutation in itertools.permutations(items):
            assignment = assignment_for_order(items, affinity, permutation)
            assert model.check(assignment) == []

    def test_objective_matches_arrangement_cost(self):
        items = ["a", "b", "c", "d"]
        affinity = {("a", "b"): 2, ("b", "d"): 3, ("a", "c"): 1}
        model = build_minla_ilp(items, affinity)
        for permutation in itertools.permutations(items):
            assignment = assignment_for_order(items, affinity, permutation)
            assert model.objective.evaluate(assignment) == pytest.approx(
                linear_arrangement_cost(list(permutation), affinity)
            )

    def test_non_permutation_raises(self):
        with pytest.raises(OptimizationError):
            assignment_for_order(["a", "b"], {}, ["a", "a"])


class TestSolveAndVerify:
    def test_enumeration_matches_dp_on_random_instances(self):
        for seed in range(3):
            trace = markov_trace(5, 80, locality=0.7, seed=seed)
            affinity = affinity_graph(trace)
            assert verify_formulation(list(trace.items), affinity)

    def test_enumeration_guard(self):
        items = [f"i{k}" for k in range(9)]
        with pytest.raises(OptimizationError, match="at most"):
            solve_by_enumeration(items, {})

    def test_enumeration_budget_guard_overrides_max_items(self):
        # Raising max_items must not let a factorial blowup through: the
        # permutation-count budget rejects the call immediately instead of
        # enumerating 12! assignments.
        items = [f"i{k}" for k in range(12)]
        with pytest.raises(OptimizationError, match="budget"):
            solve_by_enumeration(items, {}, max_items=20)
        with pytest.raises(OptimizationError, match="budget"):
            verify_formulation(items, {}, max_items=20)
        assert ENUMERATION_BUDGET == 40_320  # 8! — the documented ceiling

    def test_known_optimum(self):
        # Path graph: chain order is optimal with cost = sum of weights.
        items = ["a", "b", "c"]
        affinity = {("a", "b"): 5, ("b", "c"): 7}
        order, value = solve_by_enumeration(items, affinity)
        assert value == 12.0
        assert order.index("b") == 1  # b must sit between a and c
