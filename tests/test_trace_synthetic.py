"""Unit tests for repro.trace.synthetic generators."""

import pytest

from repro.errors import TraceError
from repro.trace.synthetic import (
    GENERATORS,
    loop_nest_trace,
    markov_trace,
    pingpong_trace,
    stencil_trace,
    uniform_trace,
    zipf_trace,
)


class TestDeterminism:
    @pytest.mark.parametrize("generator", [uniform_trace, zipf_trace, markov_trace])
    def test_same_seed_same_trace(self, generator):
        assert generator(10, 100, seed=5) == generator(10, 100, seed=5)

    @pytest.mark.parametrize("generator", [uniform_trace, zipf_trace, markov_trace])
    def test_different_seed_different_trace(self, generator):
        assert generator(10, 100, seed=1) != generator(10, 100, seed=2)


class TestUniform:
    def test_shape(self):
        trace = uniform_trace(5, 50)
        assert len(trace) == 50
        assert trace.num_items <= 5

    def test_zero_items_raises(self):
        with pytest.raises(TraceError):
            uniform_trace(0, 10)

    def test_write_fraction_zero(self):
        trace = uniform_trace(5, 100, write_fraction=0.0)
        _reads, writes = trace.read_write_counts()
        assert writes == 0

    def test_write_fraction_one(self):
        trace = uniform_trace(5, 100, write_fraction=1.0)
        reads, _writes = trace.read_write_counts()
        assert reads == 0

    def test_invalid_write_fraction_raises(self):
        with pytest.raises(TraceError):
            uniform_trace(5, 10, write_fraction=1.5)


class TestZipf:
    def test_skews_to_head_items(self):
        trace = zipf_trace(20, 2000, alpha=1.5, seed=1)
        frequencies = trace.frequencies()
        head = frequencies.get("v0", 0)
        tail = frequencies.get("v19", 0)
        assert head > 5 * max(tail, 1)

    def test_invalid_alpha_raises(self):
        with pytest.raises(TraceError):
            zipf_trace(5, 10, alpha=0)


class TestMarkov:
    def test_high_locality_has_small_steps(self):
        trace = markov_trace(50, 2000, locality=1.0, neighborhood=1, seed=3)
        steps = []
        for left, right in trace.adjacent_pairs():
            steps.append(abs(int(left[1:]) - int(right[1:])))
        assert max(steps) <= 1

    def test_locality_out_of_range_raises(self):
        with pytest.raises(TraceError):
            markov_trace(5, 10, locality=2.0)

    def test_neighborhood_validation(self):
        with pytest.raises(TraceError):
            markov_trace(5, 10, neighborhood=0)

    def test_length(self):
        assert len(markov_trace(5, 123)) == 123


class TestLoopNest:
    def test_structure(self):
        trace = loop_nest_trace(array_sizes=(2, 3), iterations=2)
        # Per iteration: A streamed (2 reads) + B streamed with RMW (3*2).
        assert len(trace) == 2 * (2 + 6)
        assert trace.num_items == 5

    def test_last_array_written(self):
        trace = loop_nest_trace(array_sizes=(2, 2), iterations=1)
        writes = [access.item for access in trace if access.is_write]
        assert all(item.startswith("B") for item in writes)

    def test_invalid_iterations_raises(self):
        with pytest.raises(TraceError):
            loop_nest_trace(iterations=0)

    def test_invalid_sizes_raise(self):
        with pytest.raises(TraceError):
            loop_nest_trace(array_sizes=(0,))


class TestPingpong:
    def test_alternation(self):
        trace = pingpong_trace(num_pairs=1, rounds=3)
        assert trace.item_sequence == ("p0a", "p0b") * 3

    def test_pair_count(self):
        trace = pingpong_trace(num_pairs=4, rounds=2)
        assert trace.num_items == 8

    def test_invalid_args_raise(self):
        with pytest.raises(TraceError):
            pingpong_trace(num_pairs=0)


class TestStencil:
    def test_reads_neighbourhood_writes_center(self):
        trace = stencil_trace(width=5, sweeps=1, radius=1)
        # First point: reads g[0..2], writes g[1].
        first_four = list(trace)[:4]
        assert [a.item for a in first_four] == ["g[0]", "g[1]", "g[2]", "g[1]"]
        assert first_four[3].is_write

    def test_width_validation(self):
        with pytest.raises(TraceError):
            stencil_trace(width=2, radius=1)


class TestGups:
    def test_rmw_structure(self):
        trace = GENERATORS["gups"](table_size=8, num_updates=10, seed=1)
        assert len(trace) == 20
        for read, write in zip(list(trace)[::2], list(trace)[1::2]):
            assert read.item == write.item
            assert not read.is_write
            assert write.is_write

    def test_validation(self):
        with pytest.raises(TraceError):
            GENERATORS["gups"](table_size=0)


class TestButterfly:
    def test_stage_strides_double(self):
        trace = GENERATORS["butterfly"](size=8)
        # First stage pairs neighbours; last stage pairs items 4 apart.
        first_pair = trace.item_sequence[:2]
        assert first_pair == ("x[0]", "x[1]")
        last_stage = trace.item_sequence[-4:]
        assert last_stage[0] == "x[3]" and last_stage[1] == "x[7]"

    def test_non_power_of_two_raises(self):
        with pytest.raises(TraceError):
            GENERATORS["butterfly"](size=6)

    def test_every_item_touched_per_stage(self):
        import math

        size = 16
        trace = GENERATORS["butterfly"](size=size)
        stages = int(math.log2(size))
        assert len(trace) == stages * size * 2  # 2 reads + 2 writes per pair


class TestBlocked:
    def test_blocks_revisited(self):
        trace = GENERATORS["blocked"](array_size=8, block=4, passes=2)
        head = trace.item_sequence[:10]
        # First block of 4 scanned, written, then scanned again.
        assert head[:4] == ("a[0]", "a[1]", "a[2]", "a[3]")
        assert head[5:9] == ("a[0]", "a[1]", "a[2]", "a[3]")

    def test_validation(self):
        with pytest.raises(TraceError):
            GENERATORS["blocked"](passes=0)


class TestRegistry:
    def test_all_generators_listed(self):
        assert set(GENERATORS) == {
            "uniform", "zipf", "markov", "loop_nest", "pingpong", "stencil",
            "gups", "butterfly", "blocked",
        }

    def test_registry_entries_callable(self):
        trace = GENERATORS["pingpong"]()
        assert len(trace) > 0
