"""Tests for the CP-SAT MinLA backend and its pure-python fallback chain.

The suite is split by availability of the optional ``ortools`` dependency:

* the fallback-chain and parity-with-DP tests always run (on a bare
  environment they exercise the degradation path; with ortools they
  exercise CP-SAT itself);
* ``requires_cpsat`` tests run only on the CI ``ortools`` leg — they pin
  the certified-optimum guarantees (including a >100-item instance) and
  CP-SAT ↔ DP cost parity;
* ``requires_no_cpsat`` tests run only on the fallback leg — they pin the
  typed rejection above every backend budget and the recorded ``ilp``
  degradation.
"""

import pytest

from repro import robust
from repro.core.api import build_problem
from repro.core.cost import linear_arrangement_cost
from repro.core.cpsat import (
    CPSAT_MAX_ITEMS,
    MinlaSolution,
    cpsat_available,
    solve_minla,
)
from repro.core.exact import minla_optimal_cost
from repro.core.ilp import solve
from repro.dwm.config import DWMConfig
from repro.errors import OptimizationError
from repro.trace.stats import affinity_graph
from repro.trace.synthetic import markov_trace

requires_cpsat = pytest.mark.skipif(
    not cpsat_available(), reason="ortools not installed"
)
requires_no_cpsat = pytest.mark.skipif(
    cpsat_available(), reason="ortools installed; fallback path not reachable"
)


def _instance(num_items: int, seed: int = 0):
    trace = markov_trace(num_items, 40 * num_items, locality=0.7, seed=seed)
    problem = build_problem(trace, DWMConfig(words_per_dbc=64, num_dbcs=1))
    return list(problem.items), problem.affinity


def _chain_instance(num_items: int):
    items = [f"c{i:03d}" for i in range(num_items)]
    affinity = {
        (items[i], items[i + 1]): 1 for i in range(num_items - 1)
    }
    return items, affinity


class TestSolveMinla:
    def test_matches_dp_optimum_on_random_instances(self):
        for seed in range(4):
            items, affinity = _instance(7, seed=seed)
            solution = solve_minla(items, affinity)
            assert solution.certified
            assert solution.cost == minla_optimal_cost(items, affinity)
            assert sorted(solution.order) == sorted(items)
            assert (
                linear_arrangement_cost(list(solution.order), affinity)
                == solution.cost
            )

    def test_ilp_solve_front_matches_backend(self):
        items, affinity = _instance(6, seed=9)
        front = solve(items, affinity)
        direct = solve_minla(items, affinity)
        assert isinstance(front, MinlaSolution)
        assert front.cost == direct.cost
        assert front.backend == direct.backend

    def test_zero_items_rejected(self):
        with pytest.raises(OptimizationError):
            solve_minla([], {})

    def test_backend_is_reported(self):
        items, affinity = _instance(5, seed=2)
        solution = solve_minla(items, affinity)
        expected = "cpsat" if cpsat_available() else "dp"
        assert solution.backend == expected


class TestFallbackChain:
    @requires_no_cpsat
    def test_absence_records_ilp_degradation(self):
        robust.reset_degradations()
        items, affinity = _instance(5, seed=4)
        solution = solve_minla(items, affinity)
        assert solution.backend == "dp"
        assert solution.certified
        summary = robust.degradation_summary()
        assert summary.get("ilp:cpsat->dp", 0) >= 1
        robust.reset_degradations()

    @requires_no_cpsat
    def test_oversized_instance_rejected_with_typed_error(self):
        items = [f"i{k}" for k in range(17)]
        with pytest.raises(OptimizationError, match="backend"):
            solve_minla(items, {})

    def test_chain_declared_in_robust_table(self):
        assert robust.DEGRADATION_CHAINS["ilp"] == (
            "cpsat",
            "dp",
            "enumeration",
        )


class TestCpsatBackend:
    @requires_cpsat
    def test_parity_with_dp_on_random_instances(self):
        from repro.core.cpsat import solve_minla_cpsat

        for seed in range(4):
            items, affinity = _instance(8, seed=seed)
            solution = solve_minla_cpsat(items, affinity, time_limit=30.0)
            assert solution.certified
            assert solution.cost == minla_optimal_cost(items, affinity)

    @requires_cpsat
    def test_certifies_optimum_beyond_dp_reach(self):
        # 24 items: far beyond the enumeration budget and past the subset
        # DP cap; the chain optimum Σw is known in closed form.
        items, affinity = _chain_instance(24)
        solution = solve_minla(items, affinity, time_limit=60.0)
        assert solution.backend == "cpsat"
        assert solution.certified
        assert solution.cost == len(items) - 1

    @requires_cpsat
    def test_certifies_optimum_on_120_item_instance(self):
        # The headline CP-SAT guarantee: certified optima on >=100 items.
        items, affinity = _chain_instance(120)
        warm = list(items)
        solution = solve_minla(
            items, affinity, time_limit=120.0, warm_start=warm
        )
        assert solution.backend == "cpsat"
        assert solution.certified
        assert solution.cost == len(items) - 1

    @requires_cpsat
    def test_cap_rejected_with_typed_error(self):
        items = [f"i{k}" for k in range(CPSAT_MAX_ITEMS + 1)]
        with pytest.raises(OptimizationError, match="CP-SAT"):
            solve_minla(items, {})

    @requires_cpsat
    def test_warm_start_accepts_any_permutation(self):
        from repro.core.cpsat import solve_minla_cpsat

        items, affinity = _instance(6, seed=1)
        reference = minla_optimal_cost(items, affinity)
        for warm in (list(items), list(reversed(items))):
            solution = solve_minla_cpsat(
                items, affinity, time_limit=30.0, warm_start=warm
            )
            assert solution.certified
            assert solution.cost == reference
