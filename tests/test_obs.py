"""Unit tests for repro.obs: metrics registry, tracing, run manifests."""

import concurrent.futures
import json
import multiprocessing
import threading
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    HistogramSummary,
    MetricsRegistry,
    RunManifest,
    Tracer,
    collect_manifest,
    detect_git_sha,
    flatten_snapshot,
    get_registry,
    get_tracer,
    json_safe,
    metric_key,
    read_manifest,
    render_spans,
    set_registry,
    set_tracer,
    trace_span,
    write_manifest,
)

GOLDEN = Path(__file__).parent / "golden" / "manifest_v1.json"


@pytest.fixture()
def registry():
    """A fresh registry installed as the process default for one test."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


@pytest.fixture()
def tracer():
    """A fresh tracer installed as the process default for one test."""
    fresh = Tracer()
    previous = set_tracer(fresh)
    try:
        yield fresh
    finally:
        set_tracer(previous)


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------

class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("sim.runs") == "sim.runs"

    def test_labels_sorted(self):
        assert (
            metric_key("sim.runs", {"engine": "scalar", "ab": 1})
            == "sim.runs{ab=1,engine=scalar}"
        )


class TestCounters:
    def test_inc_default_and_value(self, registry):
        registry.inc("c")
        registry.inc("c", 4)
        assert registry.counter_value("c") == 5

    def test_labelled_series_are_distinct(self, registry):
        registry.inc("sim.runs", engine="scalar")
        registry.inc("sim.runs", 2, engine="vectorized")
        assert registry.counter_value("sim.runs", engine="scalar") == 1
        assert registry.counter_value("sim.runs", engine="vectorized") == 2
        assert registry.counter_value("sim.runs") == 0


class TestGauges:
    def test_last_write_wins(self, registry):
        registry.gauge("jobs", 4)
        registry.gauge("jobs", 8)
        assert registry.gauge_value("jobs") == 8

    def test_unset_is_none(self, registry):
        assert registry.gauge_value("missing") is None


class TestHistograms:
    def test_summary_statistics(self, registry):
        for value in (1.0, 3.0, 2.0):
            registry.observe("h", value)
        summary = registry.histogram_summary("h")
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(6.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)

    def test_empty_summary_has_null_extrema(self):
        summary = HistogramSummary()
        payload = summary.as_dict()
        assert payload["count"] == 0
        assert payload["min"] is None
        assert payload["max"] is None

    def test_merge_dict(self):
        left = HistogramSummary()
        left.observe(1.0)
        right = HistogramSummary()
        right.observe(5.0)
        right.observe(3.0)
        left.merge_dict(right.as_dict())
        assert left.count == 3
        assert left.total == pytest.approx(9.0)
        assert left.minimum == 1.0
        assert left.maximum == 5.0

    def test_merge_empty_is_noop(self):
        summary = HistogramSummary()
        summary.merge_dict(HistogramSummary().as_dict())
        assert summary.count == 0


class TestSnapshotReset:
    def test_snapshot_shape(self, registry):
        registry.inc("c")
        registry.gauge("g", 2.5)
        registry.observe("h", 1.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["gauges"] == {"g": 2.5}
        assert snapshot["histograms"]["h"]["count"] == 1
        # JSON-ready by construction.
        json.dumps(snapshot)

    def test_reset_returns_final_state_and_clears(self, registry):
        registry.inc("c", 3)
        final = registry.reset()
        assert final["counters"] == {"c": 3}
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestMerge:
    def test_counters_add_gauges_overwrite_histograms_combine(self, registry):
        other = MetricsRegistry()
        registry.inc("c", 1)
        registry.gauge("g", 1)
        registry.observe("h", 1.0)
        other.inc("c", 2)
        other.gauge("g", 9)
        other.observe("h", 3.0)
        registry.merge(other.snapshot())
        assert registry.counter_value("c") == 3
        assert registry.gauge_value("g") == 9
        summary = registry.histogram_summary("h")
        assert summary["count"] == 2
        assert summary["max"] == 3.0

    def test_merge_into_empty(self, registry):
        other = MetricsRegistry()
        other.inc("only", 5)
        registry.merge(other.snapshot())
        assert registry.counter_value("only") == 5


class TestThreadSafety:
    def test_concurrent_increments_are_lost_update_free(self, registry):
        threads = 8
        per_thread = 2000

        def worker():
            for _ in range(per_thread):
                registry.inc("t.count")
                registry.observe("t.hist", 1.0)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert registry.counter_value("t.count") == threads * per_thread
        assert registry.histogram_summary("t.hist")["count"] == threads * per_thread


def _spawn_worker_snapshot(count):
    """Top-level (picklable) worker: build a private registry, ship it home."""
    worker_registry = MetricsRegistry()
    for _ in range(count):
        worker_registry.inc("worker.count")
    worker_registry.observe("worker.value", float(count))
    return worker_registry.snapshot()


class TestSpawnModeMerge:
    def test_worker_snapshots_merge_into_parent(self, registry):
        ctx = multiprocessing.get_context("spawn")
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=2, mp_context=ctx
        ) as pool:
            snapshots = list(pool.map(_spawn_worker_snapshot, [3, 4]))
        for snapshot in snapshots:
            registry.merge(snapshot)
        assert registry.counter_value("worker.count") == 7
        summary = registry.histogram_summary("worker.value")
        assert summary["count"] == 2
        assert summary["min"] == 3.0
        assert summary["max"] == 4.0


class TestProcessDefault:
    def test_set_registry_swaps_and_restores(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            assert set_registry(previous) is fresh
        assert get_registry() is previous


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------

class TestTraceSpan:
    def test_nesting_builds_a_tree(self, registry, tracer):
        with trace_span("outer", stage="demo"):
            with trace_span("inner"):
                pass
        roots = get_tracer().roots()
        assert [span.name for span in roots] == ["outer"]
        assert [span.name for span in roots[0].children] == ["inner"]
        assert roots[0].seconds >= roots[0].children[0].seconds >= 0.0

    def test_span_feeds_duration_histogram(self, registry, tracer):
        with trace_span("timed"):
            pass
        assert registry.histogram_summary("span.timed.seconds")["count"] == 1

    def test_disabled_tracer_still_times(self, registry, tracer):
        tracer.enabled = False
        with trace_span("quiet"):
            pass
        assert tracer.roots() == ()
        assert registry.histogram_summary("span.quiet.seconds")["count"] == 1

    def test_root_history_is_bounded(self, registry):
        small = Tracer(max_roots=2)
        previous = set_tracer(small)
        try:
            for index in range(4):
                with trace_span(f"s{index}"):
                    pass
            assert [span.name for span in small.roots()] == ["s2", "s3"]
        finally:
            set_tracer(previous)

    def test_reset_drops_roots(self, registry, tracer):
        with trace_span("gone"):
            pass
        tracer.reset()
        assert tracer.roots() == ()

    def test_as_dict_and_render(self, registry, tracer):
        with trace_span("outer", label="x"):
            with trace_span("inner"):
                pass
        payload = tracer.as_dicts()
        assert payload[0]["name"] == "outer"
        assert payload[0]["meta"] == {"label": "x"}
        assert payload[0]["children"][0]["name"] == "inner"
        text = render_spans(tracer.roots())
        assert "outer" in text and "inner" in text

    def test_exception_still_closes_span(self, registry, tracer):
        with pytest.raises(ValueError):
            with trace_span("boom"):
                raise ValueError("no")
        assert [span.name for span in tracer.roots()] == ["boom"]


# ---------------------------------------------------------------------------
# Manifests
# ---------------------------------------------------------------------------

def _golden_manifest() -> RunManifest:
    """Fully pinned manifest (no environment-dependent fields)."""
    return RunManifest(
        kind="bench",
        run_id="golden",
        package_version="0.0.0-golden",
        git_sha="f" * 40,
        python_version="3.11.0",
        platform="Linux-x86_64",
        seed=7,
        engine="vectorized",
        geometry={"words_per_dbc": 64, "num_dbcs": 2, "ports": 1},
        created_unix=None,
        metrics={
            "sim.runs": 3,
            "sim.speedup": 37.5,
            "sim.exact": True,
        },
        extra={"notes": ["a", "b"]},
        spans=[
            {
                "name": "simulate",
                "seconds": 0.125,
                "children": [{"name": "scan", "seconds": 0.1}],
            }
        ],
    )


class TestManifestGolden:
    def test_schema_is_golden_stable(self):
        """Any layout change MUST bump MANIFEST_SCHEMA_VERSION + regolden."""
        golden_text = GOLDEN.read_text(encoding="utf-8")
        assert _golden_manifest().to_json() + "\n" == golden_text

    def test_golden_schema_version_matches_code(self):
        payload = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert payload["schema_version"] == MANIFEST_SCHEMA_VERSION, (
            "manifest layout changed: bump MANIFEST_SCHEMA_VERSION and "
            "regenerate tests/golden/manifest_v1.json"
        )

    def test_round_trip(self):
        manifest = _golden_manifest()
        rebuilt = RunManifest.from_json(manifest.to_json())
        assert rebuilt.to_dict() == manifest.to_dict()


class TestManifestValidation:
    def test_rejects_non_manifest_payload(self):
        with pytest.raises(ReproError):
            RunManifest.from_dict({"schema_version": 1})

    def test_rejects_unknown_schema_version(self):
        payload = _golden_manifest().to_dict()
        payload["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        with pytest.raises(ReproError):
            RunManifest.from_dict(payload)

    def test_defaults_fill_environment_fields(self):
        manifest = RunManifest(kind="bench", run_id="x")
        assert manifest.package_version
        assert manifest.python_version
        assert manifest.platform


class TestJsonSafe:
    def test_non_finite_floats_become_none(self):
        payload = json_safe(
            {
                "ok": 1.5,
                "bad": float("inf"),
                "worse": float("nan"),
                "nested": [float("-inf"), {"deep": float("nan")}],
            }
        )
        assert payload["ok"] == 1.5
        assert payload["bad"] is None
        assert payload["worse"] is None
        assert payload["nested"] == [None, {"deep": None}]
        json.dumps(payload, allow_nan=False)

    def test_manifest_serialization_never_emits_non_finite(self):
        manifest = RunManifest(
            kind="bench", run_id="inf", metrics={"rate": float("inf")}
        )
        parsed = json.loads(manifest.to_json())
        assert parsed["metrics"]["rate"] is None


class TestCollectManifest:
    def test_flattens_registry_snapshot(self, registry, tracer):
        registry.inc("sim.runs", 2, engine="scalar")
        registry.gauge("jobs", 4)
        registry.observe("span.sim.seconds", 0.5)
        with trace_span("top"):
            pass
        manifest = collect_manifest(
            "experiments", "e1", seed=3, engine="scalar"
        )
        assert manifest.kind == "experiments"
        assert manifest.seed == 3
        assert manifest.metrics["counter.sim.runs{engine=scalar}"] == 2
        assert manifest.metrics["gauge.jobs"] == 4
        assert manifest.metrics["histogram.span.sim.seconds.count"] == 1
        assert any(span["name"] == "top" for span in manifest.spans)

    def test_explicit_metrics_win(self, registry, tracer):
        registry.inc("c")
        manifest = collect_manifest(
            "bench", "x", metrics={"counter.c": 99}, include_spans=False
        )
        assert manifest.metrics["counter.c"] == 99
        assert manifest.spans == []


class TestFlattenSnapshot:
    def test_histogram_null_extrema_are_dropped(self):
        snapshot = {
            "counters": {"c": 1},
            "gauges": {},
            "histograms": {"h": HistogramSummary().as_dict()},
        }
        metrics = flatten_snapshot(snapshot)
        assert metrics["counter.c"] == 1
        assert "histogram.h.min" not in metrics
        assert metrics["histogram.h.count"] == 0


class TestManifestIO:
    def test_write_and_read(self, tmp_path):
        manifest = _golden_manifest()
        path = write_manifest(manifest, tmp_path / "deep" / "m.json")
        assert path.exists()
        rebuilt = read_manifest(path)
        assert rebuilt.to_dict() == manifest.to_dict()


class TestDetectGitSha:
    def test_repo_sha_or_unknown(self):
        sha = detect_git_sha(Path(__file__).parent.parent)
        assert sha == "unknown" or len(sha) >= 7

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafe1234")
        assert detect_git_sha() == "cafe1234"

    def test_unknown_outside_any_repo(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_GIT_SHA", raising=False)
        assert detect_git_sha(tmp_path) == "unknown"


# ---------------------------------------------------------------------------
# Instrumented subsystems report through the registry
# ---------------------------------------------------------------------------

class TestSubsystemIntegration:
    def test_simulate_reports_runs_and_engine(self, registry, tracer):
        from repro.dwm.config import DWMConfig
        from repro.memory.spm import ScratchpadMemory
        from repro.core.api import optimize_placement
        from repro.trace.synthetic import markov_trace

        trace = markov_trace(8, 200, seed=1)
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=16)
        result = optimize_placement(trace, config, method="declaration")
        spm = ScratchpadMemory(config, result.placement)
        spm.simulate(trace, engine="scalar")
        spm.simulate(trace, engine="vectorized")
        assert registry.counter_value("sim.runs", engine="scalar") == 1
        assert registry.counter_value("sim.runs", engine="vectorized") == 1
        assert registry.counter_value("optimize.runs", method="declaration") == 1
        assert registry.counter_value("sim.resolves") == 1
        names = {span.name for span in get_tracer().roots()}
        assert "simulate" in names
        assert "optimize" in names

    def test_measure_throughput_reports(self, registry):
        from repro.perf import measure_throughput

        measure_throughput(lambda: None, min_seconds=0.0, min_operations=3)
        assert registry.counter_value("perf.measure_throughput.calls") == 1
        assert registry.counter_value("perf.measure_throughput.operations") >= 3
