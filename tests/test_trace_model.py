"""Unit tests for repro.trace.model."""

import pytest

from repro.errors import TraceError
from repro.trace.model import (
    Access,
    AccessKind,
    AccessTrace,
    TracedArray,
    TracedScalar,
    TraceRecorder,
)


class TestAccessKind:
    def test_parse_letters(self):
        assert AccessKind.parse("R") is AccessKind.READ
        assert AccessKind.parse("w") is AccessKind.WRITE

    def test_parse_words(self):
        assert AccessKind.parse("read") is AccessKind.READ
        assert AccessKind.parse("WRITE") is AccessKind.WRITE

    def test_parse_invalid_raises(self):
        with pytest.raises(TraceError):
            AccessKind.parse("X")


class TestAccess:
    def test_defaults_to_read(self):
        assert Access("a").kind is AccessKind.READ

    def test_kind_coerced_from_string(self):
        assert Access("a", "W").is_write

    def test_empty_item_raises(self):
        with pytest.raises(TraceError):
            Access("")

    def test_str(self):
        assert str(Access("x", "W")) == "W x"

    def test_frozen_and_hashable(self):
        assert hash(Access("a")) == hash(Access("a"))


class TestAccessTraceConstruction:
    def test_from_strings(self):
        trace = AccessTrace(["a", "b", "a"])
        assert len(trace) == 3
        assert all(not access.is_write for access in trace)

    def test_from_tuples(self):
        trace = AccessTrace([("a", "R"), ("b", "W")])
        assert trace[1].is_write

    def test_from_access_objects(self):
        trace = AccessTrace([Access("a"), Access("b", "W")])
        assert trace[0].item == "a"

    def test_bad_entry_raises(self):
        with pytest.raises(TraceError):
            AccessTrace([42])

    def test_from_items_classmethod(self):
        trace = AccessTrace.from_items(["x", "y", "x"], name="seq")
        assert trace.name == "seq"
        assert trace.item_sequence == ("x", "y", "x")


class TestAccessTraceViews:
    def test_items_first_touch_order(self, tiny_trace):
        assert tiny_trace.items == ("a", "b", "c")

    def test_num_items(self, tiny_trace):
        assert tiny_trace.num_items == 3

    def test_frequencies(self, tiny_trace):
        frequencies = tiny_trace.frequencies()
        assert frequencies["a"] == 2
        assert frequencies["b"] == 2
        assert frequencies["c"] == 1

    def test_read_write_counts(self, tiny_trace):
        reads, writes = tiny_trace.read_write_counts()
        assert (reads, writes) == (4, 1)

    def test_adjacent_pairs(self):
        trace = AccessTrace(["a", "b", "b", "c"])
        assert list(trace.adjacent_pairs()) == [
            ("a", "b"),
            ("b", "b"),
            ("b", "c"),
        ]

    def test_equality_ignores_name(self):
        assert AccessTrace(["a"], name="x") == AccessTrace(["a"], name="y")

    def test_hashable(self):
        assert hash(AccessTrace(["a", "b"])) == hash(AccessTrace(["a", "b"]))

    def test_slice_returns_trace(self, tiny_trace):
        head = tiny_trace[:2]
        assert isinstance(head, AccessTrace)
        assert len(head) == 2

    def test_repr_mentions_counts(self, tiny_trace):
        assert "n_accesses=5" in repr(tiny_trace)


class TestAccessTraceTransforms:
    def test_restricted_to(self, tiny_trace):
        restricted = tiny_trace.restricted_to({"a", "c"})
        assert restricted.item_sequence == ("a", "a", "c")

    def test_restricted_preserves_kinds(self):
        trace = AccessTrace([("a", "W"), ("b", "R"), ("a", "R")])
        restricted = trace.restricted_to({"a"})
        assert [access.is_write for access in restricted] == [True, False]

    def test_truncated(self, tiny_trace):
        assert len(tiny_trace.truncated(3)) == 3

    def test_truncated_negative_raises(self, tiny_trace):
        with pytest.raises(TraceError):
            tiny_trace.truncated(-1)

    def test_top_items(self):
        trace = AccessTrace(["a"] * 5 + ["b"] * 3 + ["c"])
        top = trace.top_items(2)
        assert set(top.items) == {"a", "b"}

    def test_top_items_zero_raises(self, tiny_trace):
        with pytest.raises(TraceError):
            tiny_trace.top_items(0)

    def test_concatenated(self):
        left = AccessTrace(["a"], name="l")
        right = AccessTrace(["b"], name="r")
        combined = left.concatenated(right)
        assert combined.item_sequence == ("a", "b")
        assert combined.name == "l+r"

    def test_renamed(self, tiny_trace):
        assert tiny_trace.renamed("new").name == "new"
        assert tiny_trace.renamed("new") == tiny_trace


class TestTraceRecorder:
    def test_records_in_order(self):
        recorder = TraceRecorder()
        recorder.record_read("a")
        recorder.record_write("b")
        trace = recorder.to_trace("rec")
        assert trace.item_sequence == ("a", "b")
        assert trace[1].is_write

    def test_len(self):
        recorder = TraceRecorder()
        recorder.record_read("a")
        assert len(recorder) == 1


class TestTracedArray:
    def test_getitem_records_read(self):
        recorder = TraceRecorder()
        array = TracedArray("x", [10, 20], recorder)
        assert array[1] == 20
        trace = recorder.to_trace("t")
        assert trace[0].item == "x[1]"
        assert not trace[0].is_write

    def test_setitem_records_write(self):
        recorder = TraceRecorder()
        array = TracedArray("x", [0], recorder)
        array[0] = 9
        trace = recorder.to_trace("t")
        assert trace[0].item == "x[0]"
        assert trace[0].is_write
        assert array.peek(0) == 9

    def test_negative_index_normalised(self):
        recorder = TraceRecorder()
        array = TracedArray("x", [1, 2, 3], recorder)
        assert array[-1] == 3
        trace = recorder.to_trace("t")
        assert trace[0].item == "x[2]"

    def test_out_of_range_raises(self):
        recorder = TraceRecorder()
        array = TracedArray("x", [1], recorder)
        with pytest.raises(IndexError):
            array[5]

    def test_peek_and_snapshot_silent(self):
        recorder = TraceRecorder()
        array = TracedArray("x", [1, 2], recorder)
        array.peek(0)
        array.snapshot()
        assert len(recorder) == 0

    def test_len(self):
        recorder = TraceRecorder()
        assert len(TracedArray("x", [1, 2, 3], recorder)) == 3


class TestTracedScalar:
    def test_get_records_read(self):
        recorder = TraceRecorder()
        scalar = TracedScalar("s", 5, recorder)
        assert scalar.get() == 5
        assert recorder.to_trace("t")[0].item == "s"

    def test_set_records_write(self):
        recorder = TraceRecorder()
        scalar = TracedScalar("s", 0, recorder)
        scalar.set(7)
        assert scalar.peek() == 7
        assert recorder.to_trace("t")[0].is_write

    def test_peek_silent(self):
        recorder = TraceRecorder()
        TracedScalar("s", 1, recorder).peek()
        assert len(recorder) == 0
