"""Pinned conformance cases for the algorithm-frontier methods.

The 4200-case ``repro fuzz --seed 90001`` sweep (plus a 1500-case
``--seed 424242`` sweep) that gated this PR ran the full oracle battery —
engine agreement, round trips, bounds vs the brute-force optimum, the new
worse-than-heuristic quality oracle, the new MinLA solver-chain oracle,
cache equivalence, fault determinism, kernel parity, streaming agreement —
over ``shiftsreduce`` and ``generalized`` and surfaced **zero**
violations.  These minimized cases pin the geometry corners the sweep
exercised hardest (interior ports, eager policy, multi-port lazy, items
filling the DBC exactly) so any future regression reproduces under
``check_case`` with the same artifact schema the fuzzer emits.
"""

import random

import pytest

from repro.verify import CASE_METHODS, FuzzCase, check_case, generate_case

PINNED_CASES = [
    # Multi-port lazy, items fill one DBC exactly: the layout corner where
    # non-contiguous (port-straddling) placements are optimal.
    {
        "schema": 1,
        "accesses": [
            ["a", "read"], ["b", "read"], ["a", "read"], ["c", "write"],
            ["d", "read"], ["c", "read"], ["d", "read"], ["a", "read"],
            ["b", "read"], ["d", "write"], ["c", "read"], ["a", "read"],
        ],
        "words_per_dbc": 4,
        "num_dbcs": 1,
        "port_offsets": [1, 3],
        "port_policy": "lazy",
        "method": "generalized",
        "method_kwargs": {},
        "seed": 90001,
        "label": "pin-gen-multiport",
    },
    # Interior single port, eager policy: approach-cost corner that broke
    # earlier exact solvers (see docs/VERIFICATION.md).
    {
        "schema": 1,
        "accesses": [
            ["x", "read"], ["y", "read"], ["x", "read"], ["z", "read"],
            ["y", "write"], ["x", "read"], ["z", "read"], ["y", "read"],
        ],
        "words_per_dbc": 5,
        "num_dbcs": 1,
        "port_offsets": [2],
        "port_policy": "eager",
        "method": "shiftsreduce",
        "method_kwargs": {},
        "seed": 90002,
        "label": "pin-sr-interior-port-eager",
    },
    # Two DBCs, hub-and-satellites pattern: grouping portfolio + quality
    # oracle (placement must not lose to the heuristic guard candidate).
    {
        "schema": 1,
        "accesses": [
            ["hub", "read"], ["s1", "read"], ["hub", "read"], ["s2", "read"],
            ["hub", "write"], ["s3", "read"], ["hub", "read"], ["s4", "read"],
            ["hub", "read"], ["s1", "read"], ["hub", "read"], ["s3", "read"],
        ],
        "words_per_dbc": 3,
        "num_dbcs": 2,
        "port_offsets": [0],
        "port_policy": "lazy",
        "method": "shiftsreduce",
        "method_kwargs": {},
        "seed": 90003,
        "label": "pin-sr-hub",
    },
    # Single-item degenerate geometry under the generalized strategies.
    {
        "schema": 1,
        "accesses": [["only", "read"], ["only", "write"], ["only", "read"]],
        "words_per_dbc": 1,
        "num_dbcs": 1,
        "port_offsets": [0],
        "port_policy": "lazy",
        "method": "generalized",
        "method_kwargs": {},
        "seed": 90004,
        "label": "pin-gen-degenerate",
    },
]


@pytest.mark.parametrize(
    "case_dict", PINNED_CASES, ids=[case["label"] for case in PINNED_CASES]
)
def test_pinned_frontier_cases_are_clean(case_dict):
    violations = check_case(FuzzCase.from_dict(case_dict))
    assert violations == [], [violation.detail for violation in violations]


def test_new_methods_are_in_the_fuzz_rotation():
    assert "shiftsreduce" in CASE_METHODS
    assert "generalized" in CASE_METHODS


def test_generated_cases_cover_new_methods():
    rng = random.Random(90001)
    methods = {generate_case(rng, index).method for index in range(300)}
    assert "shiftsreduce" in methods
    assert "generalized" in methods
