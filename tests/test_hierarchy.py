"""Unit tests for the full-system model (repro.memory.hierarchy)."""

import pytest

from repro.dwm.config import DWMConfig
from repro.errors import ConfigError
from repro.memory.hierarchy import (
    SystemModel,
    SystemParams,
    SystemResult,
    system_comparison,
)
from repro.trace.model import AccessTrace
from repro.trace.kernels import fir_trace
from repro.trace.synthetic import markov_trace


class TestSystemParams:
    def test_defaults_valid(self):
        SystemParams()

    def test_invalid_dram_cycles(self):
        with pytest.raises(ConfigError):
            SystemParams(dram_cycles=0)

    def test_invalid_queue_depth(self):
        with pytest.raises(ConfigError):
            SystemParams(dram_queue_depth=0)


class TestAllDram:
    def test_blocking_reads_serialise_at_dram_latency(self):
        trace = AccessTrace(["a", "b", "c"])  # all reads, all misses
        config = DWMConfig(words_per_dbc=8, num_dbcs=1)
        params = SystemParams(dram_cycles=50)
        result = SystemModel(config, None, params, "all_dram").run(trace)
        assert result.dram_accesses == 3
        assert result.spm_accesses == 0
        # Each read blocks the core: 3 sequential 50-cycle accesses.
        assert result.total_cycles >= 150

    def test_write_pipeline_overlaps(self):
        trace = AccessTrace([("a", "W"), ("b", "W"), ("c", "W")])
        config = DWMConfig(words_per_dbc=8, num_dbcs=1)
        params = SystemParams(dram_cycles=50, dram_queue_depth=4)
        result = SystemModel(config, None, params, "all_dram").run(trace)
        # Stores don't block the core; the channel pipelines them.
        assert result.total_cycles < 150


class TestSystemComparison:
    @pytest.fixture(scope="class")
    def results(self):
        trace = fir_trace(taps=8, samples=24)
        capacity = max(16, int(trace.num_items * 0.6))
        config = DWMConfig(
            words_per_dbc=16, num_dbcs=max(1, capacity // 16), port_offsets=(8,)
        )
        return system_comparison(trace, config)

    def test_three_configurations(self, results):
        assert set(results) == {"all_dram", "spm_oblivious", "spm_shift_aware"}

    def test_spm_beats_all_dram(self, results):
        assert results["spm_oblivious"].total_cycles < (
            results["all_dram"].total_cycles
        )

    def test_shift_aware_not_worse_than_oblivious(self, results):
        assert results["spm_shift_aware"].total_cycles <= (
            results["spm_oblivious"].total_cycles
        )

    def test_access_accounting(self, results):
        trace_length = results["all_dram"].accesses
        for result in results.values():
            assert result.accesses == trace_length
        assert results["all_dram"].spm_accesses == 0
        assert results["spm_oblivious"].spm_accesses > 0

    def test_shift_cycles_only_in_spm_configs(self, results):
        assert results["all_dram"].spm_shift_cycles == 0
        assert results["spm_shift_aware"].spm_shift_cycles > 0


class TestSystemResult:
    def test_properties(self):
        result = SystemResult(
            total_cycles=100, spm_accesses=8, dram_accesses=2,
            spm_shift_cycles=30, configuration="x",
        )
        assert result.accesses == 10
        assert result.cycles_per_access == 10.0

    def test_speedup(self):
        fast = SystemResult(50, 10, 0, 0, "f")
        slow = SystemResult(200, 10, 0, 0, "s")
        assert fast.speedup_over(slow) == 4.0

    def test_empty(self):
        empty = SystemResult(0, 0, 0, 0, "e")
        assert empty.cycles_per_access == 0.0


class TestDeterminism:
    def test_repeat_runs_identical(self):
        trace = markov_trace(20, 400, seed=81)
        config = DWMConfig(words_per_dbc=8, num_dbcs=2)
        first = system_comparison(trace, config)
        second = system_comparison(trace, config)
        for key in first:
            assert first[key] == second[key]
