"""Unit tests for repro.dwm.dbc (head model and full DBC)."""

import pytest

from repro.dwm.config import DWMConfig, PortPolicy
from repro.dwm.dbc import DBC, HeadModel, port_access_cost
from repro.errors import ConfigError, SimulationError


class TestPortAccessCost:
    def test_from_rest_single_port(self):
        # Port at 0, head at rest: accessing offset 5 costs 5.
        assert port_access_cost(5, 0, (0,)) == (5, 0, 5)

    def test_sequential_cost_is_delta(self):
        cost, _port, head = port_access_cost(5, 0, (0,))
        cost2, _port, head2 = port_access_cost(7, head, (0,))
        assert cost2 == 2
        assert head2 == 7

    def test_backward_shift(self):
        cost, _port, head = port_access_cost(2, 6, (0,))
        assert cost == 4
        assert head == 2

    def test_multi_port_picks_cheapest(self):
        # Ports at 0 and 10; head at rest; offset 9 is 1 away via port 10.
        cost, port, head = port_access_cost(9, 0, (0, 10))
        assert cost == 1
        assert port == 10
        assert head == -1

    def test_multi_port_tie_breaks_low_port(self):
        # Offset 5 with ports 0 and 10, head 0: costs 5 via either.
        cost, port, _head = port_access_cost(5, 0, (0, 10))
        assert cost == 5
        assert port == 0


class TestHeadModelLazy:
    def make(self, words=8, ports=(0,)):
        config = DWMConfig(words_per_dbc=words, port_offsets=ports)
        return HeadModel(config)

    def test_first_access_cost(self):
        model = self.make()
        assert model.access(5).shifts == 5

    def test_head_persists(self):
        model = self.make()
        model.access(5)
        assert model.access(5).shifts == 0

    def test_sequential_walk_costs_one_each(self):
        model = self.make()
        model.access(0)
        costs = [model.access(offset).shifts for offset in range(1, 8)]
        assert costs == [1] * 7

    def test_total_shifts_accumulate(self):
        model = self.make()
        model.access(3)
        model.access(0)
        assert model.shifts == 6

    def test_reads_writes_counted(self):
        model = self.make()
        model.access(0, is_write=False)
        model.access(1, is_write=True)
        assert model.reads == 1
        assert model.writes == 1

    def test_out_of_range_offset_raises(self):
        model = self.make()
        with pytest.raises(SimulationError):
            model.access(8)

    def test_reset_restores_rest(self):
        model = self.make()
        model.access(5)
        model.reset()
        assert model.head == 0
        assert model.shifts == 0
        assert model.access(5).shifts == 5

    def test_max_abs_head_tracked(self):
        model = self.make()
        model.access(7)
        model.access(0)
        assert model.max_abs_head == 7

    def test_centred_port_costs(self):
        model = self.make(words=8, ports=(4,))
        assert model.access(4).shifts == 0
        assert model.access(0).shifts == 4


class TestHeadModelEager:
    def test_eager_returns_to_rest(self):
        config = DWMConfig(
            words_per_dbc=8, port_offsets=(0,), port_policy=PortPolicy.EAGER
        )
        model = HeadModel(config)
        assert model.access(5).shifts == 10  # 5 out + 5 back
        assert model.head == 0
        assert model.access(5).shifts == 10  # no state retained

    def test_eager_port_offset_access_free(self):
        config = DWMConfig(
            words_per_dbc=8, port_offsets=(3,), port_policy=PortPolicy.EAGER
        )
        model = HeadModel(config)
        assert model.access(3).shifts == 0


class TestDBCFunctional:
    def make(self, words=8, ports=(0,), bits=8, policy=PortPolicy.LAZY):
        config = DWMConfig(
            words_per_dbc=words,
            port_offsets=ports,
            bits_per_word=bits,
            port_policy=policy,
        )
        return DBC(config)

    def test_write_read_roundtrip(self):
        dbc = self.make()
        dbc.write(3, 0xAB)
        assert dbc.read(3).value == 0xAB

    def test_value_masked_to_word_width(self):
        dbc = self.make(bits=4)
        dbc.write(0, 0x1F)
        assert dbc.read(0).value == 0xF

    def test_shift_costs_match_head_model(self):
        dbc = self.make()
        config = DWMConfig(words_per_dbc=8, port_offsets=(0,), bits_per_word=8)
        model = HeadModel(config)
        pattern = [5, 2, 7, 7, 0, 3]
        for offset in pattern:
            assert dbc.read(offset).shifts == model.access(offset).shifts

    def test_values_survive_shifting(self):
        dbc = self.make()
        for offset in range(8):
            dbc.write(offset, offset + 1)
        # Access far ends repeatedly, then verify all values.
        dbc.read(0)
        dbc.read(7)
        dbc.read(0)
        for offset in range(8):
            assert dbc.peek(offset) == offset + 1

    def test_tapes_stay_in_lockstep(self):
        dbc = self.make()
        dbc.write(5, 0x5A)
        dbc.read(1)
        assert dbc.tape_shift_consistency()

    def test_load_words_then_read(self):
        dbc = self.make()
        dbc.load_words([10, 20, 30])
        assert dbc.read(1).value == 20
        assert dbc.read(2).value == 30

    def test_load_words_too_many_raises(self):
        dbc = self.make(words=2)
        with pytest.raises(SimulationError):
            dbc.load_words([1, 2, 3])

    def test_eager_policy_roundtrip(self):
        dbc = self.make(policy=PortPolicy.EAGER)
        dbc.write(4, 0x3C)
        result = dbc.read(4)
        assert result.value == 0x3C
        assert dbc.head == 0

    def test_multiport_uses_cheapest(self):
        dbc = self.make(words=16, ports=(2, 12))
        dbc.write(11, 0x42)
        result = dbc.read(11)
        assert result.value == 0x42

    def test_insufficient_overhead_raises(self):
        config = DWMConfig(words_per_dbc=8, overhead_domains=2)
        with pytest.raises(ConfigError, match="overhead_domains"):
            DBC(config)

    def test_counters_mirror_model(self):
        dbc = self.make()
        dbc.write(3, 1)
        dbc.read(3)
        assert dbc.reads == 1
        assert dbc.writes == 1
        assert dbc.shifts == 3
