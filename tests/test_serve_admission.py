"""Admission control and micro-batching units (no sockets involved).

The token bucket runs on an injected fake clock so refill behaviour is
deterministic; the batcher tests drive a real event loop via
``asyncio.run`` (the suite has no async plugin, deliberately — the
production entry points are synchronous too).
"""

import asyncio

import pytest

from repro.obs import MetricsRegistry, set_registry
from repro.robust import (
    degradation_summary,
    reset_degradations,
)
from repro.serve.admission import (
    AdmissionController,
    TokenBucket,
)
from repro.serve.batching import MicroBatcher
from repro.serve.protocol import Overloaded, RateLimited


@pytest.fixture()
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 3.0, clock=clock)
        for _ in range(3):
            bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.11)  # ~one token at 10/s (float-safe margin)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 2.0, clock=clock)
        clock.advance(60.0)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_unlimited_when_rate_none(self):
        bucket = TokenBucket(None)
        assert all(bucket.try_acquire() for _ in range(1000))
        assert bucket.available == float("inf")

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0)
        with pytest.raises(ValueError):
            TokenBucket(-1.0)


class TestAdmissionController:
    def test_rate_rejection_is_typed_429(self, registry):
        clock = FakeClock()
        controller = AdmissionController(
            rate=10.0, burst=1.0, max_queue=8, clock=clock
        )
        controller.admit("optimize")
        with pytest.raises(RateLimited):
            controller.admit("optimize")
        assert (
            registry.counter_value(
                "serve.admission.rejected", code=429, endpoint="optimize"
            )
            == 1
        )

    def test_queue_bound_rejection_is_typed_503(self, registry):
        controller = AdmissionController(max_queue=2)
        tickets = [controller.admit("simulate") for _ in range(2)]
        with pytest.raises(Overloaded):
            controller.admit("simulate")
        assert (
            registry.counter_value(
                "serve.admission.rejected", code=503, endpoint="simulate"
            )
            == 1
        )
        # Releasing a slot re-opens the gate.
        tickets[0].release()
        ticket = controller.admit("simulate")
        ticket.release()
        tickets[1].release()
        assert controller.depth == 0

    def test_release_is_idempotent(self):
        controller = AdmissionController(max_queue=4)
        ticket = controller.admit("optimize")
        ticket.release()
        ticket.release()
        assert controller.depth == 0

    def test_context_manager_releases(self):
        controller = AdmissionController(max_queue=1)
        with controller.admit("optimize"):
            assert controller.depth == 1
        assert controller.depth == 0

    def test_drain_rejects_everything(self, registry):
        controller = AdmissionController(max_queue=8)
        controller.drain()
        with pytest.raises(Overloaded, match="shutting down"):
            controller.admit("optimize")

    def test_depth_gauge_tracks(self, registry):
        controller = AdmissionController(max_queue=8)
        ticket = controller.admit("optimize")
        assert registry.snapshot()["gauges"]["serve.queue.depth"] == 1
        ticket.release()
        assert registry.snapshot()["gauges"]["serve.queue.depth"] == 0


class TestMicroBatcher:
    def test_coalesces_within_window(self, registry):
        batches = []

        async def run_batch(key, payloads):
            batches.append(list(payloads))
            return [p * 10 for p in payloads]

        async def scenario():
            batcher = MicroBatcher(run_batch, window_seconds=0.05)
            results = await asyncio.gather(
                batcher.submit("k", 1),
                batcher.submit("k", 2),
                batcher.submit("k", 3),
            )
            await batcher.close()
            return results

        assert asyncio.run(scenario()) == [10, 20, 30]
        assert batches == [[1, 2, 3]]
        assert registry.counter_value("serve.batches") == 1

    def test_incompatible_keys_do_not_mix(self):
        batches = []

        async def run_batch(key, payloads):
            batches.append((key, list(payloads)))
            return list(payloads)

        async def scenario():
            batcher = MicroBatcher(run_batch, window_seconds=0.02)
            await asyncio.gather(
                batcher.submit("a", 1), batcher.submit("b", 2)
            )
            await batcher.close()

        asyncio.run(scenario())
        assert sorted(batches) == [("a", [1]), ("b", [2])]

    def test_max_batch_flushes_immediately(self, registry):
        batches = []

        async def run_batch(key, payloads):
            batches.append(list(payloads))
            return list(payloads)

        async def scenario():
            # A window long enough that only the size trigger can flush
            # the first group inside the test budget.
            batcher = MicroBatcher(run_batch, window_seconds=30.0, max_batch=2)
            results = await asyncio.wait_for(
                asyncio.gather(batcher.submit("k", 1), batcher.submit("k", 2)),
                timeout=5.0,
            )
            await batcher.close()
            return results

        assert asyncio.run(scenario()) == [1, 2]
        assert batches == [[1, 2]]

    def test_recoverable_batch_failure_degrades_to_single(self, registry):
        reset_degradations()
        calls = []

        async def run_batch(key, payloads):
            calls.append(list(payloads))
            if len(payloads) > 1:
                raise OSError("injected infra failure")  # recoverable
            return [p + 100 for p in payloads]

        async def scenario():
            batcher = MicroBatcher(run_batch, window_seconds=0.02)
            results = await asyncio.gather(
                batcher.submit("k", 1), batcher.submit("k", 2)
            )
            await batcher.close()
            return results

        try:
            assert asyncio.run(scenario()) == [101, 102]
            # One failed batched pass, then one single pass per rider.
            assert calls == [[1, 2], [1], [2]]
            assert degradation_summary().get("serve:batched->single") == 1
        finally:
            reset_degradations()

    def test_semantic_failure_propagates_to_all_riders(self):
        async def run_batch(key, payloads):
            raise ValueError("bad placement")  # not recoverable

        async def scenario():
            batcher = MicroBatcher(run_batch, window_seconds=0.02)
            results = await asyncio.gather(
                batcher.submit("k", 1),
                batcher.submit("k", 2),
                return_exceptions=True,
            )
            await batcher.close()
            return results

        results = asyncio.run(scenario())
        assert all(isinstance(r, ValueError) for r in results)

    def test_single_rider_failure_is_not_retried(self):
        calls = []

        async def run_batch(key, payloads):
            calls.append(list(payloads))
            raise OSError("still down")

        async def scenario():
            batcher = MicroBatcher(run_batch, window_seconds=0.01)
            try:
                await batcher.submit("k", 1)
            finally:
                await batcher.close()

        with pytest.raises(OSError):
            asyncio.run(scenario())
        assert calls == [[1]]

    def test_closed_batcher_rejects_submissions(self):
        async def run_batch(key, payloads):
            return list(payloads)

        async def scenario():
            batcher = MicroBatcher(run_batch)
            await batcher.close()
            with pytest.raises(RuntimeError):
                await batcher.submit("k", 1)

        asyncio.run(scenario())

    def test_batch_size_histogram_recorded(self, registry):
        async def run_batch(key, payloads):
            return list(payloads)

        async def scenario():
            batcher = MicroBatcher(run_batch, window_seconds=0.02)
            await asyncio.gather(*(batcher.submit("k", i) for i in range(4)))
            await batcher.close()

        asyncio.run(scenario())
        snapshot = registry.snapshot()
        history = snapshot["histograms"]["serve.batch.size"]
        assert history["count"] == 1
        assert history["max"] == 4
