"""Unit tests for the DWM cache substrate (repro.memory.cache)."""

import pytest

from repro.dwm.config import DWMConfig
from repro.errors import ConfigError
from repro.memory.cache import (
    PLACEMENT_POLICIES,
    CacheGeometry,
    CacheResult,
    DWMCache,
    compare_cache_policies,
)
from repro.trace.model import AccessTrace
from repro.trace.synthetic import zipf_trace


def small_geometry(**overrides):
    defaults = dict(
        num_sets=2,
        ways=4,
        dbc_config=DWMConfig(words_per_dbc=8, num_dbcs=2, port_offsets=(0,)),
    )
    defaults.update(overrides)
    return CacheGeometry(**defaults)


class TestGeometryValidation:
    def test_defaults_valid(self):
        CacheGeometry()

    def test_ways_exceed_words_raise(self):
        with pytest.raises(ConfigError):
            small_geometry(ways=9)

    def test_sets_exceed_dbcs_raise(self):
        with pytest.raises(ConfigError):
            small_geometry(num_sets=3)

    def test_nonpositive_raise(self):
        with pytest.raises(ConfigError):
            small_geometry(num_sets=0)
        with pytest.raises(ConfigError):
            small_geometry(ways=0)

    def test_capacity(self):
        assert small_geometry().capacity_lines == 8


class TestCacheBasics:
    def test_unknown_policy_raises(self):
        with pytest.raises(ConfigError):
            DWMCache(small_geometry(), policy="chaotic")

    def test_cold_miss_then_hit(self):
        cache = DWMCache(small_geometry(), policy="static")
        cache.access("x")
        result = cache.run(AccessTrace(["x"]))
        assert result.hits == 1
        assert result.misses == 1  # the cold access above

    def test_lru_eviction(self):
        cache = DWMCache(small_geometry(num_sets=1, ways=2), policy="static")
        cache.access("a")
        cache.access("b")
        cache.access("c")  # evicts a (LRU)
        set0 = cache._sets[0]
        assert "a" not in set0.slots
        assert {"b", "c"} <= set0.slots.keys()

    def test_lru_touch_on_hit(self):
        cache = DWMCache(small_geometry(num_sets=1, ways=2), policy="static")
        cache.access("a")
        cache.access("b")
        cache.access("a")  # a becomes MRU
        cache.access("c")  # evicts b
        assert "a" in cache._sets[0].slots
        assert "b" not in cache._sets[0].slots

    def test_deterministic_set_mapping(self):
        # crc32-based mapping: identical across cache instances.
        one = DWMCache(small_geometry())._set_of("item[3]")
        two = DWMCache(small_geometry())._set_of("item[3]")
        assert one == two

    def test_run_counts_accesses(self):
        trace = zipf_trace(20, 200, seed=2)
        result = DWMCache(small_geometry()).run(trace)
        assert result.accesses == 200
        assert 0.0 <= result.hit_rate <= 1.0


class TestPolicies:
    @pytest.fixture(scope="class")
    def results(self):
        trace = zipf_trace(60, 1500, alpha=1.2, seed=9)
        geometry = CacheGeometry(
            num_sets=2,
            ways=8,
            dbc_config=DWMConfig(words_per_dbc=32, num_dbcs=2, port_offsets=(0,)),
        )
        return compare_cache_policies(trace, geometry)

    def test_all_policies_run(self, results):
        assert set(results) == set(PLACEMENT_POLICIES)

    def test_hit_rate_is_policy_invariant(self, results):
        """Replacement is LRU for all policies; only slot layout differs."""
        rates = {round(result.hit_rate, 9) for result in results.values()}
        assert len(rates) == 1

    def test_static_has_no_reorg_traffic(self, results):
        assert results["static"].reorg_shifts == 0
        assert results["static"].reorg_swaps == 0

    def test_reorg_policies_pay_for_swaps(self, results):
        assert results["promote"].reorg_swaps > 0
        assert results["mru_at_port"].reorg_swaps >= results["promote"].reorg_swaps

    def test_shift_accounting_includes_reorg(self, results):
        for result in results.values():
            assert result.shifts >= result.reorg_shifts


class TestCacheResult:
    def test_properties(self):
        result = CacheResult(
            hits=3, misses=1, shifts=8, reorg_shifts=2, reorg_swaps=1,
            policy="promote",
        )
        assert result.accesses == 4
        assert result.hit_rate == 0.75
        assert result.shifts_per_access == 2.0

    def test_empty(self):
        result = CacheResult(0, 0, 0, 0, 0, "static")
        assert result.hit_rate == 0.0
        assert result.shifts_per_access == 0.0
