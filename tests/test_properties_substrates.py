"""Property-based tests for the newer substrates (loops, mixes, phases, dse)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis.dse import dominates, pareto_front, DesignPoint
from repro.trace.loops import Loop, LoopNest, Ref
from repro.trace.mixes import interleave
from repro.trace.model import Access, AccessKind, AccessTrace
from repro.trace.phases import (
    phase_summary,
    windowed_working_sets,
)

item_names = st.integers(min_value=0, max_value=7).map(lambda i: f"v{i}")
traces = st.lists(
    st.builds(
        Access,
        item=item_names,
        kind=st.sampled_from([AccessKind.READ, AccessKind.WRITE]),
    ),
    min_size=1,
    max_size=40,
).map(lambda records: AccessTrace(records, name="hyp-sub"))


# ---------------------------------------------------------------------------
# Loop-nest DSL: trace length and bounds are structural
# ---------------------------------------------------------------------------

@given(
    extents=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=3),
    repetitions=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40)
def test_loopnest_length_is_product_of_extents(extents, repetitions):
    loops = [
        Loop(f"i{d}", 0, extent) for d, extent in enumerate(extents)
    ]
    body = [Ref("A", tuple(f"i{d}" for d in range(len(extents))), "R")]
    nest = LoopNest(
        loops=loops,
        body=body,
        shapes={"A": tuple(extents)},
        repetitions=repetitions,
    )
    trace = nest.trace()
    expected = repetitions
    for extent in extents:
        expected *= extent
    assert len(trace) == expected
    # Every emitted item is within the declared footprint.
    footprint = nest.footprint_words()
    assert trace.num_items <= footprint


# ---------------------------------------------------------------------------
# Interleaving: conservation and per-task order preservation
# ---------------------------------------------------------------------------

@given(
    left=traces,
    right=traces,
    quantum=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=50, deadline=None)
def test_interleave_preserves_per_task_subsequences(left, right, quantum):
    mixed = interleave([left, right], quantum=quantum)
    assert len(mixed) == len(left) + len(right)
    recovered_left = [
        access.item[len("t0_"):]
        for access in mixed
        if access.item.startswith("t0_")
    ]
    recovered_right = [
        access.item[len("t1_"):]
        for access in mixed
        if access.item.startswith("t1_")
    ]
    assert recovered_left == list(left.item_sequence)
    assert recovered_right == list(right.item_sequence)


# ---------------------------------------------------------------------------
# Phases: partitions cover the trace exactly
# ---------------------------------------------------------------------------

@given(trace=traces, window=st.integers(min_value=1, max_value=16))
@settings(max_examples=50)
def test_phase_summary_partitions_trace(trace, window):
    phases = phase_summary(trace, window=window)
    assert phases[0].start == 0
    assert phases[-1].end == len(trace)
    total = 0
    previous_end = 0
    for phase in phases:
        assert phase.start == previous_end
        previous_end = phase.end
        total += phase.length
    assert total == len(trace)


@given(trace=traces, window=st.integers(min_value=1, max_value=16))
@settings(max_examples=50)
def test_working_sets_cover_all_items(trace, window):
    sets = windowed_working_sets(trace, window)
    union = set().union(*sets) if sets else set()
    assert union == set(trace.items)


# ---------------------------------------------------------------------------
# Pareto front: soundness and completeness
# ---------------------------------------------------------------------------

objective_triples = st.tuples(
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=0, max_value=9),
)


@given(objectives=st.lists(objective_triples, min_size=1, max_size=12))
@settings(max_examples=60)
def test_pareto_front_sound_and_complete(objectives):
    points = [
        DesignPoint(
            words_per_dbc=16, num_ports=1, policy="lazy", num_dbcs=1,
            total_shifts=0, latency_ns=float(a), energy_pj=float(b),
            area_per_bit=float(c),
        )
        for a, b, c in objectives
    ]
    front = pareto_front(points)
    assert front  # at least one non-dominated point always exists
    front_ids = {id(point) for point in front}
    for point in points:
        dominated = any(
            dominates(other.objectives(), point.objectives())
            for other in points
            if other is not point
        )
        if dominated:
            assert id(point) not in front_ids
        else:
            assert id(point) in front_ids
