"""Unit tests for the loop-nest trace DSL (repro.trace.loops)."""

import pytest

from repro.errors import TraceError
from repro.trace.loops import Loop, LoopNest, Ref, matmul_nest, stencil_nest
from repro.trace.kernels import matmul_trace


class TestLoop:
    def test_values(self):
        assert list(Loop("i", 0, 6, 2).values()) == [0, 2, 4]

    def test_zero_step_raises(self):
        with pytest.raises(TraceError):
            Loop("i", 0, 4, 0)

    def test_empty_name_raises(self):
        with pytest.raises(TraceError):
            Loop("", 0, 4)


class TestRef:
    def test_kind_coerced(self):
        assert Ref("A", ("i",), "write").kind == "W"

    def test_evaluate_variable(self):
        assert Ref("A", ("i",)).evaluate({"i": 3}) == (3,)

    def test_evaluate_constant(self):
        assert Ref("A", (2,)).evaluate({}) == (2,)

    def test_evaluate_affine(self):
        ref = Ref("A", (({"i": 2, "j": -1}, 5),))
        assert ref.evaluate({"i": 3, "j": 4}) == (2 * 3 - 4 + 5,)

    def test_unknown_variable_raises(self):
        with pytest.raises(TraceError, match="unknown loop variable"):
            Ref("A", ("q",)).evaluate({"i": 0})

    def test_bad_subscript_raises(self):
        with pytest.raises(TraceError):
            Ref("A", (3.5,)).evaluate({})


class TestLoopNestValidation:
    def test_no_loops_raises(self):
        with pytest.raises(TraceError):
            LoopNest(loops=[], body=[Ref("A", (0,))], shapes={"A": (1,)})

    def test_no_body_raises(self):
        with pytest.raises(TraceError):
            LoopNest(loops=[Loop("i", 0, 2)], body=[], shapes={})

    def test_duplicate_loop_vars_raise(self):
        with pytest.raises(TraceError, match="duplicate"):
            LoopNest(
                loops=[Loop("i", 0, 2), Loop("i", 0, 2)],
                body=[Ref("A", ("i",))],
                shapes={"A": (2,)},
            )

    def test_undeclared_array_raises(self):
        with pytest.raises(TraceError, match="no declared shape"):
            LoopNest(
                loops=[Loop("i", 0, 2)],
                body=[Ref("A", ("i",))],
                shapes={},
            )

    def test_dimension_mismatch_raises(self):
        with pytest.raises(TraceError, match="subscripts"):
            LoopNest(
                loops=[Loop("i", 0, 2)],
                body=[Ref("A", ("i", "i"))],
                shapes={"A": (2,)},
            )

    def test_out_of_bounds_detected_at_build(self):
        nest = LoopNest(
            loops=[Loop("i", 0, 4)],
            body=[Ref("A", (({"i": 1}, 1),))],  # A[i+1], overflows at i=3
            shapes={"A": (4,)},
        )
        with pytest.raises(TraceError, match="out of\\s+bounds"):
            nest.trace()


class TestTraceGeneration:
    def test_iteration_order_row_major(self):
        nest = LoopNest(
            loops=[Loop("i", 0, 2), Loop("j", 0, 2)],
            body=[Ref("A", ("i", "j"))],
            shapes={"A": (2, 2)},
        )
        trace = nest.trace()
        assert trace.item_sequence == ("A[0]", "A[1]", "A[2]", "A[3]")

    def test_kinds_emitted(self):
        nest = LoopNest(
            loops=[Loop("i", 0, 2)],
            body=[Ref("A", ("i",), "R"), Ref("B", ("i",), "W")],
            shapes={"A": (2,), "B": (2,)},
        )
        kinds = [access.is_write for access in nest.trace()]
        assert kinds == [False, True, False, True]

    def test_repetitions(self):
        nest = LoopNest(
            loops=[Loop("i", 0, 3)],
            body=[Ref("A", ("i",))],
            shapes={"A": (3,)},
            repetitions=2,
        )
        assert len(nest.trace()) == 6

    def test_footprint(self):
        nest = matmul_nest(size=4)
        assert nest.footprint_words() == 3 * 16

    def test_negative_repetitions_raise(self):
        with pytest.raises(TraceError):
            LoopNest(
                loops=[Loop("i", 0, 1)],
                body=[Ref("A", ("i",))],
                shapes={"A": (1,)},
                repetitions=0,
            )


class TestReferenceNests:
    def test_dsl_matmul_matches_instrumented_kernel_pattern(self):
        """The DSL nest reproduces the instrumented kernel's access skeleton.

        The instrumented matmul reads A[i,k], B[k,j] per k and writes C[i,j]
        once per (i,j); the DSL emits the write inside the k loop, so
        restrict the comparison to the read skeleton of the inner iteration.
        """
        size = 3
        dsl = matmul_nest(size=size).trace()
        kernel = matmul_trace(size=size)
        dsl_reads = [a.item for a in dsl if not a.is_write]
        kernel_reads = [a.item for a in kernel if not a.is_write]
        assert dsl_reads == kernel_reads

    def test_stencil_nest_boundaries(self):
        trace = stencil_nest(width=6).trace()
        # i runs 1..4: the first body iteration reads g[0], g[1], g[2].
        assert trace.item_sequence[:4] == ("g[0]", "g[1]", "g[2]", "out[1]")

    def test_dsl_trace_optimizes_end_to_end(self):
        from repro.core.api import optimize_placement

        trace = matmul_nest(size=4, name="dsl").trace()
        heuristic = optimize_placement(trace, words_per_dbc=16, method="heuristic")
        declaration = optimize_placement(trace, words_per_dbc=16, method="declaration")
        assert heuristic.total_shifts <= declaration.total_shifts
