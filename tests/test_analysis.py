"""Unit tests for repro.analysis (metrics, report, sweep)."""

import math

import pytest

from repro.analysis.metrics import (
    geometric_mean,
    normalize,
    reduction_percent,
    speedup,
    summarize_normalized,
)
from repro.analysis.report import (
    format_bar_chart,
    format_grouped_bars,
    format_table,
)
from repro.analysis.sweep import (
    SweepRecord,
    normalized_by_method,
    pivot,
    sweep,
)
from repro.trace.synthetic import markov_trace


class TestGeometricMean:
    def test_single_value(self):
        assert geometric_mean([4.0]) == pytest.approx(4.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_is_nan(self):
        assert math.isnan(geometric_mean([]))

    def test_zero_clamped(self):
        assert geometric_mean([0.0, 1.0]) > 0.0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([-1.0])


class TestSimpleMetrics:
    def test_reduction_percent(self):
        assert reduction_percent(100, 60) == pytest.approx(40.0)

    def test_reduction_zero_baseline(self):
        assert reduction_percent(0, 10) == 0.0

    def test_speedup(self):
        assert speedup(10, 5) == 2.0

    def test_speedup_zero_improved(self):
        assert speedup(10, 0) == float("inf")
        assert speedup(0, 0) == 1.0

    def test_normalize(self):
        values = {"a": 10.0, "b": 5.0}
        assert normalize(values, "a") == {"a": 1.0, "b": 0.5}

    def test_normalize_zero_reference(self):
        values = {"a": 0.0, "b": 5.0}
        normalized = normalize(values, "a")
        assert normalized["a"] == 0.0
        assert normalized["b"] == float("inf")

    def test_summarize_normalized(self):
        rows = [{"x": 1.0, "y": 4.0}, {"x": 1.0, "y": 1.0}]
        summary = summarize_normalized(rows, ["x", "y"])
        assert summary["x"] == pytest.approx(1.0)
        assert summary["y"] == pytest.approx(2.0)


class TestReport:
    def test_table_contains_cells(self):
        text = format_table(("a", "b"), [(1, 2.5), ("x", 0.125)], title="T")
        assert "T" in text
        assert "2.500" in text
        assert "x" in text

    def test_table_alignment(self):
        text = format_table(("col",), [("short",), ("a-much-longer-cell",)])
        lines = text.splitlines()
        assert len(set(map(len, lines[2:]))) == 1  # data rows equal width

    def test_bar_chart_scales(self):
        text = format_bar_chart({"a": 1.0, "b": 2.0}, width=10)
        bars = {
            line.split("|")[0].strip(): line.count("#")
            for line in text.splitlines()
            if "|" in line
        }
        assert bars["b"] == 10
        assert bars["a"] == 5

    def test_bar_chart_empty(self):
        assert "(no data)" in format_bar_chart({})

    def test_grouped_bars_mentions_groups_and_series(self):
        text = format_grouped_bars(
            {"bench1": {"m1": 1.0, "m2": 0.5}}, title="G"
        )
        assert "bench1:" in text
        assert "m1" in text and "m2" in text


class TestSweep:
    @pytest.fixture(scope="class")
    def records(self):
        traces = [markov_trace(10, 150, seed=s) for s in (0, 1)]
        return sweep(
            traces,
            methods=("declaration", "heuristic"),
            words_per_dbc_values=(4, 8),
        )

    def test_record_count(self, records):
        assert len(records) == 2 * 2 * 2  # traces x lengths x methods

    def test_shifts_per_access(self, records):
        record = records[0]
        assert record.shifts_per_access == pytest.approx(
            record.total_shifts / record.num_accesses
        )

    def test_pivot_sums_cells(self, records):
        table = pivot(records, "method", "words_per_dbc")
        total = sum(r.total_shifts for r in records if r.method == "heuristic")
        assert sum(table["heuristic"].values()) == total

    def test_normalized_by_method(self, records):
        normalized = normalized_by_method(records)
        for cell in normalized.values():
            assert cell["declaration"] == pytest.approx(1.0)
            assert cell["heuristic"] <= 1.0 + 1e-9

    def test_normalized_missing_baseline_skipped(self):
        records = [
            SweepRecord(
                trace="t", method="heuristic", words_per_dbc=4, num_ports=1,
                num_dbcs=1, total_shifts=5, num_accesses=10, runtime_seconds=0.0,
            )
        ]
        assert normalized_by_method(records) == {}

    def test_sweep_ports(self):
        trace = markov_trace(8, 100, seed=2)
        records = sweep(
            [trace], methods=("declaration",), num_ports_values=(1, 2)
        )
        assert {r.num_ports for r in records} == {1, 2}


class TestSummarizeNormalizedEdgeCases:
    def test_empty_rows_yield_nan_per_key(self):
        import math as _math

        summary = summarize_normalized([], ["x", "y"])
        assert set(summary) == {"x", "y"}
        assert all(_math.isnan(value) for value in summary.values())
