"""Unit tests for repro.core.exact (DP and brute-force optimum)."""

import itertools

import pytest

from repro.core.cost import evaluate_placement, linear_arrangement_cost
from repro.core.exact import (
    exact_single_dbc_placement,
    exhaustive_placement,
    minla_exact_order,
    minla_optimal_cost,
)
from repro.core.heuristic import heuristic_placement
from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig
from repro.errors import OptimizationError
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace, zipf_trace


class TestMinlaExactOrder:
    def test_empty(self):
        assert minla_exact_order([], {}) == []

    def test_single_item(self):
        assert minla_exact_order(["a"], {}) == ["a"]

    def test_matches_brute_force_small(self):
        items = ["a", "b", "c", "d", "e"]
        affinity = {
            ("a", "b"): 3, ("b", "c"): 1, ("a", "c"): 2,
            ("c", "d"): 4, ("d", "e"): 1, ("a", "e"): 2,
        }
        best_cost = min(
            linear_arrangement_cost(list(perm), affinity)
            for perm in itertools.permutations(items)
        )
        dp_order = minla_exact_order(items, affinity)
        assert linear_arrangement_cost(dp_order, affinity) == best_cost

    def test_chain_graph_keeps_chain_order(self):
        # Path graph a-b-c-d with heavy edges: optimal MinLA is the path.
        affinity = {("a", "b"): 5, ("b", "c"): 5, ("c", "d"): 5}
        order = minla_exact_order(["a", "b", "c", "d"], affinity)
        cost = linear_arrangement_cost(order, affinity)
        assert cost == 15  # every heavy edge adjacent

    def test_size_guard(self):
        items = [f"i{k}" for k in range(17)]
        with pytest.raises(OptimizationError, match="at most"):
            minla_exact_order(items, {})

    def test_optimal_cost_wrapper(self):
        affinity = {("a", "b"): 2}
        assert minla_optimal_cost(["a", "b"], affinity) == 2


class TestExactSingleDbc:
    def test_not_worse_than_heuristic(self):
        for seed in range(3):
            trace = markov_trace(8, 120, locality=0.8, seed=seed)
            config = DWMConfig(words_per_dbc=12, num_dbcs=1, port_offsets=(0,))
            problem = PlacementProblem(trace=trace, config=config)
            exact_cost = evaluate_placement(
                problem, exact_single_dbc_placement(problem)
            )
            heuristic_cost = evaluate_placement(
                problem, heuristic_placement(problem)
            )
            assert exact_cost <= heuristic_cost

    def test_too_many_items_raises(self):
        trace = markov_trace(10, 50, seed=1)
        config = DWMConfig(words_per_dbc=8, num_dbcs=2)
        problem = PlacementProblem(trace=trace, config=config)
        with pytest.raises(OptimizationError):
            exact_single_dbc_placement(problem)

    def test_single_dbc_valid(self):
        trace = zipf_trace(6, 80, seed=2)
        config = DWMConfig(words_per_dbc=8, num_dbcs=1)
        problem = PlacementProblem(trace=trace, config=config)
        placement = exact_single_dbc_placement(problem)
        placement.validate(config, problem.items)
        assert placement.dbcs_used() == [0]


class TestExhaustivePlacement:
    def test_not_worse_than_heuristic_multi_dbc(self):
        trace = markov_trace(5, 60, locality=0.7, seed=4)
        config = DWMConfig(words_per_dbc=3, num_dbcs=2, port_offsets=(0,))
        problem = PlacementProblem(trace=trace, config=config)
        exact_cost = evaluate_placement(problem, exhaustive_placement(problem))
        heuristic_cost = evaluate_placement(problem, heuristic_placement(problem))
        assert exact_cost <= heuristic_cost

    def test_alternating_pair_split_found(self):
        trace = AccessTrace(["a", "b"] * 10)
        config = DWMConfig(words_per_dbc=2, num_dbcs=2, port_offsets=(0,))
        problem = PlacementProblem(trace=trace, config=config)
        placement = exhaustive_placement(problem)
        assert evaluate_placement(problem, placement) == 0
        assert placement["a"].dbc != placement["b"].dbc

    def test_size_guard(self):
        trace = markov_trace(10, 30, seed=5)
        config = DWMConfig(words_per_dbc=16, num_dbcs=1)
        problem = PlacementProblem(trace=trace, config=config)
        with pytest.raises(OptimizationError, match="at most"):
            exhaustive_placement(problem, max_items=7)

    def test_agrees_with_single_dbc_dp_when_forced(self):
        # One DBC, port at 0: brute force over anchored orders must agree
        # with the DP up to the brute-force candidate restriction.
        trace = markov_trace(5, 80, locality=0.9, seed=6)
        config = DWMConfig(words_per_dbc=5, num_dbcs=1, port_offsets=(0,))
        problem = PlacementProblem(trace=trace, config=config)
        brute = evaluate_placement(problem, exhaustive_placement(problem))
        dp = evaluate_placement(problem, exact_single_dbc_placement(problem))
        assert brute == dp


def _true_optimum(problem):
    """All injective slot assignments — independent of repro.core.exact."""
    from repro.core.placement import Placement, Slot

    config = problem.config
    slots = [
        Slot(dbc, offset)
        for dbc in range(config.num_dbcs)
        for offset in range(config.words_per_dbc)
    ]
    items = list(problem.items)
    return min(
        evaluate_placement(problem, Placement(dict(zip(items, chosen))))
        for chosen in itertools.permutations(slots, len(items))
    )


class TestFuzzerRegressions:
    """Cases the differential fuzzer minimized against the old solvers."""

    def test_two_port_zero_cost_split(self):
        # Shrunk fuzz repro: two items ping-ponging between ports 0 and 2.
        # The old exhaustive search only tried contiguous windows, forcing
        # the items adjacent (cost 5); one item parked on each port is free.
        trace = AccessTrace(["a", "b"] * 3)
        config = DWMConfig(words_per_dbc=3, num_dbcs=1, port_offsets=(0, 2))
        problem = PlacementProblem(trace=trace, config=config)
        placement = exhaustive_placement(problem)
        assert evaluate_placement(problem, placement) == 0

    def test_interior_port_approach_term(self):
        # Shrunk fuzz repro: full single-port DBC with the port mid-tape.
        # The old MinLA variants charged the first access as if the port sat
        # at offset 0 and returned a suboptimal order.
        trace = AccessTrace(["c", "a", "b", "c", "d", "e", "c", "a", "c", "b"])
        config = DWMConfig(words_per_dbc=5, num_dbcs=1, port_offsets=(2,))
        problem = PlacementProblem(trace=trace, config=config)
        cost = evaluate_placement(problem, exact_single_dbc_placement(problem))
        assert cost == 12
        assert cost == _true_optimum(problem)

    @pytest.mark.parametrize("ports", [(0,), (1,), (2,), (0, 2), (1, 3)])
    def test_exhaustive_matches_true_optimum(self, ports):
        from repro.core.exact import exhaustive_search_is_exact

        trace = markov_trace(4, 40, locality=0.6, seed=9)
        words = max(ports) + 2
        config = DWMConfig(
            words_per_dbc=words, num_dbcs=2, port_offsets=ports
        )
        problem = PlacementProblem(trace=trace, config=config)
        assert exhaustive_search_is_exact(config, len(problem.items))
        cost = evaluate_placement(problem, exhaustive_placement(problem))
        assert cost == _true_optimum(problem)


class TestExhaustiveSearchIsExact:
    def test_eager_always_exact(self):
        from repro.core.exact import exhaustive_search_is_exact
        from repro.dwm.config import PortPolicy

        config = DWMConfig(
            words_per_dbc=64, num_dbcs=4, port_offsets=(0, 31, 63),
            port_policy=PortPolicy.EAGER,
        )
        assert exhaustive_search_is_exact(config, 7)

    def test_single_port_lazy_exact(self):
        from repro.core.exact import exhaustive_search_is_exact

        config = DWMConfig(words_per_dbc=64, num_dbcs=4, port_offsets=(0,))
        assert exhaustive_search_is_exact(config, 7)

    def test_multi_port_lazy_truncated_combinations(self):
        from repro.core.exact import exhaustive_search_is_exact

        # comb(64, 7) is astronomically past MAX_OFFSET_COMBINATIONS, so the
        # search falls back to contiguous windows and loses the guarantee.
        config = DWMConfig(words_per_dbc=64, num_dbcs=1, port_offsets=(0, 32))
        assert not exhaustive_search_is_exact(config, 7)
