"""Unit tests for the high-level optimization API."""

import pytest

from repro.core.api import ALGORITHMS, build_problem, compare_methods, optimize_placement
from repro.dwm.config import DWMConfig
from repro.errors import OptimizationError
from repro.trace.synthetic import markov_trace, pingpong_trace


@pytest.fixture
def trace():
    return markov_trace(12, 300, locality=0.8, seed=23)


class TestBuildProblem:
    def test_default_config_fits(self, trace):
        problem = build_problem(trace)
        assert problem.config.capacity_words >= trace.num_items

    def test_explicit_config(self, trace):
        config = DWMConfig(words_per_dbc=16, num_dbcs=1)
        assert build_problem(trace, config).config is config

    def test_geometry_kwargs(self, trace):
        problem = build_problem(trace, words_per_dbc=4, num_ports=2)
        assert problem.config.words_per_dbc == 4
        assert problem.config.num_ports == 2


class TestOptimizePlacement:
    @pytest.mark.parametrize("method", sorted(set(ALGORITHMS) - {"exact"}))
    def test_every_method_returns_valid_result(self, trace, method):
        result = optimize_placement(trace, method=method)
        result.placement.validate(build_problem(trace).config, trace.items)
        assert result.total_shifts >= 0
        assert result.method == method
        assert result.details["num_accesses"] == len(trace)

    def test_exact_small_instance(self):
        trace = pingpong_trace(num_pairs=2, rounds=10)
        config = DWMConfig(words_per_dbc=8, num_dbcs=1)
        result = optimize_placement(trace, config, method="exact")
        heuristic = optimize_placement(trace, config, method="heuristic")
        assert result.total_shifts <= heuristic.total_shifts

    def test_unknown_method_raises(self, trace):
        with pytest.raises(OptimizationError, match="unknown method"):
            optimize_placement(trace, method="magic")

    def test_random_seed_passthrough(self, trace):
        a = optimize_placement(trace, method="random", seed=1)
        b = optimize_placement(trace, method="random", seed=1)
        c = optimize_placement(trace, method="random", seed=2)
        assert a.placement == b.placement
        assert a.placement != c.placement

    def test_runtime_recorded(self, trace):
        result = optimize_placement(trace, method="heuristic")
        assert result.runtime_seconds >= 0.0

    def test_shift_count_matches_simulator(self, trace):
        from repro.memory.spm import simulate_placement

        result = optimize_placement(trace, method="heuristic")
        config = build_problem(trace).config
        sim = simulate_placement(trace, config, result.placement)
        assert sim.shifts == result.total_shifts


class TestCompareMethods:
    def test_default_methods(self, trace):
        results = compare_methods(trace)
        assert set(results) == {"declaration", "random", "frequency", "heuristic"}

    def test_heuristic_wins_on_locality(self, trace):
        results = compare_methods(trace)
        assert results["heuristic"].total_shifts <= min(
            results["declaration"].total_shifts,
            results["random"].total_shifts,
        )

    def test_custom_method_list(self, trace):
        results = compare_methods(trace, methods=("declaration",))
        assert list(results) == ["declaration"]
