"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import load_placement_json, main


def run_cli(capsys, *argv):
    """Invoke the CLI and return (exit_code, stdout, stderr)."""
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestTraceGenerate:
    def test_kernel_to_jsonl(self, tmp_path, capsys):
        path = tmp_path / "fir.jsonl"
        code, out, _err = run_cli(capsys, "trace", "generate", "fir", "-o", str(path))
        assert code == 0
        assert path.exists()
        assert "wrote" in out

    def test_synthetic_with_size(self, tmp_path, capsys):
        path = tmp_path / "m.trc"
        code, out, _err = run_cli(
            capsys, "trace", "generate", "markov",
            "--items", "10", "--accesses", "200", "--seed", "3",
            "-o", str(path),
        )
        assert code == 0
        assert "200 accesses" in out

    def test_unknown_source(self, tmp_path, capsys):
        code, _out, err = run_cli(
            capsys, "trace", "generate", "nope", "-o", str(tmp_path / "x.trc")
        )
        assert code == 2
        assert "unknown source" in err


class TestTraceInfo:
    def test_prints_stats(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        run_cli(capsys, "trace", "generate", "histogram", "-o", str(path))
        code, out, _err = run_cli(capsys, "trace", "info", str(path))
        assert code == 0
        assert "accesses" in out
        assert "locality score" in out

    def test_missing_file(self, capsys):
        code, _out, err = run_cli(capsys, "trace", "info", "/no/such/file.jsonl")
        assert code == 1
        assert "error" in err


class TestPlaceAndSimulate:
    @pytest.fixture
    def trace_file(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        run_cli(capsys, "trace", "generate", "markov",
                "--items", "12", "--accesses", "300", "-o", str(path))
        capsys.readouterr()
        return path

    def test_place_to_stdout(self, trace_file, capsys):
        code, out, err = run_cli(capsys, "place", str(trace_file))
        assert code == 0
        payload = json.loads(out[: out.rindex("}") + 1])
        assert payload["method"] == "heuristic"
        assert payload["total_shifts"] <= payload["baseline_shifts"]
        assert "vs declaration" in err

    def test_place_to_file_and_reload(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "placement.json"
        code, _out, _err = run_cli(
            capsys, "place", str(trace_file), "-o", str(out_path),
            "--words-per-dbc", "8",
        )
        assert code == 0
        placement, config = load_placement_json(out_path)
        assert config.words_per_dbc == 8
        assert len(placement) == 12

    def test_place_respects_method_flag(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "placement.json"
        code, _out, _err = run_cli(
            capsys, "place", str(trace_file), "--method", "declaration",
            "-o", str(out_path),
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["method"] == "declaration"
        assert payload["total_shifts"] == payload["baseline_shifts"]

    def test_simulate_reports_shifts(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "placement.json"
        run_cli(capsys, "place", str(trace_file), "-o", str(out_path))
        capsys.readouterr()
        code, out, _err = run_cli(
            capsys, "simulate", str(trace_file), str(out_path)
        )
        assert code == 0
        assert "shifts/access" in out
        assert "total energy" in out

    def test_simulate_matches_place_shift_count(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "placement.json"
        run_cli(capsys, "place", str(trace_file), "-o", str(out_path))
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        _code, out, _err = run_cli(
            capsys, "simulate", str(trace_file), str(out_path)
        )
        assert f"{payload['total_shifts']}" in out

    def test_geometry_flags(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "placement.json"
        code, _out, _err = run_cli(
            capsys, "place", str(trace_file),
            "--words-per-dbc", "4", "--ports", "2", "--num-dbcs", "5",
            "--policy", "eager", "-o", str(out_path),
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["config"]["words_per_dbc"] == 4
        assert payload["config"]["num_dbcs"] == 5
        assert len(payload["config"]["port_offsets"]) == 2
        assert payload["config"]["port_policy"] == "eager"


class TestExperimentsCommand:
    def test_single_experiment(self, capsys):
        code, out, _err = run_cli(capsys, "experiments", "e1")
        assert code == 0
        assert "Benchmark characteristics" in out

    def test_jobs_flag(self, capsys):
        code, out, _err = run_cli(capsys, "experiments", "e1", "--jobs", "2")
        assert code == 0
        assert "Benchmark characteristics" in out

    def test_no_cache_flag(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        code, _out, _err = run_cli(
            capsys, "experiments", "e9", "--no-cache",
            "--cache-dir", str(cache_dir),
        )
        assert code == 0
        assert not cache_dir.exists()

    def test_markdown_report(self, tmp_path, capsys):
        report = tmp_path / "report.md"
        code, _out, err = run_cli(
            capsys, "experiments", "e1", "-o", str(report)
        )
        assert code == 0
        assert "wrote report" in err
        text = report.read_text()
        assert text.startswith("# repro — experiment report")
        assert "## E1" in text


class TestExportILP:
    def test_lp_file_written(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        run_cli(capsys, "trace", "generate", "markov",
                "--items", "6", "--accesses", "80", "-o", str(trace_path))
        capsys.readouterr()
        lp_path = tmp_path / "model.lp"
        code, _out, err = run_cli(
            capsys, "place", str(trace_path), "--export-ilp", str(lp_path),
            "-o", str(tmp_path / "p.json"),
        )
        assert code == 0
        assert "wrote ILP" in err
        text = lp_path.read_text()
        assert "Minimize" in text and "Binary" in text and "End" in text


class TestDseCommand:
    def test_dse_prints_front(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        run_cli(capsys, "trace", "generate", "markov",
                "--items", "16", "--accesses", "300", "-o", str(path))
        capsys.readouterr()
        code, out, _err = run_cli(
            capsys, "dse", str(path), "--lengths", "8,16", "--port-counts", "1,2"
        )
        assert code == 0
        assert "Pareto-efficient" in out
        assert "knee" in out

    def test_dse_populates_cache(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        run_cli(capsys, "trace", "generate", "markov",
                "--items", "12", "--accesses", "200", "-o", str(path))
        capsys.readouterr()
        cache_dir = tmp_path / "cache"
        code, _out, _err = run_cli(
            capsys, "dse", str(path), "--lengths", "8,16",
            "--port-counts", "1", "--cache-dir", str(cache_dir),
        )
        assert code == 0
        assert any(cache_dir.glob("??/*.json"))

    def test_dse_jobs_output_byte_identical(self, tmp_path, capsys):
        """--jobs 4 must print exactly what a serial run prints."""
        path = tmp_path / "t.jsonl"
        run_cli(capsys, "trace", "generate", "markov",
                "--items", "16", "--accesses", "300", "-o", str(path))
        capsys.readouterr()
        runs = {}
        for jobs in ("1", "4"):
            code, out, _err = run_cli(
                capsys, "dse", str(path), "--lengths", "8,16",
                "--port-counts", "1,2", "--no-cache", "--jobs", jobs,
            )
            assert code == 0
            runs[jobs] = out.encode("utf-8")
        assert runs["1"] == runs["4"]


class TestResilienceFlags:
    """--task-timeout / --retries / --checkpoint / --resume and SIGINT."""

    def test_resume_requires_checkpoint(self, capsys):
        code, _out, err = run_cli(capsys, "experiments", "e1", "--resume")
        assert code == 1
        assert "--resume requires --checkpoint" in err

    def test_experiments_checkpoint_then_resume(self, tmp_path, capsys):
        journal = tmp_path / "exp.jsonl"
        code, first, _err = run_cli(
            capsys, "experiments", "e1", "--no-cache",
            "--checkpoint", str(journal),
        )
        assert code == 0
        assert journal.exists()
        # The resumed run restores the journaled experiment and renders
        # byte-identically without recomputing it.
        code, second, err = run_cli(
            capsys, "experiments", "e1", "--no-cache",
            "--checkpoint", str(journal), "--resume",
        )
        assert code == 0
        assert "1 completed task(s) restored" in err
        assert second == first

    def test_resume_skips_recompute(self, tmp_path, capsys, monkeypatch):
        journal = tmp_path / "exp.jsonl"
        code, first, _err = run_cli(
            capsys, "experiments", "e1", "--no-cache",
            "--checkpoint", str(journal),
        )
        assert code == 0

        def explode(_key):
            raise AssertionError("restored experiment must not recompute")

        monkeypatch.setitem(
            __import__("repro.analysis.experiments", fromlist=["EXPERIMENTS"])
            .EXPERIMENTS, "e1", explode,
        )
        code, second, _err = run_cli(
            capsys, "experiments", "e1", "--no-cache",
            "--checkpoint", str(journal), "--resume",
        )
        assert code == 0
        assert second == first

    def test_failed_experiment_reported_not_fatal(self, capsys, monkeypatch):
        from repro.analysis.experiments import EXPERIMENTS

        def explode():
            raise RuntimeError("poisoned experiment")

        monkeypatch.setitem(EXPERIMENTS, "e1", explode)
        code, out, err = run_cli(
            capsys, "experiments", "e1", "e2", "--no-cache", "--retries", "1",
        )
        # The poisoned experiment is reported; the sibling still renders.
        assert code == 1
        assert "experiment task #0 failed" in err
        assert "poisoned experiment" in err
        assert "shift" in out.lower() or out  # e2 output still printed

    def test_keyboard_interrupt_exits_130_and_flushes(
        self, tmp_path, capsys, monkeypatch
    ):
        journal = tmp_path / "exp.jsonl"

        def interrupted(*_args, **kwargs):
            checkpoint = kwargs.get("checkpoint")
            checkpoint.record("partial-key", {"v": 1})
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli.run_experiments", interrupted)
        code, _out, err = run_cli(
            capsys, "experiments", "e1", "--no-cache",
            "--checkpoint", str(journal),
        )
        assert code == 130
        assert "interrupted" in err
        # The record landed on disk before the interrupt surfaced.
        assert "partial-key" in journal.read_text(encoding="utf-8")

    def test_dse_checkpoint_resume_byte_identical(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        run_cli(capsys, "trace", "generate", "markov",
                "--items", "12", "--accesses", "200", "-o", str(path))
        capsys.readouterr()
        journal = tmp_path / "dse.jsonl"
        code, first, _err = run_cli(
            capsys, "dse", str(path), "--lengths", "8,16", "--port-counts",
            "1", "--no-cache", "--checkpoint", str(journal),
        )
        assert code == 0
        code, second, err = run_cli(
            capsys, "dse", str(path), "--lengths", "8,16", "--port-counts",
            "1", "--no-cache", "--checkpoint", str(journal), "--resume",
        )
        assert code == 0
        assert "2 completed task(s) restored" in err
        assert second == first


class TestCacheCommand:
    def test_info_and_clear(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        trace_path = tmp_path / "t.jsonl"
        run_cli(capsys, "trace", "generate", "markov",
                "--items", "10", "--accesses", "150", "-o", str(trace_path))
        capsys.readouterr()
        run_cli(capsys, "dse", str(trace_path), "--lengths", "8",
                "--port-counts", "1", "--cache-dir", str(cache_dir))
        capsys.readouterr()
        code, out, _err = run_cli(
            capsys, "cache", "info", "--cache-dir", str(cache_dir)
        )
        assert code == 0
        assert str(cache_dir) in out
        assert "entries" in out
        code, out, _err = run_cli(
            capsys, "cache", "clear", "--cache-dir", str(cache_dir)
        )
        assert code == 0
        assert "removed 1" in out
        assert not any(cache_dir.glob("??/*.json"))

    def test_info_reports_quarantined_entries(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        shard = cache_dir / "ab"
        shard.mkdir(parents=True)
        (shard / ("ab" + "0" * 62 + ".corrupt")).write_text(
            "{torn write", encoding="utf-8"
        )
        code, out, _err = run_cli(
            capsys, "cache", "info", "--cache-dir", str(cache_dir)
        )
        assert code == 0
        assert "corrupt (quarantined)" in out
        # clear removes quarantined files too
        run_cli(capsys, "cache", "clear", "--cache-dir", str(cache_dir))
        assert not any(cache_dir.glob("??/*.corrupt"))


class TestSystemCommand:
    def test_system_study(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        run_cli(capsys, "trace", "generate", "markov",
                "--items", "30", "--accesses", "600", "-o", str(path))
        capsys.readouterr()
        code, out, _err = run_cli(
            capsys, "system", str(path), "--capacity-fraction", "0.5"
        )
        assert code == 0
        assert "all_dram" in out
        assert "spm_shift_aware" in out
        assert "speedup" in out


class TestBenchCommand:
    @pytest.fixture()
    def raw_bench(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps({
            "section": {"evals_per_sec": 100.0, "total_shifts": 500,
                        "engines_exact_match": True},
            "headline_speedup": 2.0,
        }), encoding="utf-8")
        return path

    def test_normalize_to_stdout(self, raw_bench, capsys):
        code, out, _err = run_cli(capsys, "bench", "normalize", str(raw_bench))
        assert code == 0
        payload = json.loads(out)
        assert payload["manifest"] == "repro-run-manifest"
        assert payload["run_id"] == "demo"
        assert payload["metrics"]["section.evals_per_sec"] == 100.0

    def test_normalize_to_file_with_source(self, raw_bench, tmp_path, capsys):
        out_path = tmp_path / "manifest.json"
        code, _out, err = run_cli(
            capsys, "bench", "normalize", str(raw_bench),
            "-o", str(out_path), "--source", "e42",
        )
        assert code == 0
        assert "wrote manifest" in err
        assert json.loads(out_path.read_text())["run_id"] == "e42"

    def test_normalize_rejects_manifest_input(self, raw_bench, tmp_path, capsys):
        out_path = tmp_path / "manifest.json"
        run_cli(capsys, "bench", "normalize", str(raw_bench), "-o", str(out_path))
        capsys.readouterr()
        code, _out, err = run_cli(capsys, "bench", "normalize", str(out_path))
        assert code != 0
        assert "already a run manifest" in err

    def test_compare_self_passes(self, raw_bench, capsys):
        code, out, _err = run_cli(
            capsys, "bench", "compare", str(raw_bench), str(raw_bench)
        )
        assert code == 0
        assert "PASS" in out

    @pytest.fixture()
    def regressed_bench(self, raw_bench, tmp_path):
        payload = json.loads(raw_bench.read_text())
        payload["section"]["evals_per_sec"] *= 0.8  # 20% throughput drop
        path = tmp_path / "BENCH_regressed.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_compare_detects_regression(self, raw_bench, regressed_bench, capsys):
        code, out, err = run_cli(
            capsys, "bench", "compare", str(raw_bench), str(regressed_bench)
        )
        assert code == 1
        assert "REGRESSION" in out
        assert "regression(s)" in err

    def test_compare_tolerance_flag(self, raw_bench, regressed_bench, capsys):
        code, out, _err = run_cli(
            capsys, "bench", "compare", str(raw_bench), str(regressed_bench),
            "--tolerance", "30",
        )
        assert code == 0
        assert "PASS" in out

    def test_compare_set_override(self, raw_bench, regressed_bench, capsys):
        code, _out, _err = run_cli(
            capsys, "bench", "compare", str(raw_bench), str(regressed_bench),
            "--set", "section.*=50",
        )
        assert code == 0

    def test_compare_bad_set_syntax(self, raw_bench, capsys):
        code, _out, err = run_cli(
            capsys, "bench", "compare", str(raw_bench), str(raw_bench),
            "--set", "nonsense",
        )
        assert code != 0
        assert "--set expects" in err

    def test_compare_json_output(self, raw_bench, regressed_bench, capsys):
        code, out, _err = run_cli(
            capsys, "bench", "compare", str(raw_bench), str(regressed_bench),
            "--json",
        )
        assert code == 1
        payload = json.loads(out)
        assert payload["ok"] is False
        assert "section.evals_per_sec" in payload["regressions"]


class TestObsCommand:
    def test_dump_live(self, capsys):
        code, out, _err = run_cli(capsys, "obs", "dump")
        assert code == 0
        assert "live observability snapshot" in out

    def test_dump_live_json(self, capsys):
        code, out, _err = run_cli(capsys, "obs", "dump", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["manifest"] == "repro-run-manifest"
        assert payload["kind"] == "obs-dump"

    def test_dump_manifest_file(self, tmp_path, capsys):
        from repro.obs import RunManifest, write_manifest

        manifest = RunManifest(
            kind="bench", run_id="e18", metrics={"a.b_per_sec": 1.5}
        )
        path = write_manifest(manifest, tmp_path / "m.json")
        code, out, _err = run_cli(capsys, "obs", "dump", str(path))
        assert code == 0
        assert "e18" in out
        assert "a.b_per_sec = 1.5" in out


class TestMetricsOutFlag:
    def test_experiments_writes_manifest(self, tmp_path, capsys):
        from repro.obs import read_manifest

        out_path = tmp_path / "metrics.json"
        code, _out, err = run_cli(
            capsys, "experiments", "e1", "--metrics-out", str(out_path)
        )
        assert code == 0
        assert "wrote metrics manifest" in err
        manifest = read_manifest(out_path)
        assert manifest.kind == "experiments"
        assert manifest.run_id == "e1"
        assert any(
            name.startswith("counter.optimize.runs") for name in manifest.metrics
        )


class TestTracePackAndStreaming:
    @pytest.fixture
    def text_trace(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        run_cli(capsys, "trace", "generate", "markov",
                "--items", "12", "--accesses", "400", "--seed", "4",
                "-o", str(path))
        capsys.readouterr()
        return path

    @pytest.fixture
    def packed(self, text_trace, tmp_path, capsys):
        out = tmp_path / "t.rtb"
        code, stdout, _err = run_cli(
            capsys, "trace", "pack", str(text_trace), str(out)
        )
        assert code == 0
        assert "packed 400 accesses" in stdout
        return out

    def test_pack_round_trips(self, text_trace, packed):
        from repro.trace import io as trace_io
        from repro.trace.binio import open_binary

        original = trace_io.load(text_trace)
        stream = open_binary(packed)
        assert stream.fingerprint() == original.fingerprint()
        assert len(stream) == len(original)

    def test_info_on_binary(self, packed, capsys):
        code, out, _err = run_cli(capsys, "trace", "info", str(packed))
        assert code == 0
        assert "binary trace" in out
        assert "fingerprint" in out
        assert "400" in out

    def test_place_and_simulate_streaming(self, packed, tmp_path, capsys):
        placement = tmp_path / "p.json"
        code, _out, err = run_cli(
            capsys, "place", str(packed), "-o", str(placement),
            "--words-per-dbc", "8",
        )
        assert code == 0
        assert "vs declaration" in err
        code, out, _err = run_cli(
            capsys, "simulate", str(packed), str(placement),
            "--chunk-size", "64",
        )
        assert code == 0
        assert "streaming" in out
        code, out2, _err = run_cli(
            capsys, "simulate", str(packed), str(placement),
            "--engine", "streaming", "--jobs", "1",
        )
        assert code == 0
        assert "streaming" in out2

    def test_streaming_matches_text_simulation(
        self, text_trace, packed, tmp_path, capsys
    ):
        placement = tmp_path / "p.json"
        run_cli(capsys, "place", str(text_trace), "-o", str(placement),
                "--words-per-dbc", "8")
        capsys.readouterr()
        _code, binary_out, _err = run_cli(
            capsys, "simulate", str(packed), str(placement)
        )
        _code, text_out, _err = run_cli(
            capsys, "simulate", str(text_trace), str(placement),
            "--engine", "vectorized",
        )
        pick = lambda out: next(  # noqa: E731
            line for line in out.splitlines() if line.strip().startswith("shifts ")
        ).split()[-1]
        assert pick(binary_out) == pick(text_out)

    def test_export_ilp_rejects_binary(self, packed, tmp_path, capsys):
        code, _out, err = run_cli(
            capsys, "place", str(packed),
            "--export-ilp", str(tmp_path / "m.lp"),
        )
        assert code == 1
        assert "error" in err
