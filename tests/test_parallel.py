"""Tests for the process-pool orchestration layer.

The contract under test: any ``jobs`` value produces *identical* results in
*identical order* to a serial run — parallelism is purely a wall-clock
optimisation — and pool-infrastructure failures degrade to serial instead
of erroring.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.analysis.experiments import run_experiments
from repro.analysis.parallel import (
    JOBS_ENV,
    parallel_map,
    resolve_jobs,
)
from repro.analysis.report import format_table
from repro.analysis.sweep import sweep
from repro.analysis.dse import explore
from repro.trace.synthetic import markov_trace

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def _square(value: int) -> int:
    return value * value


def _worker_jobs_env(_task) -> str | None:
    return os.environ.get(JOBS_ENV)


def _strip_runtime(records):
    """SweepRecord tuples without the (non-deterministic) runtime field."""
    return [
        (r.trace, r.method, r.words_per_dbc, r.num_ports, r.num_dbcs,
         r.total_shifts, r.num_accesses)
        for r in records
    ]


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "8")
        assert resolve_jobs(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "4")
        assert resolve_jobs(None) == 4

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_invalid_env_is_serial(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        assert resolve_jobs(None) == 1

    def test_non_positive_clamped(self, monkeypatch):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-3) == 1
        monkeypatch.setenv(JOBS_ENV, "-2")
        assert resolve_jobs(None) == 1

    def test_capped_at_cpu_count_with_warning(self, monkeypatch):
        from repro.analysis import parallel

        monkeypatch.setattr(parallel, "_cpu_count", lambda: 2)
        parallel._reset_warnings()
        with pytest.warns(RuntimeWarning, match="capping at 2"):
            assert resolve_jobs(16) == 2

    def test_env_oversubscription_capped(self, monkeypatch):
        from repro.analysis import parallel

        monkeypatch.setattr(parallel, "_cpu_count", lambda: 3)
        monkeypatch.setenv(JOBS_ENV, "12")
        parallel._reset_warnings()
        with pytest.warns(RuntimeWarning, match=JOBS_ENV):
            assert resolve_jobs(None) == 3

    def test_cap_warning_fires_once(self, monkeypatch):
        import warnings as warnings_mod

        from repro.analysis import parallel

        monkeypatch.setattr(parallel, "_cpu_count", lambda: 2)
        parallel._reset_warnings()
        with pytest.warns(RuntimeWarning):
            resolve_jobs(8)
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert resolve_jobs(8) == 2  # second call: capped, silent

    def test_within_cap_no_warning(self, monkeypatch):
        import warnings as warnings_mod

        from repro.analysis import parallel

        monkeypatch.setattr(parallel, "_cpu_count", lambda: 4)
        parallel._reset_warnings()
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert resolve_jobs(4) == 4


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_empty_tasks(self):
        assert parallel_map(_square, [], jobs=4) == []

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
    def test_parallel_preserves_order(self):
        tasks = list(range(20))
        assert parallel_map(_square, tasks, jobs=4) == [t * t for t in tasks]

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
    def test_workers_do_not_nest_pools(self):
        results = parallel_map(_worker_jobs_env, list(range(4)), jobs=2)
        assert results == ["1"] * 4

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        import concurrent.futures

        def broken_executor(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", broken_executor
        )
        assert parallel_map(_square, [2, 3], jobs=2) == [4, 9]

    def test_task_exception_propagates(self):
        def boom(task):
            raise ValueError(f"task {task}")

        with pytest.raises(ValueError, match="task"):
            parallel_map(boom, [1, 2], jobs=1)


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
class TestDeterminism:
    def test_sweep_records_identical(self):
        traces = [markov_trace(20, 1200, seed=s) for s in (0, 1)]
        serial = sweep(traces, words_per_dbc_values=(8, 16),
                       num_ports_values=(1, 2), jobs=1)
        parallel = sweep(traces, words_per_dbc_values=(8, 16),
                         num_ports_values=(1, 2), jobs=4)
        assert _strip_runtime(serial) == _strip_runtime(parallel)

    def test_rendered_output_byte_identical(self):
        """A jobs=4 run renders to exactly the same bytes as serial."""
        traces = [markov_trace(16, 800, seed=s) for s in (2, 3)]

        def render(jobs):
            records = sweep(traces, words_per_dbc_values=(8, 16), jobs=jobs)
            rows = [
                (r.trace, r.method, r.words_per_dbc, r.total_shifts)
                for r in records
            ]
            return format_table(
                ("trace", "method", "L", "shifts"), rows, title="determinism"
            ).encode("utf-8")

        assert render(1) == render(4)

    def test_dse_points_identical(self):
        trace = markov_trace(18, 900, seed=7)
        serial = explore(trace, lengths=(8, 16), ports=(1, 2), jobs=1)
        parallel = explore(trace, lengths=(8, 16), ports=(1, 2), jobs=4)
        assert serial == parallel

    def test_experiments_outputs_identical(self):
        serial = run_experiments(["e1"], jobs=1)
        parallel = run_experiments(["e1"], jobs=2)
        assert [o.rendered for o in serial] == [o.rendered for o in parallel]


class TestRunExperiments:
    def test_order_matches_request(self):
        outputs = run_experiments(["e9", "e1"], jobs=1)
        assert [o.experiment_id for o in outputs] == ["e9", "e1"]

    def test_unknown_id_rejected_before_work(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiments(["e1", "nope"], jobs=1)
