"""Unit tests for the grouping and ordering phases of the heuristic."""

import pytest

from repro.core.grouping import (
    greedy_min_affinity_grouping,
    intra_group_affinity,
    refine_grouping,
)
from repro.core.ordering import (
    anchored_offsets,
    greedy_chain_order,
    order_groups,
    proximity_offsets,
    restricted_affinity,
    restricted_sequence_cost,
    weighted_median_index,
)
from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig
from repro.errors import CapacityError, OptimizationError
from repro.trace.model import AccessTrace
from repro.trace.synthetic import pingpong_trace


class TestIntraGroupAffinity:
    def test_counts_shared_group_pairs(self):
        affinity = {("a", "b"): 3, ("b", "c"): 2, ("a", "c"): 1}
        groups = [["a", "b"], ["c"]]
        assert intra_group_affinity(groups, affinity) == 3

    def test_empty_groups_zero(self):
        assert intra_group_affinity([[], []], {("a", "b"): 1}) == 0


class TestGreedyGrouping:
    def make_problem(self, sequence, words=2, dbcs=3):
        config = DWMConfig(words_per_dbc=words, num_dbcs=dbcs, port_offsets=(0,))
        return PlacementProblem(trace=AccessTrace(sequence), config=config)

    def test_respects_capacity(self):
        problem = self.make_problem(["a", "b", "c", "d", "e", "f"], words=2)
        groups = greedy_min_affinity_grouping(problem)
        assert all(len(group) <= 2 for group in groups)
        placed = [item for group in groups for item in group]
        assert sorted(placed) == sorted(problem.items)

    def test_splits_alternating_pair(self):
        # a,b alternate heavily: keeping them apart zeroes the interference.
        problem = self.make_problem(["a", "b"] * 20 + ["c", "d"], words=2)
        groups = greedy_min_affinity_grouping(problem)
        group_of = {
            item: index for index, group in enumerate(groups) for item in group
        }
        assert group_of["a"] != group_of["b"]

    def test_too_few_groups_raises(self):
        problem = self.make_problem(["a", "b", "c"], words=1, dbcs=3)
        with pytest.raises(CapacityError):
            greedy_min_affinity_grouping(problem, num_groups=2)

    def test_invalid_num_groups_raises(self):
        problem = self.make_problem(["a", "b"])
        with pytest.raises(OptimizationError):
            greedy_min_affinity_grouping(problem, num_groups=0)


class TestRefineGrouping:
    def test_never_increases_intra_affinity(self, locality_problem):
        groups = greedy_min_affinity_grouping(locality_problem)
        before = intra_group_affinity(groups, locality_problem.affinity)
        refined = refine_grouping(groups, locality_problem)
        after = intra_group_affinity(refined, locality_problem.affinity)
        assert after <= before

    def test_preserves_items_and_capacity(self, locality_problem):
        groups = greedy_min_affinity_grouping(locality_problem)
        refined = refine_grouping(groups, locality_problem)
        capacity = locality_problem.config.words_per_dbc
        assert all(len(group) <= capacity for group in refined)
        placed = sorted(item for group in refined for item in group)
        assert placed == sorted(locality_problem.items)

    def test_fixes_bad_initial_grouping(self):
        trace = AccessTrace(["a", "b"] * 30 + ["c", "d"] * 30)
        config = DWMConfig(words_per_dbc=2, num_dbcs=2, port_offsets=(0,))
        problem = PlacementProblem(trace=trace, config=config)
        bad = [["a", "b"], ["c", "d"]]  # both hot pairs share a DBC
        refined = refine_grouping(bad, problem)
        assert intra_group_affinity(refined, problem.affinity) < (
            intra_group_affinity(bad, problem.affinity)
        )


class TestGreedyChainOrder:
    def test_heavy_edges_adjacent(self):
        affinity = {("a", "b"): 10, ("b", "c"): 8, ("a", "c"): 1}
        order = greedy_chain_order(["a", "b", "c"], affinity)
        positions = {item: i for i, item in enumerate(order)}
        assert abs(positions["a"] - positions["b"]) == 1
        assert abs(positions["b"] - positions["c"]) == 1

    def test_all_items_kept(self):
        affinity = {("a", "b"): 1}
        order = greedy_chain_order(["a", "b", "c", "d"], affinity)
        assert sorted(order) == ["a", "b", "c", "d"]

    def test_no_affinity_keeps_input_order(self):
        order = greedy_chain_order(["x", "y", "z"], {})
        assert order == ["x", "y", "z"]

    def test_cycle_avoided(self):
        # Triangle: all three edges heavy; the chain can use only two.
        affinity = {("a", "b"): 5, ("b", "c"): 5, ("a", "c"): 5}
        order = greedy_chain_order(["a", "b", "c"], affinity)
        assert len(order) == 3
        assert len(set(order)) == 3

    def test_duplicates_raise(self):
        with pytest.raises(OptimizationError):
            greedy_chain_order(["a", "a"], {})

    def test_deterministic(self):
        affinity = {("a", "b"): 2, ("c", "d"): 2, ("b", "c"): 1}
        first = greedy_chain_order(["a", "b", "c", "d"], affinity)
        second = greedy_chain_order(["a", "b", "c", "d"], affinity)
        assert first == second


class TestWeightedMedian:
    def test_uniform_weights_pick_middle(self):
        assert weighted_median_index(["a", "b", "c"], {"a": 1, "b": 1, "c": 1}) == 1

    def test_heavy_head(self):
        assert weighted_median_index(["a", "b", "c"], {"a": 10, "b": 1, "c": 1}) == 0

    def test_heavy_tail(self):
        assert weighted_median_index(["a", "b", "c"], {"a": 1, "b": 1, "c": 10}) == 2

    def test_no_weights_middle(self):
        assert weighted_median_index(["a", "b", "c", "d"], {}) == 2


class TestAnchoredOffsets:
    def test_median_lands_on_port(self):
        config = DWMConfig(words_per_dbc=8, num_dbcs=1)  # port at 4
        offsets = anchored_offsets(["a", "b", "c"], config, {"a": 1, "b": 1, "c": 1})
        assert offsets["b"] == 4
        assert offsets["a"] == 3
        assert offsets["c"] == 5

    def test_clamped_to_capacity(self):
        config = DWMConfig(words_per_dbc=4, num_dbcs=1, port_offsets=(3,))
        offsets = anchored_offsets(["a", "b", "c"], config, {})
        assert min(offsets.values()) >= 0
        assert max(offsets.values()) <= 3

    def test_group_too_large_raises(self):
        config = DWMConfig(words_per_dbc=2, num_dbcs=1)
        with pytest.raises(OptimizationError):
            anchored_offsets(["a", "b", "c"], config, {})

    def test_contiguous(self):
        config = DWMConfig(words_per_dbc=16, num_dbcs=1)
        offsets = anchored_offsets(list("abcde"), config, {})
        values = sorted(offsets.values())
        assert values == list(range(values[0], values[0] + 5))


class TestProximityOffsets:
    def test_hottest_at_port(self):
        config = DWMConfig(words_per_dbc=8, num_dbcs=1)  # port at 4
        offsets = proximity_offsets(["a", "b"], config, {"a": 1, "b": 9})
        assert offsets["b"] == 4

    def test_all_offsets_distinct(self):
        config = DWMConfig(words_per_dbc=8, num_dbcs=1)
        offsets = proximity_offsets(list("abcdefgh"), config, {})
        assert len(set(offsets.values())) == 8


class TestRestrictedAffinity:
    def test_restriction_creates_second_order_pairs(self):
        trace = AccessTrace(["a", "x", "b", "x", "a"])
        affinity = restricted_affinity(trace, ["a", "b"])
        # Restricted sequence is a b a: pairs (a,b) twice.
        assert affinity == {("a", "b"): 2}


class TestRestrictedSequenceCost:
    def test_matches_full_evaluator_single_group(self):
        from repro.core.cost import evaluate_placement
        from repro.core.placement import Placement

        trace = AccessTrace(["a", "b", "c", "a", "b"])
        config = DWMConfig(words_per_dbc=8, num_dbcs=1, port_offsets=(0,))
        problem = PlacementProblem(trace=trace, config=config)
        offsets = {"a": 0, "b": 3, "c": 5}
        placement = Placement({item: (0, o) for item, o in offsets.items()})
        assert restricted_sequence_cost(trace, offsets, config) == (
            evaluate_placement(problem, placement)
        )

    def test_skips_foreign_items(self):
        config = DWMConfig(words_per_dbc=8, num_dbcs=1, port_offsets=(0,))
        trace = AccessTrace(["a", "zzz", "a"])
        assert restricted_sequence_cost(trace, {"a": 2}, config) == 2


class TestOrderGroups:
    def test_pingpong_groups_get_zero_cost(self):
        trace = pingpong_trace(num_pairs=2, rounds=10)
        config = DWMConfig(words_per_dbc=4, num_dbcs=4, port_offsets=(0,))
        problem = PlacementProblem(trace=trace, config=config)
        # Put each item alone on a DBC: every access after the first is free.
        groups = [[item] for item in problem.items]
        placement = order_groups(problem, groups)
        from repro.core.cost import evaluate_placement

        assert evaluate_placement(problem, placement) == 0

    def test_empty_groups_skipped(self, locality_problem):
        items = list(locality_problem.items)
        groups = [items[:8], [], items[8:]]
        config = locality_problem.config.resized(num_dbcs=3)
        problem = locality_problem.with_config(config)
        placement = order_groups(problem, groups)
        assert placement.dbcs_used() == [0, 2]

    def test_too_many_groups_raises(self, locality_problem):
        groups = [[item] for item in locality_problem.items]
        too_many = groups + [["ghost"]] * locality_problem.config.num_dbcs
        with pytest.raises(OptimizationError):
            order_groups(locality_problem, too_many)

    def test_picks_best_ordering_candidate(self):
        # Star pattern: one hot hub, many satellites -> proximity wins and
        # order_groups must not do worse than the explicit star layout.
        sequence = []
        for satellite in "bcdefg":
            sequence.extend(["hub", satellite] * 4)
        trace = AccessTrace(sequence)
        config = DWMConfig(words_per_dbc=8, num_dbcs=1)
        problem = PlacementProblem(trace=trace, config=config)
        placement = order_groups(problem, [list(problem.items)])
        from repro.core.cost import evaluate_placement

        frequencies = dict(trace.frequencies())
        star = proximity_offsets(list(problem.items), config, frequencies)
        star_cost = restricted_sequence_cost(trace, star, config)
        assert evaluate_placement(problem, placement) <= star_cost
