"""Tests for the fault-tolerant runner (repro.analysis.parallel.resilient_map)."""

from __future__ import annotations

import os
import time
import warnings

import pytest

from repro.analysis.parallel import (
    MP_START_ENV,
    TaskFailure,
    _reset_warnings,
    parallel_map,
    resilient_map,
    resolve_jobs,
)


# ---------------------------------------------------------------------------
# Worker bodies — top-level so every start method (fork/spawn) can pickle them.
# ---------------------------------------------------------------------------

def _double(value: int) -> int:
    return value * 2


def _raise_always(value):
    raise ValueError(f"poisoned task {value}")


def _hang(value):
    time.sleep(60)
    return value


def _crash(value):
    os._exit(3)


def _flaky_once(task):
    """Fails the first attempt, succeeds after; marker file carries state
    across worker processes (a retried attempt runs in a fresh process)."""
    marker, value = task
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        raise RuntimeError("first attempt fails")
    return value * 10


def _mixed(task):
    """Dispatch on the task's tag: exercise every failure kind in one map."""
    kind, value = task
    if kind == "ok":
        return value
    if kind == "raise":
        raise ValueError("bad cell")
    if kind == "hang":
        time.sleep(60)
    if kind == "crash":
        os._exit(7)
    return None


class TestSerialRetries:
    """timeout=None, jobs=1 runs inline; retries still honoured."""

    def test_plain_success(self):
        assert resilient_map(_double, [1, 2, 3]) == [2, 4, 6]

    def test_empty(self):
        assert resilient_map(_double, []) == []

    def test_failure_recorded_not_raised(self):
        results = resilient_map(_double, [1], jobs=1)
        assert results == [2]
        results = resilient_map(_raise_always, [5], jobs=1, retries=1)
        (failure,) = results
        assert isinstance(failure, TaskFailure)
        assert failure.index == 0
        assert failure.attempts == 2
        assert failure.kind == "error"
        assert "poisoned task 5" in failure.error

    def test_retry_succeeds_inline(self, tmp_path):
        marker = str(tmp_path / "attempted")
        results = resilient_map(
            _flaky_once, [(marker, 4)], jobs=1, retries=1, backoff_seconds=0.0
        )
        assert results == [40]

    def test_on_result_fires_only_on_success(self, tmp_path):
        seen = []
        results = resilient_map(
            _mixed,
            [("ok", 1), ("raise", 2), ("ok", 3)],
            jobs=1,
            on_result=lambda index, value: seen.append((index, value)),
        )
        assert results[0] == 1
        assert isinstance(results[1], TaskFailure)
        assert results[2] == 3
        assert seen == [(0, 1), (2, 3)]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            resilient_map(_double, [1], retries=-1)
        with pytest.raises(ValueError):
            resilient_map(_double, [1], timeout=0.0)


class TestProcessIsolation:
    """Any timeout forces per-task worker processes (killable hangs)."""

    def test_timeout_kills_hung_task_without_harming_siblings(self):
        start = time.monotonic()
        # Generous timeout: it must cover worker *startup* too (a spawned
        # interpreter imports the package), while staying far below the 60s
        # hang it exists to kill.
        results = resilient_map(
            _mixed,
            [("ok", 10), ("hang", 0), ("ok", 11)],
            jobs=3,
            timeout=3.0,
            retries=0,
        )
        elapsed = time.monotonic() - start
        assert results[0] == 10
        assert results[2] == 11
        failure = results[1]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "timeout"
        assert failure.attempts == 1
        assert elapsed < 30  # the 60s sleep was terminated, not awaited

    def test_crashed_worker_is_a_recorded_failure(self):
        results = resilient_map(
            _mixed, [("crash", 0), ("ok", 1)], jobs=2, timeout=10.0
        )
        failure = results[0]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "crash"
        assert results[1] == 1

    def test_every_failure_kind_in_one_map(self):
        results = resilient_map(
            _mixed,
            [("ok", 1), ("raise", 2), ("hang", 3), ("crash", 4), ("ok", 5)],
            jobs=3,
            timeout=3.0,
            retries=1,
            backoff_seconds=0.01,
        )
        assert results[0] == 1
        assert results[4] == 5
        kinds = {index: results[index].kind for index in (1, 2, 3)}
        assert kinds == {1: "error", 2: "timeout", 3: "crash"}
        for index in (1, 2, 3):
            assert results[index].attempts == 2
            assert results[index].index == index

    def test_retry_after_timeout_succeeds(self, tmp_path):
        """First attempt dies (no marker yet -> raise), retry completes."""
        marker = str(tmp_path / "flaky-marker")
        results = resilient_map(
            _flaky_once,
            [(marker, 6)],
            jobs=1,
            timeout=10.0,
            retries=2,
            backoff_seconds=0.01,
        )
        assert results == [60]

    def test_results_in_task_order(self):
        tasks = [("ok", value) for value in range(12)]
        assert resilient_map(_mixed, tasks, jobs=4, timeout=30.0) == list(
            range(12)
        )


class TestSpawnStartMethod:
    """The retry path must survive the spawn start method (fresh workers)."""

    def test_retry_under_spawn(self, tmp_path, monkeypatch):
        monkeypatch.setenv(MP_START_ENV, "spawn")
        marker = str(tmp_path / "spawn-marker")
        results = resilient_map(
            _flaky_once,
            [(marker, 3), (marker, 3)],
            jobs=2,
            timeout=60.0,
            retries=2,
            backoff_seconds=0.01,
        )
        assert results == [30, 30]

    def test_failure_isolation_under_spawn(self, monkeypatch):
        monkeypatch.setenv(MP_START_ENV, "spawn")
        results = resilient_map(
            _mixed, [("raise", 0), ("ok", 9)], jobs=2, timeout=60.0
        )
        assert isinstance(results[0], TaskFailure)
        assert results[0].kind == "error"
        assert results[1] == 9


class TestLoudDegradation:
    """Serial fallbacks and garbage env vars warn instead of hiding."""

    def test_garbage_jobs_env_warns_once(self, monkeypatch):
        _reset_warnings()
        monkeypatch.setenv("REPRO_JOBS", "banana")
        with pytest.warns(RuntimeWarning, match="non-numeric"):
            assert resolve_jobs() == 1
        # Second resolution is silent (one-time warning).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_jobs() == 1
        _reset_warnings()

    def test_pool_fallback_warns_with_cause(self):
        _reset_warnings()
        # A lambda cannot be pickled into pool workers: the pool path fails
        # and parallel_map must fall back serially -- loudly.
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            results = parallel_map(lambda v: v + 1, [1, 2, 3], jobs=2)
        assert results == [2, 3, 4]
        _reset_warnings()
