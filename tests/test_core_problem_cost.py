"""Unit tests for repro.core.problem and repro.core.cost."""

import pytest

from repro.core.cost import (
    evaluate_placement,
    linear_arrangement_cost,
    per_dbc_costs,
    single_dbc_lower_bound,
)
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem, PlacementResult
from repro.dwm.config import DWMConfig, PortPolicy
from repro.errors import CapacityError, PlacementError, TraceError
from repro.trace.model import AccessTrace


class TestPlacementProblem:
    def test_empty_trace_raises(self, small_config):
        with pytest.raises(TraceError):
            PlacementProblem(trace=AccessTrace([]), config=small_config)

    def test_over_capacity_raises(self):
        config = DWMConfig(words_per_dbc=2, num_dbcs=1)
        trace = AccessTrace(["a", "b", "c"])
        with pytest.raises(CapacityError):
            PlacementProblem(trace=trace, config=config)

    def test_items_first_touch(self, tiny_trace, small_config):
        problem = PlacementProblem(trace=tiny_trace, config=small_config)
        assert problem.items == ("a", "b", "c")
        assert problem.num_items == 3

    def test_affinity_cached(self, tiny_trace, small_config):
        problem = PlacementProblem(trace=tiny_trace, config=small_config)
        assert problem.affinity is problem.affinity

    def test_hot_order(self, small_config):
        trace = AccessTrace(["a", "b", "b"])
        problem = PlacementProblem(trace=trace, config=small_config)
        assert problem.hot_order == ("b", "a")

    def test_index_sequence(self, tiny_trace, small_config):
        problem = PlacementProblem(trace=tiny_trace, config=small_config)
        assert problem.index_sequence == (0, 1, 0, 2, 1)

    def test_min_dbcs_needed(self):
        config = DWMConfig(words_per_dbc=2, num_dbcs=4)
        trace = AccessTrace(["a", "b", "c"])
        problem = PlacementProblem(trace=trace, config=config)
        assert problem.min_dbcs_needed == 2

    def test_with_config(self, tiny_trace, small_config, single_dbc_config):
        problem = PlacementProblem(trace=tiny_trace, config=small_config)
        moved = problem.with_config(single_dbc_config)
        assert moved.trace is tiny_trace
        assert moved.config is single_dbc_config


class TestEvaluatePlacementLazySinglePort:
    def make_problem(self, sequence, words=8, dbcs=2, ports=(0,)):
        config = DWMConfig(words_per_dbc=words, num_dbcs=dbcs, port_offsets=ports)
        return PlacementProblem(trace=AccessTrace(sequence), config=config)

    def test_hand_computed_single_dbc(self):
        # Port at 0.  a@0, b@3: trace a b a -> 0 + 3 + 3 = 6.
        problem = self.make_problem(["a", "b", "a"])
        placement = Placement({"a": (0, 0), "b": (0, 3)})
        assert evaluate_placement(problem, placement) == 6

    def test_first_access_pays_port_approach(self):
        problem = self.make_problem(["a"])
        placement = Placement({"a": (0, 5)})
        assert evaluate_placement(problem, placement) == 5

    def test_cross_dbc_transitions_free(self):
        # a and b on different DBCs at their ports: all accesses free.
        problem = self.make_problem(["a", "b", "a", "b"])
        placement = Placement({"a": (0, 0), "b": (1, 0)})
        assert evaluate_placement(problem, placement) == 0

    def test_same_dbc_alternation_costs(self):
        problem = self.make_problem(["a", "b", "a", "b"])
        placement = Placement({"a": (0, 0), "b": (0, 1)})
        # 0 (a) + 1 + 1 + 1 = 3
        assert evaluate_placement(problem, placement) == 3

    def test_missing_item_raises_with_validate(self):
        problem = self.make_problem(["a", "b"])
        placement = Placement({"a": (0, 0)})
        with pytest.raises(PlacementError):
            evaluate_placement(problem, placement, validate=True)


class TestEvaluatePlacementMultiPort:
    def test_uses_cheapest_port(self):
        config = DWMConfig(words_per_dbc=16, num_dbcs=1, port_offsets=(0, 15))
        problem = PlacementProblem(
            trace=AccessTrace(["a", "b"]), config=config
        )
        placement = Placement({"a": (0, 0), "b": (0, 15)})
        # a via port 0 costs 0; b via port 15 costs 0 (head state unchanged).
        assert evaluate_placement(problem, placement) == 0

    def test_head_shared_between_ports(self):
        config = DWMConfig(words_per_dbc=16, num_dbcs=1, port_offsets=(0, 15))
        problem = PlacementProblem(
            trace=AccessTrace(["a", "b", "a"]), config=config
        )
        placement = Placement({"a": (0, 2), "b": (0, 13)})
        # a: min(|2-0|, |2-15 - 0|) = 2, head=2.
        # b: targets 13 (port 0) or -2 (port 15): |13-2|=11 vs |-2-2|=4 -> 4, head=-2.
        # a: targets 2 or -13: |2-(-2)|=4 vs |-13+2|=11 -> 4.
        assert evaluate_placement(problem, placement) == 10


class TestEvaluatePlacementEager:
    def test_eager_cost_is_round_trip(self):
        config = DWMConfig(
            words_per_dbc=8, num_dbcs=1, port_offsets=(0,),
            port_policy=PortPolicy.EAGER,
        )
        problem = PlacementProblem(
            trace=AccessTrace(["a", "a"]), config=config
        )
        placement = Placement({"a": (0, 3)})
        # Each access: 3 out + 3 back.
        assert evaluate_placement(problem, placement) == 12

    def test_eager_multiport(self):
        config = DWMConfig(
            words_per_dbc=16, num_dbcs=1, port_offsets=(0, 15),
            port_policy=PortPolicy.EAGER,
        )
        problem = PlacementProblem(trace=AccessTrace(["a"]), config=config)
        placement = Placement({"a": (0, 14)})
        assert evaluate_placement(problem, placement) == 2  # 1 out, 1 back


class TestPerDbcCosts:
    def test_sums_to_total(self, locality_problem):
        from repro.core.baselines import declaration_order_placement

        placement = declaration_order_placement(locality_problem)
        costs = per_dbc_costs(locality_problem, placement)
        assert sum(costs.values()) == evaluate_placement(
            locality_problem, placement
        )

    def test_attribution(self):
        config = DWMConfig(words_per_dbc=8, num_dbcs=2, port_offsets=(0,))
        problem = PlacementProblem(
            trace=AccessTrace(["a", "b"]), config=config
        )
        placement = Placement({"a": (0, 2), "b": (1, 5)})
        costs = per_dbc_costs(problem, placement)
        assert costs == {0: 2, 1: 5}


class TestLinearArrangementCost:
    def test_hand_computed(self):
        affinity = {("a", "b"): 3, ("b", "c"): 1}
        assert linear_arrangement_cost(["a", "b", "c"], affinity) == 3 * 1 + 1 * 1
        assert linear_arrangement_cost(["b", "a", "c"], affinity) == 3 * 1 + 1 * 2

    def test_duplicate_order_raises(self):
        with pytest.raises(PlacementError):
            linear_arrangement_cost(["a", "a"], {})

    def test_ignores_items_outside_order(self):
        affinity = {("a", "z"): 5}
        assert linear_arrangement_cost(["a", "b"], affinity) == 0

    def test_matches_trace_cost_single_dbc_port_zero(self):
        """MinLA objective == true cost (minus initial approach) for one DBC."""
        from repro.trace.stats import affinity_graph

        sequence = ["a", "b", "c", "a", "c", "b", "a"]
        trace = AccessTrace(sequence)
        config = DWMConfig(words_per_dbc=8, num_dbcs=1, port_offsets=(0,))
        problem = PlacementProblem(trace=trace, config=config)
        order = ["b", "a", "c"]
        placement = Placement(
            {item: (0, index) for index, item in enumerate(order)}
        )
        affinity = affinity_graph(trace)
        position = {item: i for i, item in enumerate(order)}
        initial = position[sequence[0]]  # approach from port 0
        assert (
            evaluate_placement(problem, placement)
            == linear_arrangement_cost(order, affinity) + initial
        )


class TestLowerBound:
    def test_counts_internal_edges(self):
        affinity = {("a", "b"): 3, ("b", "c"): 2, ("c", "d"): 9}
        assert single_dbc_lower_bound(["a", "b", "c"], affinity) == 5

    def test_bound_is_admissible(self, locality_problem):
        from repro.core.exact import minla_optimal_cost

        items = list(locality_problem.items)[:8]
        affinity = locality_problem.affinity
        bound = single_dbc_lower_bound(items, affinity)
        assert bound <= minla_optimal_cost(items, affinity)


class TestPlacementResult:
    def test_shifts_per_access(self):
        result = PlacementResult(
            method="x",
            placement=Placement({"a": (0, 0)}),
            total_shifts=10,
            details={"num_accesses": 5},
        )
        assert result.shifts_per_access == 2.0

    def test_normalized_to(self):
        placement = Placement({"a": (0, 0)})
        ours = PlacementResult("x", placement, total_shifts=5)
        base = PlacementResult("y", placement, total_shifts=10)
        assert ours.normalized_to(base) == 0.5

    def test_normalized_to_zero_baseline(self):
        placement = Placement({"a": (0, 0)})
        zero = PlacementResult("y", placement, total_shifts=0)
        assert PlacementResult("x", placement, 0).normalized_to(zero) == 0.0
        assert PlacementResult("x", placement, 3).normalized_to(zero) == float("inf")
