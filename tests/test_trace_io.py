"""Unit tests for repro.trace.io (JSONL and compact text formats)."""

import pytest

from repro.errors import TraceError
from repro.trace import io as trace_io
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace


class TestJSONLRoundtrip:
    def test_roundtrip_preserves_accesses(self, tmp_path, tiny_trace):
        path = tmp_path / "t.jsonl"
        trace_io.save_jsonl(tiny_trace, path)
        loaded = trace_io.load_jsonl(path)
        assert loaded == tiny_trace

    def test_roundtrip_preserves_name_and_metadata(self, tmp_path):
        trace = AccessTrace(["a"], name="named", metadata={"seed": 3})
        path = tmp_path / "t.jsonl"
        trace_io.save_jsonl(trace, path)
        loaded = trace_io.load_jsonl(path)
        assert loaded.name == "named"
        assert loaded.metadata["seed"] == 3

    def test_non_json_metadata_dropped(self, tmp_path):
        trace = AccessTrace(["a"], metadata={"fn": len, "ok": 1})
        path = tmp_path / "t.jsonl"
        trace_io.save_jsonl(trace, path)
        loaded = trace_io.load_jsonl(path)
        assert "fn" not in loaded.metadata
        assert loaded.metadata["ok"] == 1

    def test_large_trace_roundtrip(self, tmp_path):
        trace = markov_trace(20, 500, seed=9)
        path = tmp_path / "big.jsonl"
        trace_io.save_jsonl(trace, path)
        assert trace_io.load_jsonl(path) == trace

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="empty"):
            trace_io.load_jsonl(path)

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "other"}\n')
        with pytest.raises(TraceError, match="not a repro trace"):
            trace_io.load_jsonl(path)

    def test_bad_header_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not-json\n")
        with pytest.raises(TraceError, match="invalid JSONL header"):
            trace_io.load_jsonl(path)

    def test_count_mismatch_raises(self, tmp_path, tiny_trace):
        path = tmp_path / "t.jsonl"
        trace_io.save_jsonl(tiny_trace, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop one access
        with pytest.raises(TraceError, match="declares"):
            trace_io.load_jsonl(path)

    def test_malformed_record_raises(self, tmp_path, tiny_trace):
        path = tmp_path / "t.jsonl"
        trace_io.save_jsonl(tiny_trace, path)
        lines = path.read_text().splitlines()
        lines[2] = '{"bogus": true}'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="malformed"):
            trace_io.load_jsonl(path)

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "v9.jsonl"
        path.write_text('{"format": "repro-trace", "version": 99}\n')
        with pytest.raises(TraceError, match="version"):
            trace_io.load_jsonl(path)


class TestTextRoundtrip:
    def test_roundtrip(self, tmp_path, tiny_trace):
        path = tmp_path / "t.trc"
        trace_io.save_text(tiny_trace, path)
        loaded = trace_io.load_text(path)
        assert loaded == tiny_trace
        assert loaded.name == "tiny"

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "c.trc"
        path.write_text("# a comment\nR x\n\nW y\n")
        loaded = trace_io.load_text(path)
        assert loaded.item_sequence == ("x", "y")
        assert loaded[1].is_write

    def test_whitespace_item_rejected_on_save(self, tmp_path):
        trace = AccessTrace(["has space"])
        with pytest.raises(TraceError, match="whitespace"):
            trace_io.save_text(trace, tmp_path / "t.trc")

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.trc"
        path.write_text("JUSTONETOKEN\n")
        with pytest.raises(TraceError, match="expected"):
            trace_io.load_text(path)

    def test_bad_kind_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.trc"
        path.write_text("R ok\nQ item\n")
        with pytest.raises(TraceError, match=":2"):
            trace_io.load_text(path)


class TestDispatch:
    def test_save_load_by_extension_jsonl(self, tmp_path, tiny_trace):
        path = tmp_path / "x.jsonl"
        trace_io.save(tiny_trace, path)
        assert trace_io.load(path) == tiny_trace

    def test_save_load_by_extension_trc(self, tmp_path, tiny_trace):
        path = tmp_path / "x.trc"
        trace_io.save(tiny_trace, path)
        assert trace_io.load(path) == tiny_trace

    def test_unknown_extension_raises(self, tmp_path, tiny_trace):
        with pytest.raises(TraceError, match="extension"):
            trace_io.save(tiny_trace, tmp_path / "x.csv")
        with pytest.raises(TraceError, match="extension"):
            trace_io.load(tmp_path / "x.csv")
