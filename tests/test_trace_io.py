"""Unit tests for repro.trace.io (JSONL and compact text formats)."""

import warnings

import pytest

from repro.errors import TraceError
from repro.trace import io as trace_io
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace


class TestJSONLRoundtrip:
    def test_roundtrip_preserves_accesses(self, tmp_path, tiny_trace):
        path = tmp_path / "t.jsonl"
        trace_io.save_jsonl(tiny_trace, path)
        loaded = trace_io.load_jsonl(path)
        assert loaded == tiny_trace

    def test_roundtrip_preserves_name_and_metadata(self, tmp_path):
        trace = AccessTrace(["a"], name="named", metadata={"seed": 3})
        path = tmp_path / "t.jsonl"
        trace_io.save_jsonl(trace, path)
        loaded = trace_io.load_jsonl(path)
        assert loaded.name == "named"
        assert loaded.metadata["seed"] == 3

    def test_non_json_metadata_dropped(self, tmp_path):
        trace = AccessTrace(["a"], metadata={"fn": len, "ok": 1})
        path = tmp_path / "t.jsonl"
        trace_io.save_jsonl(trace, path)
        loaded = trace_io.load_jsonl(path)
        assert "fn" not in loaded.metadata
        assert loaded.metadata["ok"] == 1

    def test_large_trace_roundtrip(self, tmp_path):
        trace = markov_trace(20, 500, seed=9)
        path = tmp_path / "big.jsonl"
        trace_io.save_jsonl(trace, path)
        assert trace_io.load_jsonl(path) == trace

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="empty"):
            trace_io.load_jsonl(path)

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "other"}\n')
        with pytest.raises(TraceError, match="not a repro trace"):
            trace_io.load_jsonl(path)

    def test_bad_header_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not-json\n")
        with pytest.raises(TraceError, match="invalid JSONL header"):
            trace_io.load_jsonl(path)

    def test_count_mismatch_raises(self, tmp_path, tiny_trace):
        path = tmp_path / "t.jsonl"
        trace_io.save_jsonl(tiny_trace, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop one access
        with pytest.raises(TraceError, match="declares"):
            trace_io.load_jsonl(path)

    def test_malformed_record_raises(self, tmp_path, tiny_trace):
        path = tmp_path / "t.jsonl"
        trace_io.save_jsonl(tiny_trace, path)
        lines = path.read_text().splitlines()
        lines[2] = '{"bogus": true}'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="malformed"):
            trace_io.load_jsonl(path)

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "v9.jsonl"
        path.write_text('{"format": "repro-trace", "version": 99}\n')
        with pytest.raises(TraceError, match="version"):
            trace_io.load_jsonl(path)


class TestTextRoundtrip:
    def test_roundtrip(self, tmp_path, tiny_trace):
        path = tmp_path / "t.trc"
        trace_io.save_text(tiny_trace, path)
        loaded = trace_io.load_text(path)
        assert loaded == tiny_trace
        assert loaded.name == "tiny"

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "c.trc"
        path.write_text("# a comment\nR x\n\nW y\n")
        loaded = trace_io.load_text(path)
        assert loaded.item_sequence == ("x", "y")
        assert loaded[1].is_write

    def test_whitespace_item_rejected_on_save(self, tmp_path):
        trace = AccessTrace(["has space"])
        with pytest.raises(TraceError, match="whitespace"):
            trace_io.save_text(trace, tmp_path / "t.trc")

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.trc"
        path.write_text("JUSTONETOKEN\n")
        with pytest.raises(TraceError, match="expected"):
            trace_io.load_text(path)

    def test_bad_kind_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.trc"
        path.write_text("R ok\nQ item\n")
        with pytest.raises(TraceError, match=":2"):
            trace_io.load_text(path)


class TestDispatch:
    def test_save_load_by_extension_jsonl(self, tmp_path, tiny_trace):
        path = tmp_path / "x.jsonl"
        trace_io.save(tiny_trace, path)
        assert trace_io.load(path) == tiny_trace

    def test_save_load_by_extension_trc(self, tmp_path, tiny_trace):
        path = tmp_path / "x.trc"
        trace_io.save(tiny_trace, path)
        assert trace_io.load(path) == tiny_trace

    def test_unknown_extension_raises(self, tmp_path, tiny_trace):
        with pytest.raises(TraceError, match="extension"):
            trace_io.save(tiny_trace, tmp_path / "x.csv")
        with pytest.raises(TraceError, match="extension"):
            trace_io.load(tmp_path / "x.csv")


class TestStreamingReaders:
    """Line-by-line iterators that never materialise the trace."""

    def _pairs(self, trace):
        return [(a.item, a.kind.value) for a in trace]

    def test_iter_jsonl_matches_load(self, tmp_path):
        trace = markov_trace(10, 300, seed=4)
        path = tmp_path / "s.jsonl"
        trace_io.save_jsonl(trace, path)
        assert list(trace_io.iter_jsonl(path)) == self._pairs(trace)

    def test_iter_text_matches_load(self, tmp_path):
        trace = markov_trace(10, 300, seed=4)
        path = tmp_path / "s.trc"
        trace_io.save_text(trace, path)
        assert list(trace_io.iter_text(path)) == self._pairs(trace)

    def test_iter_jsonl_count_cross_check(self, tmp_path, tiny_trace):
        path = tmp_path / "short.jsonl"
        trace_io.save_jsonl(tiny_trace, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop one access
        with pytest.raises(TraceError, match="declares"):
            list(trace_io.iter_jsonl(path))

    def test_iter_jsonl_malformed_record(self, tmp_path, tiny_trace):
        path = tmp_path / "bad.jsonl"
        trace_io.save_jsonl(tiny_trace, path)
        lines = path.read_text().splitlines()
        lines[1] = '{"no-item-key": 1}'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match=":2.*malformed"):
            list(trace_io.iter_jsonl(path))

    def test_iter_text_malformed_line(self, tmp_path):
        path = tmp_path / "bad.trc"
        path.write_text("R ok\nNOPE\n")
        with pytest.raises(TraceError, match=":2"):
            list(trace_io.iter_text(path))

    def test_iter_accesses_dispatches(self, tmp_path, tiny_trace):
        jl = tmp_path / "d.jsonl"
        tr = tmp_path / "d.trc"
        trace_io.save_jsonl(tiny_trace, jl)
        trace_io.save_text(tiny_trace, tr)
        expected = self._pairs(tiny_trace)
        assert list(trace_io.iter_accesses(jl)) == expected
        assert list(trace_io.iter_accesses(tr)) == expected
        with pytest.raises(TraceError, match="extension"):
            trace_io.iter_accesses(tmp_path / "d.csv")

    def test_peek_header_jsonl(self, tmp_path):
        trace = AccessTrace(["a"], name="peeked", metadata={"seed": 7})
        path = tmp_path / "p.jsonl"
        trace_io.save_jsonl(trace, path)
        header = trace_io.peek_header(path)
        assert header["name"] == "peeked"
        assert header["metadata"] == {"seed": 7}

    def test_peek_header_trc(self, tmp_path):
        path = tmp_path / "p.trc"
        path.write_text("# trace: from-comment\n# accesses: 1\nR x\n")
        assert trace_io.peek_header(path)["name"] == "from-comment"
        bare = tmp_path / "bare.trc"
        bare.write_text("R x\n")
        assert trace_io.peek_header(bare)["name"] == "bare"


class TestLargeTraceWarning:
    @pytest.fixture
    def low_threshold(self, monkeypatch):
        monkeypatch.setattr(trace_io, "LARGE_TEXT_TRACE_ACCESSES", 5)
        monkeypatch.setattr(trace_io, "_large_trace_warned", False)

    def test_warns_once_and_points_at_pack(self, tmp_path, low_threshold):
        trace = markov_trace(4, 20, seed=1)
        path = tmp_path / "big.jsonl"
        trace_io.save_jsonl(trace, path)
        with pytest.warns(UserWarning, match="repro trace pack"):
            trace_io.load_jsonl(path)
        # Second load in the same process stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            trace_io.load_jsonl(path)

    def test_text_loader_warns_too(self, tmp_path, low_threshold):
        trace = markov_trace(4, 20, seed=1)
        path = tmp_path / "big.trc"
        trace_io.save_text(trace, path)
        with pytest.warns(UserWarning, match="streaming"):
            trace_io.load_text(path)

    def test_small_trace_stays_silent(self, tmp_path, low_threshold):
        trace = markov_trace(2, 3, seed=1)
        path = tmp_path / "small.jsonl"
        trace_io.save_jsonl(trace, path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            trace_io.load_jsonl(path)
