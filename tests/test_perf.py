"""Unit tests for the repro.perf timing utilities."""

import pytest

from repro.errors import OptimizationError
from repro.perf import Stopwatch, ThroughputResult, measure_throughput, speedup


class TestMeasureThroughput:
    def test_counts_operations(self):
        calls = []
        result = measure_throughput(
            lambda: calls.append(1), min_seconds=0.0, min_operations=5
        )
        assert result.operations == len(calls) >= 5
        assert result.seconds >= 0.0
        assert result.ops_per_second > 0

    def test_max_operations_cap(self):
        result = measure_throughput(
            lambda: None, min_seconds=10.0, min_operations=1, max_operations=4
        )
        assert result.operations == 4

    def test_invalid_arguments(self):
        with pytest.raises(OptimizationError):
            measure_throughput(lambda: None, min_seconds=-1.0)
        with pytest.raises(OptimizationError):
            measure_throughput(lambda: None, min_operations=0)
        with pytest.raises(OptimizationError):
            measure_throughput(
                lambda: None, min_operations=5, max_operations=2
            )

    def test_rendering(self):
        result = ThroughputResult(operations=100, seconds=0.5)
        assert "100 ops" in str(result)
        assert result.ops_per_second == pytest.approx(200.0)
        assert result.seconds_per_op == pytest.approx(0.005)


class TestZeroDurationClamp:
    def test_zero_duration_rate_is_finite(self):
        """A timer too coarse to see any elapsed time must not yield inf."""
        import json
        import math

        result = ThroughputResult(operations=100, seconds=0.0)
        rate = result.ops_per_second
        assert math.isfinite(rate)
        assert rate > 0
        # The clamped rate must survive JSON round-trips (bench manifests).
        assert json.loads(json.dumps(rate, allow_nan=False)) == rate

    def test_zero_operations_rate_is_zero(self):
        result = ThroughputResult(operations=0, seconds=0.0)
        assert result.ops_per_second == 0.0

    def test_clamp_does_not_distort_normal_measurements(self):
        result = ThroughputResult(operations=10, seconds=2.0)
        assert result.ops_per_second == pytest.approx(5.0)


class TestSpeedup:
    def test_ratio(self):
        fast = ThroughputResult(operations=1000, seconds=1.0)
        slow = ThroughputResult(operations=100, seconds=1.0)
        assert speedup(fast, slow) == pytest.approx(10.0)


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as watch:
            sum(range(1000))
        assert watch.seconds >= 0.0
