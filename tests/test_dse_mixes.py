"""Unit tests for the DSE driver and workload mixes."""

import pytest

from repro.analysis.dse import (
    DesignPoint,
    area_per_bit,
    dominates,
    explore,
    knee_point,
    pareto_front,
    render_front,
)
from repro.core.api import optimize_placement
from repro.dwm.config import DWMConfig
from repro.errors import OptimizationError, TraceError
from repro.trace.kernels import fir_trace, matmul_trace
from repro.trace.mixes import interleave, mix_suite
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace


def make_point(latency, energy, area, label_bits=(16, 1)):
    return DesignPoint(
        words_per_dbc=label_bits[0], num_ports=label_bits[1], policy="lazy",
        num_dbcs=1, total_shifts=0, latency_ns=latency, energy_pj=energy,
        area_per_bit=area,
    )


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1, 1, 1), (2, 2, 2))

    def test_equal_does_not_dominate(self):
        assert not dominates((1, 1), (1, 1))

    def test_tradeoff_does_not_dominate(self):
        assert not dominates((1, 3), (2, 2))
        assert not dominates((2, 2), (1, 3))

    def test_length_mismatch_raises(self):
        with pytest.raises(OptimizationError):
            dominates((1,), (1, 2))


class TestParetoFront:
    def test_filters_dominated(self):
        a = make_point(1, 1, 3)
        b = make_point(2, 2, 2)
        c = make_point(3, 3, 3)  # dominated by b (and by a in 2 of 3 dims)
        front = pareto_front([a, b, c])
        assert a in front and b in front
        assert c not in front

    def test_all_efficient_kept(self):
        points = [make_point(1, 3, 2), make_point(2, 2, 2), make_point(3, 1, 2)]
        assert len(pareto_front(points)) == 3

    def test_knee_point_balanced(self):
        corner_a = make_point(0, 10, 5)
        corner_b = make_point(10, 0, 5)
        middle = make_point(3, 3, 5)
        assert knee_point([corner_a, corner_b, middle]) is middle

    def test_knee_empty_raises(self):
        with pytest.raises(OptimizationError):
            knee_point([])


class TestExplore:
    @pytest.fixture(scope="class")
    def points(self):
        trace = markov_trace(20, 400, locality=0.85, seed=91)
        return explore(trace, lengths=(8, 16), ports=(1, 2))

    def test_grid_size(self, points):
        assert len(points) == 4

    def test_area_monotone_in_ports(self, points):
        by_design = {(p.words_per_dbc, p.num_ports): p for p in points}
        assert by_design[(16, 2)].area_per_bit > by_design[(16, 1)].area_per_bit
        assert by_design[(8, 1)].area_per_bit > by_design[(16, 1)].area_per_bit

    def test_front_non_empty(self, points):
        front = pareto_front(points)
        assert 1 <= len(front) <= len(points)

    def test_render_marks_front(self, points):
        front = pareto_front(points)
        text = render_front(points, front)
        assert text.count("*") >= len(front)
        assert "design" in text

    def test_ports_exceeding_length_skipped(self):
        trace = markov_trace(6, 60, seed=1)
        points = explore(trace, lengths=(2,), ports=(1, 4))
        assert len(points) == 1

    def test_area_validation(self):
        with pytest.raises(OptimizationError):
            area_per_bit(0, 1)


class TestInterleave:
    def test_round_robin_quantum(self):
        a = AccessTrace(["a"] * 4, name="A")
        b = AccessTrace(["b"] * 4, name="B")
        mixed = interleave([a, b], quantum=2)
        assert mixed.item_sequence == (
            "t0_a", "t0_a", "t1_b", "t1_b",
            "t0_a", "t0_a", "t1_b", "t1_b",
        )

    def test_all_accesses_preserved(self):
        a = markov_trace(5, 37, seed=1)
        b = markov_trace(5, 53, seed=2)
        mixed = interleave([a, b], quantum=8)
        assert len(mixed) == 90

    def test_weights(self):
        a = AccessTrace(["a"] * 4)
        b = AccessTrace(["b"] * 2)
        mixed = interleave([a, b], quantum=1, weights=[2, 1])
        assert mixed.item_sequence[:3] == ("t0_a", "t0_a", "t1_b")

    def test_unequal_lengths_drain(self):
        a = AccessTrace(["a"] * 6)
        b = AccessTrace(["b"])
        mixed = interleave([a, b], quantum=2)
        assert len(mixed) == 7
        assert mixed.item_sequence[-1] == "t0_a"

    def test_namespacing_prevents_aliasing(self):
        a = AccessTrace(["x"])
        b = AccessTrace(["x"])
        mixed = interleave([a, b])
        assert mixed.num_items == 2

    def test_validation(self):
        with pytest.raises(TraceError):
            interleave([])
        with pytest.raises(TraceError):
            interleave([AccessTrace(["a"])], quantum=0)
        with pytest.raises(TraceError):
            interleave([AccessTrace(["a"])], weights=[1, 2])


class TestMixSuite:
    def test_mixes_generated(self):
        suite = mix_suite()
        assert set(suite) == {"fir+matmul", "fir+crc32", "fir+matmul+histogram"}

    def test_placement_still_wins_on_mixes(self):
        """Grouping recovers per-task locality the interleave destroyed."""
        for trace in mix_suite(quantum=4).values():
            config = DWMConfig.for_items(trace.num_items, words_per_dbc=16)
            heuristic = optimize_placement(trace, config, method="heuristic")
            declaration = optimize_placement(trace, config, method="declaration")
            assert heuristic.total_shifts <= declaration.total_shifts

    def test_finer_timeslices_cost_more(self):
        """Per-access interleaving costs more than coarse timeslices.

        (Interleaving across *distinct* DBC regions is otherwise benign —
        exactly what the per-DBC decomposition predicts — so the remaining
        degradation comes from the boundary DBCs tasks share, which finer
        quanta exercise more often.)
        """
        fir = fir_trace(taps=8, samples=24)
        matmul = matmul_trace(size=4)

        def decl_shifts(quantum):
            mixed = interleave([fir, matmul], quantum=quantum)
            config = DWMConfig.for_items(mixed.num_items, words_per_dbc=16)
            return optimize_placement(
                mixed, config, method="declaration"
            ).total_shifts

        assert decl_shifts(1) > decl_shifts(8)
