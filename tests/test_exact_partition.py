"""Unit tests for the set-partition exact optimum (repro.core.exact_partition)."""

import pytest

from repro.core.cost import evaluate_placement
from repro.core.exact import exhaustive_placement
from repro.core.exact_partition import exact_partitioned_placement
from repro.core.heuristic import heuristic_placement
from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig, PortPolicy
from repro.errors import OptimizationError
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace, pingpong_trace, zipf_trace


def make_problem(trace, words=4, dbcs=3, port=0):
    config = DWMConfig(
        words_per_dbc=words, num_dbcs=dbcs, port_offsets=(port,)
    )
    return PlacementProblem(trace=trace, config=config)


class TestAgainstBruteForce:
    """The partition DP must never lose to (and may beat) brute force."""

    @pytest.mark.parametrize("seed", range(4))
    def test_not_worse_than_exhaustive_markov(self, seed):
        trace = markov_trace(6, 80, locality=0.7, seed=seed)
        problem = make_problem(trace, words=3, dbcs=3)
        dp_cost = evaluate_placement(
            problem, exact_partitioned_placement(problem)
        )
        brute_cost = evaluate_placement(problem, exhaustive_placement(problem))
        # Brute force only tries canonical anchors; the DP sweeps them all.
        assert dp_cost <= brute_cost

    def test_not_worse_than_exhaustive_zipf(self):
        trace = zipf_trace(5, 60, seed=2)
        problem = make_problem(trace, words=3, dbcs=2)
        dp_cost = evaluate_placement(
            problem, exact_partitioned_placement(problem)
        )
        brute_cost = evaluate_placement(problem, exhaustive_placement(problem))
        assert dp_cost <= brute_cost


class TestOptimalityProperties:
    def test_splits_alternating_pairs_to_zero(self):
        trace = pingpong_trace(num_pairs=3, rounds=10)
        problem = make_problem(trace, words=4, dbcs=6)
        placement = exact_partitioned_placement(problem)
        assert evaluate_placement(problem, placement) == 0

    def test_never_worse_than_heuristic(self):
        for seed in range(3):
            trace = markov_trace(9, 150, locality=0.8, seed=seed)
            problem = make_problem(trace, words=4, dbcs=3)
            exact_cost = evaluate_placement(
                problem, exact_partitioned_placement(problem)
            )
            heuristic_cost = evaluate_placement(
                problem, heuristic_placement(problem)
            )
            assert exact_cost <= heuristic_cost

    def test_single_item(self):
        trace = AccessTrace(["only"] * 4)
        problem = make_problem(trace, words=4, dbcs=1)
        placement = exact_partitioned_placement(problem)
        # Optimal: anchor the item on the port (offset 0) -> zero shifts.
        assert evaluate_placement(problem, placement) == 0

    def test_respects_capacity(self):
        trace = markov_trace(8, 100, seed=5)
        problem = make_problem(trace, words=3, dbcs=3)
        placement = exact_partitioned_placement(problem)
        placement.validate(problem.config, problem.items)
        for dbc in placement.dbcs_used():
            assert len(placement.dbc_contents(dbc)) <= 3

    def test_uses_at_most_available_dbcs(self):
        trace = markov_trace(6, 80, seed=6)
        problem = make_problem(trace, words=6, dbcs=2)
        placement = exact_partitioned_placement(problem)
        assert len(placement.dbcs_used()) <= 2


class TestGuards:
    def test_too_many_items(self):
        trace = AccessTrace([f"i{k}" for k in range(13)])
        problem = make_problem(trace, words=13, dbcs=2)
        with pytest.raises(OptimizationError, match="at most"):
            exact_partitioned_placement(problem)

    def test_multi_port_rejected(self):
        trace = markov_trace(5, 50, seed=1)
        config = DWMConfig(words_per_dbc=8, num_dbcs=1, port_offsets=(0, 7))
        problem = PlacementProblem(trace=trace, config=config)
        with pytest.raises(OptimizationError, match="single-port"):
            exact_partitioned_placement(problem)

    def test_eager_rejected(self):
        trace = markov_trace(5, 50, seed=1)
        config = DWMConfig(
            words_per_dbc=8, num_dbcs=1, port_offsets=(0,),
            port_policy=PortPolicy.EAGER,
        )
        problem = PlacementProblem(trace=trace, config=config)
        with pytest.raises(OptimizationError, match="lazy"):
            exact_partitioned_placement(problem)

    def test_infeasible_capacity(self):
        trace = markov_trace(5, 40, seed=2)
        config = DWMConfig(words_per_dbc=1, num_dbcs=3, port_offsets=(0,))
        with pytest.raises(Exception):
            problem = PlacementProblem(trace=trace, config=config)
            exact_partitioned_placement(problem)


class TestFuzzerRegressions:
    """Pinned repros from the differential conformance fuzzer."""

    def test_interior_port_group_cost(self):
        # The per-group MinLA used to charge the first access of each group
        # as if the port sat at offset 0; with the port mid-tape the group
        # costs were inflated and the partition DP picked a worse split.
        import itertools

        from repro.core.placement import Placement, Slot

        trace = AccessTrace(
            ["a", "b", "a", "c", "d", "c", "a", "d", "b", "a"]
        )
        config = DWMConfig(words_per_dbc=3, num_dbcs=2, port_offsets=(1,))
        problem = PlacementProblem(trace=trace, config=config)
        cost = evaluate_placement(
            problem, exact_partitioned_placement(problem)
        )
        assert cost == 4
        slots = [
            Slot(dbc, offset)
            for dbc in range(config.num_dbcs)
            for offset in range(config.words_per_dbc)
        ]
        items = list(problem.items)
        true_optimum = min(
            evaluate_placement(
                problem, Placement(dict(zip(items, chosen)))
            )
            for chosen in itertools.permutations(slots, len(items))
        )
        assert cost == true_optimum


class TestPartitionMinimum:
    def test_picks_cheapest_cover(self):
        from repro.core.exact_partition import partition_minimum

        group_cost = {
            0b001: 5, 0b010: 7, 0b100: 1,
            0b011: 10, 0b101: 2, 0b110: 100, 0b111: 50,
        }
        cost, groups = partition_minimum(group_cost, 3, 2)
        assert cost == 9
        assert sorted(groups) == [0b010, 0b101]

    def test_group_bound_respected(self):
        from repro.core.exact_partition import partition_minimum

        # With only singleton groups allowed to be cheap, one group must
        # cover everything when max_groups == 1.
        group_cost = {
            mask: (0 if mask == 0b111 else 100)
            for mask in range(1, 8)
        }
        cost, groups = partition_minimum(group_cost, 3, 1)
        assert cost == 0
        assert groups == [0b111]

    def test_infeasible_raises(self):
        from repro.core.exact_partition import partition_minimum

        with pytest.raises(OptimizationError):
            partition_minimum({0b001: 1}, 2, 2)  # item 1 uncoverable
