"""Differential tests: incremental deltas ≡ reference evaluator, exactly.

Property-style coverage over random traces for every port policy × port
count combination: :class:`CostEvaluator` totals and swap/move/reversal
deltas, apply/undo sequences, the batch vectorised evaluator, and the
tightened instance-wide lower bound all agree with (or soundly bound) the
reference :func:`evaluate_placement`.
"""

import random

import pytest

from repro.core.api import build_problem
from repro.core.baselines import random_placement
from repro.core.cost import evaluate_placement, shift_lower_bound
from repro.core.exact import exhaustive_placement
from repro.core.fast_eval import (
    evaluate_placement_auto,
    evaluate_placement_fast,
    evaluate_placements_fast,
)
from repro.core.incremental import CostEvaluator
from repro.core.local_search import (
    simulated_annealing,
    swap_refinement,
    two_opt_refinement,
)
from repro.core.placement import Placement, Slot
from repro.dwm.config import DWMConfig
from repro.errors import PlacementError
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace, zipf_trace

GEOMETRIES = [
    (1, "lazy"),
    (1, "eager"),
    (2, "lazy"),
    (2, "eager"),
    (4, "lazy"),
    (4, "eager"),
]


def _random_problem(ports, policy, seed, num_items=24, length=400):
    trace = markov_trace(
        num_items, length, locality=0.75, seed=seed, write_fraction=0.25
    )
    config = DWMConfig.for_items(
        trace.num_items, words_per_dbc=8, num_ports=ports, port_policy=policy
    )
    return build_problem(trace, config)


class TestCostEvaluatorDeltas:
    @pytest.mark.parametrize("ports,policy", GEOMETRIES)
    def test_total_matches_reference(self, ports, policy):
        problem = _random_problem(ports, policy, seed=3)
        for seed in range(3):
            placement = random_placement(problem, seed)
            evaluator = CostEvaluator(problem, placement)
            assert evaluator.total == evaluate_placement(problem, placement)

    @pytest.mark.parametrize("ports,policy", GEOMETRIES)
    def test_swap_and_move_deltas_exact(self, ports, policy):
        problem = _random_problem(ports, policy, seed=5)
        placement = random_placement(problem, 0)
        evaluator = CostEvaluator(problem, placement)
        rng = random.Random(17)
        items = list(problem.items)
        for _ in range(25):
            item_a, item_b = rng.sample(items, 2)
            delta = evaluator.swap_delta(item_a, item_b)
            candidate = evaluator.placement().with_swapped(item_a, item_b)
            reference = evaluate_placement(problem, candidate, validate=False)
            assert delta == reference - evaluator.total
        for _ in range(15):
            free = evaluator.free_slots()
            if not free:
                break
            item = rng.choice(items)
            slot = rng.choice(free)
            delta = evaluator.move_delta(item, slot)
            candidate = evaluator.placement().with_moved(item, slot)
            reference = evaluate_placement(problem, candidate, validate=False)
            assert delta == reference - evaluator.total

    @pytest.mark.parametrize("ports,policy", GEOMETRIES)
    def test_reversal_deltas_exact(self, ports, policy):
        problem = _random_problem(ports, policy, seed=7)
        placement = random_placement(problem, 2)
        evaluator = CostEvaluator(problem, placement)
        for dbc in evaluator.dbcs_used():
            offsets = sorted(evaluator.dbc_contents(dbc))
            for i in range(len(offsets)):
                for j in range(i + 1, len(offsets)):
                    segment = offsets[i : j + 1]
                    delta = evaluator.reversal_delta(dbc, segment)
                    contents = evaluator.dbc_contents(dbc)
                    mapping = dict(evaluator.placement().as_dict())
                    for source, target in zip(segment, reversed(segment)):
                        mapping[contents[source]] = (dbc, target)
                    reference = evaluate_placement(
                        problem, Placement(mapping), validate=False
                    )
                    assert delta == reference - evaluator.total

    @pytest.mark.parametrize("ports,policy", GEOMETRIES)
    def test_apply_undo_sequences(self, ports, policy):
        problem = _random_problem(ports, policy, seed=11)
        placement = random_placement(problem, 1)
        evaluator = CostEvaluator(problem, placement)
        rng = random.Random(23)
        items = list(problem.items)
        totals = [evaluator.total]
        for _ in range(30):
            choice = rng.random()
            if choice < 0.5:
                item_a, item_b = rng.sample(items, 2)
                evaluator.apply_swap(item_a, item_b)
            elif choice < 0.8:
                free = evaluator.free_slots()
                if free:
                    evaluator.apply_move(rng.choice(items), rng.choice(free))
                else:
                    item_a, item_b = rng.sample(items, 2)
                    evaluator.apply_swap(item_a, item_b)
            else:
                dbc = rng.choice(evaluator.dbcs_used())
                offsets = sorted(evaluator.dbc_contents(dbc))
                if len(offsets) >= 2:
                    evaluator.apply_reversal(dbc, offsets)
                else:
                    item_a, item_b = rng.sample(items, 2)
                    evaluator.apply_swap(item_a, item_b)
            # After every committed move the running total stays exact.
            assert evaluator.total == evaluate_placement(
                problem, evaluator.placement(), validate=False
            )
            totals.append(evaluator.total)
        for step in range(30):
            evaluator.undo()
            assert evaluator.total == totals[-2 - step]
        assert evaluator.placement() == placement

    @pytest.mark.parametrize("ports", [2, 4])
    def test_long_multi_port_subsequences_use_vector_path(self, ports):
        # Subsequences above MULTI_PORT_VECTOR_MIN replay through the
        # vectorised port-state path (two-port closed form / P-state fold);
        # totals and deltas must still match the scalar reference exactly.
        trace = markov_trace(24, 6000, locality=0.8, seed=41, write_fraction=0.2)
        config = DWMConfig.for_items(
            24, words_per_dbc=8, num_ports=ports, port_policy="lazy"
        )
        problem = build_problem(trace, config)
        placement = random_placement(problem, 0)
        evaluator = CostEvaluator(problem, placement)
        assert min(
            len(evaluator.dbc_contents(dbc)) for dbc in evaluator.dbcs_used()
        ) >= 1
        assert evaluator.total == evaluate_placement(problem, placement)
        rng = random.Random(43)
        items = list(problem.items)
        for _ in range(20):
            item_a, item_b = rng.sample(items, 2)
            delta = evaluator.swap_delta(item_a, item_b)
            reference = evaluate_placement(
                problem,
                evaluator.placement().with_swapped(item_a, item_b),
                validate=False,
            )
            assert delta == reference - evaluator.total
        for _ in range(10):
            item_a, item_b = rng.sample(items, 2)
            evaluator.apply_swap(item_a, item_b)
            assert evaluator.total == evaluate_placement(
                problem, evaluator.placement(), validate=False
            )

    def test_untraced_items_block_slots_but_cost_nothing(self):
        trace = AccessTrace(["a", "b", "a", "c"], name="tiny")
        config = DWMConfig.with_uniform_ports(words_per_dbc=4, num_dbcs=2)
        problem = build_problem(trace, config)
        placement = Placement(
            {"a": (0, 0), "b": (0, 1), "c": (0, 2), "ghost": (1, 0)}
        )
        evaluator = CostEvaluator(problem, placement)
        assert evaluator.total == evaluate_placement(
            problem, placement, validate=False
        )
        # The ghost's slot is occupied and its DBC counts as used.
        assert Slot(1, 0) not in evaluator.free_slots()
        assert 1 in evaluator.dbcs_used()
        with pytest.raises(PlacementError):
            evaluator.move_delta("a", Slot(1, 0))
        assert "ghost" in evaluator.placement()

    def test_error_paths(self):
        problem = _random_problem(1, "lazy", seed=13)
        placement = random_placement(problem, 0)
        evaluator = CostEvaluator(problem, placement)
        with pytest.raises(PlacementError):
            evaluator.undo()
        with pytest.raises(PlacementError):
            evaluator.swap_delta("no-such-item", list(problem.items)[0])
        occupied = evaluator.slot_of(list(problem.items)[1])
        with pytest.raises(PlacementError):
            evaluator.move_delta(list(problem.items)[0], occupied)


class TestBatchFastEval:
    @pytest.mark.parametrize("ports,policy", GEOMETRIES)
    def test_batch_matches_reference(self, ports, policy):
        problem = _random_problem(ports, policy, seed=19)
        placements = [random_placement(problem, seed) for seed in range(4)]
        batch = evaluate_placements_fast(problem, placements)
        for placement, cost in zip(placements, batch):
            assert cost == evaluate_placement(problem, placement)
            assert cost == evaluate_placement_fast(problem, placement)
            assert cost == evaluate_placement_auto(problem, placement)

    def test_auto_on_long_trace(self):
        trace = zipf_trace(32, 6000, alpha=1.2, seed=4)
        problem = build_problem(trace, words_per_dbc=16)
        placement = random_placement(problem, 0)
        assert evaluate_placement_auto(problem, placement) == (
            evaluate_placement(problem, placement)
        )


class TestRefinersOnEngine:
    @pytest.mark.parametrize("ports,policy", GEOMETRIES)
    def test_refinement_monotone_and_exact(self, ports, policy):
        problem = _random_problem(ports, policy, seed=29)
        start = random_placement(problem, 3)
        start_cost = evaluate_placement(problem, start)
        for refiner in (swap_refinement, two_opt_refinement):
            refined = refiner(problem, start, max_evaluations=1500)
            refined.validate(problem.config, problem.items)
            assert evaluate_placement(problem, refined) <= start_cost
        annealed = simulated_annealing(
            problem, start, seed=5, max_evaluations=1500
        )
        annealed.validate(problem.config, problem.items)
        assert evaluate_placement(problem, annealed) <= start_cost

    def test_simulated_annealing_deterministic(self):
        problem = _random_problem(2, "lazy", seed=31)
        start = random_placement(problem, 0)
        first = simulated_annealing(problem, start, seed=9, max_evaluations=2000)
        second = simulated_annealing(problem, start, seed=9, max_evaluations=2000)
        assert first == second


class TestShiftLowerBound:
    def _tiny_problem(self, ports, policy, seed):
        rng = random.Random(seed)
        items = [f"v{i}" for i in range(5)]
        accesses = [rng.choice(items) for _ in range(40)]
        trace = AccessTrace(accesses, name=f"tiny{seed}")
        config = DWMConfig.for_items(
            trace.num_items, words_per_dbc=3, num_ports=ports, port_policy=policy
        )
        return build_problem(trace, config)

    @pytest.mark.parametrize("ports,policy", [(1, "lazy"), (1, "eager"), (2, "eager")])
    def test_bound_below_exhaustive_optimum(self, ports, policy):
        for seed in range(4):
            problem = self._tiny_problem(ports, policy, seed)
            bound = shift_lower_bound(problem)
            optimum = evaluate_placement(
                problem, exhaustive_placement(problem), validate=False
            )
            assert bound <= optimum

    def test_bound_below_random_placements(self):
        for ports, policy in GEOMETRIES:
            problem = _random_problem(ports, policy, seed=37)
            bound = shift_lower_bound(problem)
            for seed in range(3):
                placement = random_placement(problem, seed)
                assert bound <= evaluate_placement(problem, placement)

    def test_lazy_forced_sharing_is_nontrivial(self):
        # Dense adjacency + more items than DBCs forces a positive bound.
        items = [f"v{i}" for i in range(6)]
        accesses = []
        for i in range(len(items)):
            for j in range(len(items)):
                if i != j:
                    accesses += [items[i], items[j]] * 3
        trace = AccessTrace(accesses, name="dense")
        config = DWMConfig.with_uniform_ports(words_per_dbc=3, num_dbcs=2)
        problem = build_problem(trace, config)
        assert shift_lower_bound(problem) > 0

    def test_eager_bound_is_tight_for_isolated_items(self):
        # One hot item per DBC sitting on the port: optimum = bound = 0.
        trace = AccessTrace(["a", "b"] * 10, name="pair")
        config = DWMConfig.with_uniform_ports(
            words_per_dbc=4, num_dbcs=2, port_policy="eager"
        )
        problem = build_problem(trace, config)
        port = config.port_offsets[0]
        placement = Placement({"a": (0, port), "b": (1, port)})
        assert shift_lower_bound(problem) == 0
        assert evaluate_placement(problem, placement) == 0
