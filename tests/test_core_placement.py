"""Unit tests for repro.core.placement."""

import pytest

from repro.core.placement import Placement, Slot
from repro.errors import CapacityError, PlacementError


class TestSlot:
    def test_ordering(self):
        assert Slot(0, 1) < Slot(0, 2) < Slot(1, 0)

    def test_negative_dbc_raises(self):
        with pytest.raises(PlacementError):
            Slot(-1, 0)

    def test_negative_offset_raises(self):
        with pytest.raises(PlacementError):
            Slot(0, -1)

    def test_hashable(self):
        assert hash(Slot(1, 2)) == hash(Slot(1, 2))


class TestPlacementConstruction:
    def test_from_tuples(self):
        placement = Placement({"a": (0, 1), "b": (0, 2)})
        assert placement["a"] == Slot(0, 1)

    def test_overlapping_slots_raise(self):
        with pytest.raises(PlacementError, match="more than one item"):
            Placement({"a": (0, 1), "b": (0, 1)})

    def test_mapping_protocol(self):
        placement = Placement({"a": (0, 0), "b": (1, 0)})
        assert len(placement) == 2
        assert "a" in placement
        assert set(placement) == {"a", "b"}

    def test_missing_item_raises(self):
        placement = Placement({"a": (0, 0)})
        with pytest.raises(PlacementError, match="no placement"):
            placement["zzz"]

    def test_equality(self):
        assert Placement({"a": (0, 0)}) == Placement({"a": Slot(0, 0)})
        assert Placement({"a": (0, 0)}) != Placement({"a": (0, 1)})

    def test_as_dict_roundtrip(self):
        original = Placement({"a": (0, 3), "b": (2, 1)})
        assert Placement(original.as_dict()) == original


class TestValidation:
    def test_valid_placement_passes(self, small_config):
        placement = Placement({"a": (0, 0), "b": (3, 7)})
        placement.validate(small_config, ["a", "b"])

    def test_dbc_out_of_range(self, small_config):
        placement = Placement({"a": (4, 0)})
        with pytest.raises(CapacityError):
            placement.validate(small_config)

    def test_offset_out_of_range(self, small_config):
        placement = Placement({"a": (0, 8)})
        with pytest.raises(PlacementError):
            placement.validate(small_config)

    def test_missing_required_items(self, small_config):
        placement = Placement({"a": (0, 0)})
        with pytest.raises(PlacementError, match="lack a placement"):
            placement.validate(small_config, ["a", "b"])


class TestStructure:
    def test_dbcs_used(self):
        placement = Placement({"a": (2, 0), "b": (0, 0), "c": (2, 1)})
        assert placement.dbcs_used() == [0, 2]

    def test_dbc_contents(self):
        placement = Placement({"a": (1, 3), "b": (1, 0), "c": (0, 0)})
        assert placement.dbc_contents(1) == {3: "a", 0: "b"}

    def test_groups_ordered_by_offset(self):
        placement = Placement({"a": (0, 2), "b": (0, 0), "c": (1, 5)})
        assert placement.groups() == {0: ["b", "a"], 1: ["c"]}


class TestFromOrder:
    def test_fills_dbcs_sequentially(self, small_config):
        items = [f"i{k}" for k in range(10)]
        placement = Placement.from_order(items, small_config)
        assert placement["i0"] == Slot(0, 0)
        assert placement["i7"] == Slot(0, 7)
        assert placement["i8"] == Slot(1, 0)

    def test_duplicates_raise(self, small_config):
        with pytest.raises(PlacementError, match="duplicates"):
            Placement.from_order(["a", "a"], small_config)

    def test_over_capacity_raises(self, small_config):
        items = [f"i{k}" for k in range(33)]
        with pytest.raises(CapacityError):
            Placement.from_order(items, small_config)


class TestFromGroups:
    def test_groups_land_on_their_dbcs(self, small_config):
        placement = Placement.from_groups([["a", "b"], ["c"]], small_config)
        assert placement["a"].dbc == 0
        assert placement["c"].dbc == 1

    def test_default_anchor_centres_on_port(self, small_config):
        # Port at offset 4, group of 2 -> starts at 4 - 1 = 3.
        placement = Placement.from_groups([["a", "b"]], small_config)
        assert placement["a"].offset == 3
        assert placement["b"].offset == 4

    def test_explicit_anchor(self, small_config):
        placement = Placement.from_groups(
            {0: ["a", "b"]}, small_config, anchor_offsets={0: 6}
        )
        assert placement["a"].offset == 6

    def test_anchor_overflow_raises(self, small_config):
        with pytest.raises(PlacementError):
            Placement.from_groups(
                {0: ["a", "b"]}, small_config, anchor_offsets={0: 7}
            )

    def test_group_over_capacity_raises(self, small_config):
        with pytest.raises(CapacityError):
            Placement.from_groups([[f"i{k}" for k in range(9)]], small_config)

    def test_item_in_two_groups_raises(self, small_config):
        with pytest.raises(PlacementError, match="two groups"):
            Placement.from_groups([["a"], ["a"]], small_config)


class TestEdits:
    def test_with_swapped(self):
        placement = Placement({"a": (0, 0), "b": (1, 1)})
        swapped = placement.with_swapped("a", "b")
        assert swapped["a"] == Slot(1, 1)
        assert swapped["b"] == Slot(0, 0)
        # Original untouched.
        assert placement["a"] == Slot(0, 0)

    def test_with_moved_to_free_slot(self):
        placement = Placement({"a": (0, 0)})
        moved = placement.with_moved("a", (0, 5))
        assert moved["a"] == Slot(0, 5)

    def test_with_moved_to_occupied_slot_raises(self):
        placement = Placement({"a": (0, 0), "b": (0, 1)})
        with pytest.raises(PlacementError):
            placement.with_moved("a", (0, 1))
