"""Tests for the artifact doctor (``repro.fsck`` / ``repro fsck``).

Covers the three torn binary-trace shapes described in the module
docstring (zero header, truncated records, truncated meta — including
the exact-prefix salvage with real item names), journal torn tails,
cache shard quarantine, dispatch, and the CLI exit codes.
"""

from __future__ import annotations

import json

import pytest

from repro.fsck import fsck_cache, fsck_journal, fsck_path, fsck_rtb
from repro.trace.binio import (
    HEADER_SIZE,
    _HEADER_STRUCT,
    open_binary,
    pack,
)
from repro.trace.model import AccessKind
from repro.trace.synthetic import zipf_trace


def _pack_trace(trace, path):
    pairs = [
        (a.item, "W" if a.kind is AccessKind.WRITE else "R") for a in trace
    ]
    pack(pairs, path, name=trace.name, metadata=dict(trace.metadata))
    return pairs


@pytest.fixture
def packed(tmp_path):
    trace = zipf_trace(num_items=12, num_accesses=300, seed=7)
    path = tmp_path / "t.rtb"
    pairs = _pack_trace(trace, path)
    return path, pairs


class TestRtbShapes:
    def test_intact_file_is_ok(self, packed):
        path, _ = packed
        report = fsck_rtb(path)
        assert report.status == "ok"
        assert report.ok

    def test_zero_header_is_unrecoverable(self, packed):
        path, _ = packed
        raw = path.read_bytes()
        path.write_bytes(b"\x00" * HEADER_SIZE + raw[HEADER_SIZE:])
        report = fsck_rtb(path, repair=True)
        assert report.status == "unrecoverable"
        assert not report.ok
        assert any("re-pack" in action for action in report.actions)

    def test_truncated_records_salvage_placeholders(self, packed, tmp_path):
        path, pairs = packed
        raw = path.read_bytes()
        keep_records = 40
        path.write_bytes(raw[: HEADER_SIZE + keep_records * 4 + 2])
        report = fsck_rtb(path, repair=True)
        assert report.status == "repaired"
        assert report.salvaged_records == keep_records
        salvaged = open_binary(path)
        assert len(salvaged) == keep_records
        assert all(name.startswith("item") for name in salvaged.items)
        assert salvaged.metadata["salvaged"] is True
        # Structure survives: read/write pattern matches the original prefix.
        reads, writes = salvaged.read_write_counts()
        expected_writes = sum(k == "W" for _i, k in pairs[:keep_records])
        assert (reads, writes) == (keep_records - expected_writes, expected_writes)

    def test_truncated_meta_salvages_exact_prefix(self, packed):
        path, pairs = packed
        raw = path.read_bytes()
        meta_offset = _HEADER_STRUCT.unpack(raw[: _HEADER_STRUCT.size])[6]
        # Cut inside the items array so only a prefix of names survives.
        items_at = raw.find(b'"items"', meta_offset)
        assert items_at > 0
        cut = items_at + (len(raw) - items_at) // 2
        path.write_bytes(raw[:cut])
        report = fsck_rtb(path, repair=True)
        assert report.status == "repaired"
        assert report.salvaged_records > 0
        salvaged = open_binary(path)
        # Exact salvage: real names, and the record prefix is identical to
        # the original trace's first salvaged_records accesses.
        item_at, is_write = salvaged.chunk_arrays(0, len(salvaged))
        recovered = [
            (salvaged.items[index], "W" if write else "R")
            for index, write in zip(item_at, is_write)
        ]
        assert recovered == pairs[: report.salvaged_records]
        assert not any(name.startswith("item0") for name in salvaged.items)

    def test_verify_only_writes_sidecar_and_reports_salvageable(self, packed):
        path, _ = packed
        raw = path.read_bytes()
        path.write_bytes(raw[: HEADER_SIZE + 43])
        report = fsck_rtb(path, repair=False)
        assert report.status == "salvageable"
        assert not report.ok
        sidecar = path.with_suffix(".salvaged.rtb")
        assert sidecar.exists()
        assert report.salvaged_path == str(sidecar)
        # Original untouched (still torn).
        assert path.read_bytes() == raw[: HEADER_SIZE + 43]

    def test_short_file_unrecoverable(self, tmp_path):
        stub = tmp_path / "stub.rtb"
        stub.write_bytes(b"\x00" * 17)
        report = fsck_rtb(stub, repair=True)
        assert report.status == "unrecoverable"


class TestJournal:
    def test_intact_journal_ok(self, tmp_path):
        from repro.analysis.checkpoint import CheckpointJournal

        path = tmp_path / "j.journal"
        journal = CheckpointJournal(path)
        journal.record("a", 1)
        journal.close()
        report = fsck_journal(path)
        assert report.status == "ok"
        assert report.salvaged_records == 1

    def test_torn_tail_detected_then_repaired(self, tmp_path):
        from repro.analysis.checkpoint import CheckpointJournal, scan_journal

        path = tmp_path / "j.journal"
        journal = CheckpointJournal(path)
        for i in range(4):
            journal.record(f"k{i}", i)
        journal.close()
        with open(path, "ab") as handle:
            handle.write(b'{"key": "k4", "payl')
        check = fsck_journal(path)
        assert check.status == "salvageable"
        repaired = fsck_journal(path, repair=True)
        assert repaired.status == "repaired"
        entries, good_offset, corrupt = scan_journal(path)
        assert len(entries) == 4 and corrupt == 0
        assert path.stat().st_size == good_offset
        assert fsck_journal(path).status == "ok"

    def test_missing_file_unrecoverable(self, tmp_path):
        report = fsck_journal(tmp_path / "nope.journal")
        assert report.status == "unrecoverable"


class TestCache:
    def _seed_cache(self, root):
        from repro.analysis.cache import ResultCache

        cache = ResultCache(root)
        cache.put("aa" + "0" * 62, {"value": 1})
        cache.put("bb" + "0" * 62, {"value": 2})
        return cache

    def test_healthy_cache_ok(self, tmp_path):
        self._seed_cache(tmp_path / "cache")
        report = fsck_cache(tmp_path / "cache")
        assert report.status == "ok"
        assert "2 shard(s) ok" in report.detail

    def test_corrupt_shard_quarantined_and_strays_swept(self, tmp_path):
        root = tmp_path / "cache"
        self._seed_cache(root)
        shard_dir = root / "cc"
        shard_dir.mkdir(parents=True, exist_ok=True)
        (shard_dir / "broken.json").write_text('{"truncated": ')
        (root / "orphan.tmp").write_text("")
        check = fsck_cache(root)
        assert check.status == "salvageable"
        repaired = fsck_cache(root, repair=True)
        assert repaired.status == "repaired"
        assert not (shard_dir / "broken.json").exists()
        assert (shard_dir / "broken.corrupt").exists()
        assert not (root / "orphan.tmp").exists()
        assert fsck_cache(root).status == "ok"

    def test_missing_directory_unrecoverable(self, tmp_path):
        report = fsck_cache(tmp_path / "nowhere")
        assert report.status == "unrecoverable"


class TestDispatchAndCli:
    def test_dispatch_by_shape(self, tmp_path, packed):
        path, _ = packed
        assert fsck_path(path).kind == "rtb"
        cache_root = tmp_path / "cachedir"
        cache_root.mkdir()
        assert fsck_path(cache_root).kind == "cache"
        journal = tmp_path / "x.journal"
        journal.write_text("")
        assert fsck_path(journal).kind == "journal"

    def test_cli_exit_codes_and_json(self, packed, capsys):
        from repro.cli import main

        path, _ = packed
        assert main(["fsck", str(path)]) == 0
        raw = path.read_bytes()
        path.write_bytes(raw[: HEADER_SIZE + 20])
        assert main(["fsck", str(path)]) == 1  # verify-only: still damaged
        assert main(["fsck", "--repair", str(path)]) == 0
        capsys.readouterr()  # drain the human-readable output
        assert main(["fsck", "--json", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["status"] == "ok"
        assert payload[0]["kind"] == "rtb"
