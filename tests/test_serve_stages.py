"""Staged optimize pipeline: resolve → plan → execute ≡ the monolith.

``optimize_placement`` is now a composition of three explicit stages so
the serving layer can resolve a trace once, plan remotely, and execute
against shared state.  These tests pin the refactor's contract:

* composing the stages by hand is **bit-identical** to calling the
  monolith, across every port policy and a spread of algorithms;
* each stage honours its own contract (validation, typed errors,
  metadata);
* a trace shared by concurrent requests is resolved **exactly once**
  (the double-checked lock in ``repro.memory.batch_sim.resolve_trace``).
"""

import random
import threading

import pytest

from repro.core.api import (
    ALGORITHMS,
    PlacementPlan,
    build_problem,
    execute_plan,
    optimize_placement,
    plan_placement,
    resolve_placement,
)
from repro.dwm.config import DWMConfig, PortPolicy
from repro.errors import OptimizationError, PlacementError
from repro.memory.batch_sim import resolve_trace
from repro.obs import MetricsRegistry, set_registry
from repro.trace.model import AccessTrace


def make_trace(seed: int = 11, items: int = 14, length: int = 900) -> AccessTrace:
    rng = random.Random(seed)
    return AccessTrace(
        [
            (f"v{rng.randrange(items)}", rng.choice("RW"))
            for _ in range(length)
        ],
        name=f"stages-{seed}",
    )


CONFIGS = [
    # (label, words_per_dbc, num_ports, policy)
    ("1-port lazy", 8, 1, PortPolicy.LAZY),
    ("2-port lazy", 8, 2, PortPolicy.LAZY),
    ("4-port lazy", 16, 4, PortPolicy.LAZY),
    ("2-port eager", 8, 2, PortPolicy.EAGER),
]

METHODS = [
    ("heuristic", {}),
    ("frequency", {}),
    ("declaration", {}),
    ("random", {"seed": 5}),
]


@pytest.fixture()
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


class TestStagedEqualsMonolith:
    @pytest.mark.parametrize(
        "label,words,ports,policy", CONFIGS, ids=[c[0] for c in CONFIGS]
    )
    @pytest.mark.parametrize(
        "method,kwargs", METHODS, ids=[m[0] for m in METHODS]
    )
    def test_bit_identical_costs(self, label, words, ports, policy, method, kwargs):
        trace = make_trace()
        config = DWMConfig.for_items(
            trace.num_items,
            words_per_dbc=words,
            num_ports=ports,
            port_policy=policy,
        )
        mono = optimize_placement(trace, config, method=method, **kwargs)

        staged_trace = make_trace()  # fresh object: no shared resolution
        problem = resolve_placement(staged_trace, config)
        plan = plan_placement(problem, method, **kwargs)
        staged = execute_plan(problem, plan)

        assert staged.total_shifts == mono.total_shifts
        assert staged.placement.as_dict() == mono.placement.as_dict()
        assert staged.method == mono.method
        assert staged.details["config"] == mono.details["config"]

    def test_annealing_seeded_bit_identical(self):
        trace = make_trace(seed=3)
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=8)
        kwargs = {"seed": 9}
        mono = optimize_placement(trace, config, method="annealing", **kwargs)
        problem = resolve_placement(make_trace(seed=3), config)
        staged = execute_plan(
            problem, plan_placement(problem, "annealing", **kwargs)
        )
        assert staged.total_shifts == mono.total_shifts
        assert staged.placement.as_dict() == mono.placement.as_dict()


class TestStageContracts:
    def test_resolve_builds_problem_and_resolves_trace(self):
        trace = make_trace()
        assert trace._resolved is None
        problem = resolve_placement(trace)
        assert problem.trace is trace
        assert trace._resolved is not None
        # Idempotent: the same problem geometry as build_problem.
        reference = build_problem(make_trace())
        assert problem.config.describe() == reference.config.describe()

    def test_plan_unknown_method_is_typed(self):
        problem = resolve_placement(make_trace())
        with pytest.raises(OptimizationError, match="unknown method"):
            plan_placement(problem, "does-not-exist")
        with pytest.raises(OptimizationError, match="unknown method"):
            optimize_placement(make_trace(), method="does-not-exist")

    def test_plan_carries_method_runtime_and_kwargs(self):
        problem = resolve_placement(make_trace())
        plan = plan_placement(problem, "random", seed=4)
        assert isinstance(plan, PlacementPlan)
        assert plan.method == "random"
        assert plan.kwargs == {"seed": 4}
        assert plan.runtime_seconds >= 0.0

    def test_execute_validates_placement(self):
        problem = resolve_placement(make_trace())
        good = plan_placement(problem, "heuristic")
        # Drop one item: execute must refuse the incomplete placement.
        mapping = good.placement.as_dict()
        mapping.pop(next(iter(mapping)))
        from repro.core.placement import Placement

        bad = PlacementPlan(
            method="heuristic",
            placement=Placement(mapping),
            runtime_seconds=0.0,
        )
        with pytest.raises(PlacementError):
            execute_plan(problem, bad)

    def test_monolith_counts_one_run(self, registry):
        optimize_placement(make_trace(), method="heuristic")
        assert registry.counter_value("optimize.runs", method="heuristic") == 1

    def test_all_algorithms_registered(self):
        # The staged planner serves exactly the monolith's method table.
        problem = resolve_placement(make_trace(seed=2, items=8, length=200))
        for method in ALGORITHMS:
            if method == "exact":
                continue  # exponential; covered by its own suite
            plan = plan_placement(problem, method)
            result = execute_plan(problem, plan)
            assert result.total_shifts >= 0


class TestSharedResolution:
    def test_concurrent_resolve_is_resolved_exactly_once(self, registry):
        trace = make_trace(seed=21)
        barrier = threading.Barrier(2)
        outputs = []

        def worker():
            barrier.wait()
            outputs.append(resolve_trace(trace))

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(outputs) == 2
        assert outputs[0] is outputs[1]
        assert registry.counter_value("sim.resolves") == 1

    def test_concurrent_optimize_shares_one_resolution(self, registry):
        trace = make_trace(seed=22)
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=8)
        barrier = threading.Barrier(2)
        results = []

        def worker(method):
            barrier.wait()
            results.append(optimize_placement(trace, config, method=method))

        threads = [
            threading.Thread(target=worker, args=(m,))
            for m in ("heuristic", "frequency")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 2
        assert registry.counter_value("sim.resolves") == 1
