"""Unit tests for the differential conformance fuzzer (repro.verify)."""

import json
import random

import pytest

import repro.verify.oracles as oracles
from repro.core.cost import evaluate_placement
from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig
from repro.obs import get_registry
from repro.trace.model import AccessTrace
from repro.verify import (
    FuzzCase,
    ShrinkStats,
    brute_force_optimum,
    build_placement,
    check_case,
    generate_case,
    regression_snippet,
    run_fuzz,
    shrink_case,
)


def make_case(accesses, words=4, dbcs=2, ports=(0,), policy="lazy",
              method="frequency", seed=7):
    return FuzzCase(
        accesses=tuple((item, "R") for item in accesses),
        words_per_dbc=words,
        num_dbcs=dbcs,
        port_offsets=tuple(ports),
        port_policy=policy,
        method=method,
        seed=seed,
    )


class TestCaseGeneration:
    def test_deterministic_for_seed(self):
        first = [generate_case(random.Random(11), i) for i in range(30)]
        second = [generate_case(random.Random(11), i) for i in range(30)]
        assert first == second

    def test_different_seeds_differ(self):
        a = [generate_case(random.Random(1), i) for i in range(10)]
        b = [generate_case(random.Random(2), i) for i in range(10)]
        assert a != b

    def test_generated_cases_are_feasible(self):
        rng = random.Random(5)
        for index in range(50):
            case = generate_case(rng, index)
            assert case.num_items() <= case.num_dbcs * case.words_per_dbc
            assert all(
                0 <= p < case.words_per_dbc for p in case.port_offsets
            )

    def test_json_round_trip(self):
        case = generate_case(random.Random(3), 0)
        recovered = FuzzCase.from_dict(
            json.loads(json.dumps(case.to_dict()))
        )
        assert recovered == case

    def test_from_dict_rejects_unknown_schema(self):
        payload = generate_case(random.Random(3), 0).to_dict()
        payload["schema"] = 999
        with pytest.raises(Exception):
            FuzzCase.from_dict(payload)


class TestOracles:
    def test_clean_on_simple_case(self):
        case = make_case(["a", "b", "a", "b", "c"], words=3, dbcs=2)
        assert check_case(case) == []

    def test_clean_on_multi_port_eager(self):
        case = make_case(
            ["a", "b", "c", "a", "c"], words=4, dbcs=1,
            ports=(0, 3), policy="eager",
        )
        assert check_case(case) == []

    def test_brute_force_matches_known_optimum(self):
        # Two items, ports at 0 and 2: one item on each port costs zero.
        trace = AccessTrace(["a", "b"] * 3)
        config = DWMConfig(
            words_per_dbc=3, num_dbcs=1, port_offsets=(0, 2)
        )
        problem = PlacementProblem(trace=trace, config=config)
        assert brute_force_optimum(problem) == 0

    def test_build_placement_valid(self):
        case = make_case(["a", "b", "c", "a"], words=4, dbcs=2)
        problem, placement = build_placement(case)
        placement.validate(case.config(), problem.items)

    def test_detects_injected_overcount(self, monkeypatch):
        original = oracles.evaluate_placement_fast

        def broken(problem, placement, **kwargs):
            value = original(problem, placement, **kwargs)
            return value + 1 if value > 0 else value

        monkeypatch.setattr(oracles, "evaluate_placement_fast", broken)
        case = make_case(["a", "b", "a", "b"], words=2, dbcs=1)
        kinds = {v.kind for v in check_case(case)}
        assert "engine_total_mismatch" in kinds


class TestShrink:
    def test_shrinks_to_single_access(self):
        case = make_case(
            ["x" if i % 3 == 0 else f"f{i}" for i in range(24)],
            words=9, dbcs=3,
        )

        def interesting(candidate):
            return any(item == "x" for item, _kind in candidate.accesses)

        shrunk = shrink_case(case, interesting)
        # The rename pass cannot fire (the predicate pins the name "x"),
        # but ddmin + item drops must reach the single witnessing access.
        assert shrunk.accesses == (("x", "R"),)

    def test_respects_check_budget(self):
        case = make_case([f"i{k}" for k in range(12)] * 4, words=12, dbcs=4)
        stats = ShrinkStats()
        shrink_case(case, lambda c: True, max_checks=5, stats=stats)
        assert stats.checks <= 6

    def test_result_still_interesting(self):
        case = make_case(["a", "b", "c", "a", "b", "c"], words=3, dbcs=2)

        def interesting(candidate):
            return candidate.num_items() >= 2

        shrunk = shrink_case(case, interesting)
        assert interesting(shrunk)
        assert shrunk.label.endswith("-shrunk")


class TestRunFuzz:
    def test_clean_sweep(self, tmp_path):
        report = run_fuzz(seed=2015, cases=25, out=tmp_path)
        assert report.ok
        assert report.cases_run == 25
        assert (tmp_path / "report.json").exists()
        summary = json.loads((tmp_path / "report.json").read_text())
        assert summary["num_findings"] == 0
        assert get_registry().counter_value("fuzz.cases") >= 25

    def test_budget_stops_early(self):
        report = run_fuzz(seed=1, cases=10_000, budget_seconds=0.5)
        assert report.stopped_on_budget
        assert report.cases_run < 10_000

    def test_injected_bug_is_caught_and_shrunk(self, tmp_path, monkeypatch):
        # Acceptance criterion: a deliberate off-by-one in one engine must
        # be detected and minimized to a repro of at most 10 accesses.
        original = oracles.evaluate_placement_fast

        def broken(problem, placement, **kwargs):
            value = original(problem, placement, **kwargs)
            return value + 1 if value > 0 else value

        monkeypatch.setattr(oracles, "evaluate_placement_fast", broken)
        report = run_fuzz(seed=2015, cases=30, out=tmp_path)
        assert not report.ok
        finding = report.findings[0]
        assert "engine_total_mismatch" in finding.kinds
        assert len(finding.shrunk.accesses) <= 10
        assert any(
            v.kind == "engine_total_mismatch"
            for v in finding.shrunk_violations
        )
        with open(report.artifact_paths[0]) as handle:
            artifact = json.load(handle)
        assert artifact["kinds"] == list(finding.kinds)
        assert "def test_fuzz_repro_" in artifact["regression_test"]

    def test_regression_snippet_is_executable(self):
        case = make_case(["a", "b", "a"], words=2, dbcs=1)
        snippet = regression_snippet(case, ("engine_total_mismatch",))
        namespace = {}
        exec(snippet, namespace)
        test_fn = next(
            fn for name, fn in namespace.items()
            if name.startswith("test_fuzz_repro_")
        )
        test_fn()  # the pinned case must pass on a healthy tree


class TestCliFuzz:
    def run_cli(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_fuzz_smoke(self, tmp_path, capsys):
        code, out, _err = self.run_cli(
            capsys, "fuzz", "--seed", "2015", "--cases", "15",
            "--out", str(tmp_path / "artifacts"),
        )
        assert code == 0
        assert "all invariants held" in out
        assert (tmp_path / "artifacts" / "report.json").exists()

    def test_fuzz_budget_flag(self, capsys):
        code, out, _err = self.run_cli(
            capsys, "fuzz", "--seed", "4", "--cases", "5",
            "--budget-seconds", "30", "--no-shrink",
        )
        assert code == 0
        assert "findings" in out


class TestDifferentialAgainstBruteForce:
    """Every placement method must stay within [lower bound, and the exact
    methods must hit] the independent brute-force optimum on tiny cases."""

    @pytest.mark.parametrize("seed", range(6))
    def test_exact_matches_independent_brute_force(self, seed):
        rng = random.Random(seed)
        items = [f"v{k}" for k in range(rng.randint(2, 4))]
        accesses = [rng.choice(items) for _ in range(rng.randint(4, 14))]
        words = rng.randint(2, 4)
        ports = tuple(
            sorted(rng.sample(range(words), rng.randint(1, min(2, words))))
        )
        trace = AccessTrace(accesses)
        config = DWMConfig(
            words_per_dbc=words,
            num_dbcs=2,
            port_offsets=ports,
        )
        problem = PlacementProblem(trace=trace, config=config)
        from repro.core.exact import (
            exhaustive_placement,
            exhaustive_search_is_exact,
        )

        if not exhaustive_search_is_exact(config, len(problem.items)):
            pytest.skip("offset enumeration truncated for this geometry")
        cost = evaluate_placement(problem, exhaustive_placement(problem))
        assert cost == brute_force_optimum(problem)
