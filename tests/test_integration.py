"""End-to-end integration tests: kernel → trace → optimize → simulate → report."""

import pytest

import repro
from repro.analysis.metrics import reduction_percent
from repro.analysis.report import format_table
from repro.core.api import compare_methods, optimize_placement
from repro.dwm.config import DWMConfig
from repro.dwm.energy import DWMEnergyModel
from repro.memory.spm import ScratchpadMemory
from repro.memory.sram import SRAMScratchpad
from repro.trace import io as trace_io
from repro.trace.kernels import fir_trace, matmul_trace
from repro.trace.synthetic import markov_trace


class TestFullPipeline:
    def test_kernel_to_report(self, tmp_path):
        # 1. Generate a trace by executing a real kernel.
        trace = fir_trace(taps=8, samples=24)
        # 2. Persist and reload it (as a trace-driven flow would).
        path = tmp_path / "fir.jsonl"
        trace_io.save(trace, path)
        reloaded = trace_io.load(path)
        assert reloaded == trace
        # 3. Optimize placement.
        config = DWMConfig.for_items(reloaded.num_items, words_per_dbc=32)
        baseline = optimize_placement(reloaded, config, method="declaration")
        optimized = optimize_placement(reloaded, config, method="heuristic")
        assert optimized.total_shifts < baseline.total_shifts
        # 4. Simulate both placements on the device model.
        sim_base = ScratchpadMemory(config, baseline.placement).simulate(reloaded)
        sim_opt = ScratchpadMemory(config, optimized.placement).simulate(reloaded)
        assert sim_base.shifts == baseline.total_shifts
        assert sim_opt.shifts == optimized.total_shifts
        # 5. Energy and latency improve accordingly.
        model = DWMEnergyModel()
        assert sim_opt.energy(model).total_energy_pj < (
            sim_base.energy(model).total_energy_pj
        )
        assert sim_opt.energy(model).latency_ns < sim_base.energy(model).latency_ns
        # 6. Report.
        table = format_table(
            ("metric", "value"),
            [
                ("shift reduction %", reduction_percent(
                    baseline.total_shifts, optimized.total_shifts
                )),
            ],
        )
        assert "shift reduction" in table

    def test_public_api_surface(self):
        trace = markov_trace(10, 200, seed=1)
        result = repro.optimize_placement(trace, method="heuristic")
        assert isinstance(result, repro.PlacementResult)
        problem = repro.build_problem(trace)
        assert isinstance(problem, repro.PlacementProblem)
        sim = repro.simulate_placement(trace, problem.config, result.placement)
        assert isinstance(sim, repro.SimulationResult)
        assert sim.shifts == result.total_shifts

    def test_docstring_quickstart_claim(self):
        """The quickstart example in repro.__doc__ must actually hold."""
        from repro.trace import kernels

        trace = kernels.fir_trace()
        result = repro.optimize_placement(trace, method="heuristic")
        baseline = repro.optimize_placement(trace, method="declaration")
        assert result.total_shifts < baseline.total_shifts

    def test_benchmark_suite_end_to_end(self):
        suite = repro.benchmark_suite(("matmul", "histogram"))
        for trace in suite.values():
            results = compare_methods(trace)
            assert results["heuristic"].total_shifts <= (
                results["declaration"].total_shifts
            )

    def test_dwm_vs_sram_energy_story(self):
        """DWM + good placement needs less energy than an SRAM scratchpad."""
        trace = matmul_trace(size=6)
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=64)
        optimized = optimize_placement(trace, config, method="heuristic")
        sim = ScratchpadMemory(config, optimized.placement).simulate(trace)
        dwm_energy = sim.energy(DWMEnergyModel()).total_energy_pj
        sram_energy = (
            SRAMScratchpad(config.capacity_words)
            .simulate(trace)
            .sram_reference()
            .total_energy_pj
        )
        assert dwm_energy < sram_energy

    def test_functional_simulation_of_kernel_trace(self):
        """The bit-true device model survives a real kernel's access stream."""
        trace = fir_trace(taps=4, samples=10)
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=16)
        result = optimize_placement(trace, config, method="heuristic")
        spm = ScratchpadMemory(config, result.placement)
        functional = spm.simulate_functional(trace)
        assert functional.shifts == result.total_shifts


class TestCrossMethodConsistency:
    @pytest.mark.parametrize(
        "method", ["declaration", "frequency", "spectral", "heuristic"]
    )
    def test_simulator_confirms_every_method(self, method):
        trace = markov_trace(14, 250, seed=4)
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=8)
        result = optimize_placement(trace, config, method=method)
        sim = ScratchpadMemory(config, result.placement).simulate(trace)
        assert sim.shifts == result.total_shifts

    def test_multiport_end_to_end(self):
        trace = markov_trace(14, 250, seed=4)
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=16, num_ports=2)
        single = DWMConfig.for_items(trace.num_items, words_per_dbc=16, num_ports=1)
        multi_cost = optimize_placement(trace, config, method="heuristic").total_shifts
        single_cost = optimize_placement(trace, single, method="heuristic").total_shifts
        # A second port can only reduce the optimized shift count (weakly) --
        # with the heuristic this holds for identical geometry otherwise.
        assert multi_cost <= single_cost * 1.1  # small heuristic tolerance
