"""Unit tests for repro.dwm.tape (domain-level nanowire model)."""

import pytest

from repro.dwm.tape import Tape, TapeStats
from repro.errors import ConfigError, SimulationError


class TestTapeConstruction:
    def test_defaults(self):
        tape = Tape(8)
        assert tape.data_len == 8
        assert tape.overhead == 7
        assert tape.shift_state == 0

    def test_explicit_overhead(self):
        tape = Tape(8, overhead=3)
        assert tape.overhead == 3

    def test_zero_length_raises(self):
        with pytest.raises(ConfigError):
            Tape(0)

    def test_negative_overhead_raises(self):
        with pytest.raises(ConfigError):
            Tape(4, overhead=-1)

    def test_initial_bits_zero(self):
        tape = Tape(4)
        assert [tape.peek(i) for i in range(4)] == [0, 0, 0, 0]


class TestShift:
    def test_shift_updates_state(self):
        tape = Tape(8)
        tape.shift(3)
        assert tape.shift_state == 3

    def test_shift_returns_magnitude(self):
        tape = Tape(8)
        assert tape.shift(-4) == 4

    def test_shift_accumulates(self):
        tape = Tape(8)
        tape.shift(3)
        tape.shift(-5)
        assert tape.shift_state == -2

    def test_shift_beyond_overhead_raises(self):
        tape = Tape(8, overhead=2)
        with pytest.raises(SimulationError, match="exceeds overhead"):
            tape.shift(3)

    def test_shift_to_exact_overhead_allowed(self):
        tape = Tape(8, overhead=2)
        tape.shift(2)
        assert tape.shift_state == 2

    def test_shift_stats_counted(self):
        tape = Tape(8)
        tape.shift(3)
        tape.shift(-1)
        assert tape.stats.shifts == 4
        assert tape.stats.shift_ops == 2

    def test_zero_shift_is_free(self):
        tape = Tape(8)
        tape.shift(0)
        assert tape.stats.shifts == 0
        assert tape.stats.shift_ops == 0


class TestReadWrite:
    def test_write_then_read_at_port(self):
        tape = Tape(8)
        tape.write(3, 1)
        assert tape.read(3) == 1

    def test_read_counts_stat(self):
        tape = Tape(8)
        tape.read(0)
        assert tape.stats.reads == 1

    def test_write_counts_stat(self):
        tape = Tape(8)
        tape.write(0, 1)
        assert tape.stats.writes == 1

    def test_write_invalid_bit_raises(self):
        tape = Tape(8)
        with pytest.raises(SimulationError, match="bit value"):
            tape.write(0, 2)

    def test_aligned_index_follows_shift(self):
        tape = Tape(8)
        tape.write(5, 1)  # logical domain 5 holds a 1
        tape.shift(2)  # domain 5 now under physical position 7
        assert tape.aligned_index(7) == 5
        assert tape.read(7) == 1

    def test_read_non_data_domain_raises(self):
        tape = Tape(4, overhead=4)
        tape.shift(4)
        # Physical position 0 now aligns with logical index -4.
        with pytest.raises(SimulationError, match="non-data domain"):
            tape.read(0)


class TestShiftToAlign:
    def test_align_moves_correct_amount(self):
        tape = Tape(8)
        cost = tape.shift_to_align(2, 5)
        assert cost == 3
        assert tape.aligned_index(5) == 2

    def test_align_is_idempotent(self):
        tape = Tape(8)
        tape.shift_to_align(2, 5)
        assert tape.shift_to_align(2, 5) == 0

    def test_align_out_of_range_raises(self):
        tape = Tape(4)
        with pytest.raises(SimulationError):
            tape.shift_to_align(4, 0)


class TestLoadAndPeek:
    def test_load_sets_bits(self):
        tape = Tape(4)
        tape.load([1, 0, 1, 1])
        assert [tape.peek(i) for i in range(4)] == [1, 0, 1, 1]

    def test_load_wrong_length_raises(self):
        tape = Tape(4)
        with pytest.raises(SimulationError, match="expected 4 bits"):
            tape.load([1, 0])

    def test_load_invalid_bit_raises(self):
        tape = Tape(2)
        with pytest.raises(SimulationError):
            tape.load([1, 5])

    def test_load_charges_no_operations(self):
        tape = Tape(4)
        tape.load([1, 1, 0, 0])
        assert tape.stats.shifts == 0
        assert tape.stats.writes == 0


class TestTapeStats:
    def test_merged_sums_fields(self):
        a = TapeStats(shifts=3, shift_ops=1, reads=2, writes=4)
        b = TapeStats(shifts=1, shift_ops=1, reads=0, writes=1)
        merged = a.merged(b)
        assert merged.shifts == 4
        assert merged.shift_ops == 2
        assert merged.reads == 2
        assert merged.writes == 5
