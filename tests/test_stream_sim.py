"""Tests for the chunked streaming engine (repro.memory.stream_sim).

The load-bearing property is bit-identity with the in-memory vectorized
engine — checked here across policies, port counts and chunk sizes
(including the degenerate one-access-per-chunk and single-chunk corners),
on all three scan modes: sequential head-carrying, in-process map+merge,
and the pool-parallel fan-out (fork and spawn).  The merge algebra is
additionally checked for associativity: any bracketing of the chunk fold
must finalize to the same totals.
"""

from __future__ import annotations

import functools
import multiprocessing
import random

import pytest

from repro.analysis import pool as pool_mod
from repro.analysis.parallel import MP_START_ENV
from repro.core.api import build_problem
from repro.core.baselines import declaration_order_placement
from repro.dwm.config import DWMConfig, PortPolicy
from repro.errors import SimulationError
from repro.memory.batch_sim import simulate_vectorized
from repro.memory.spm import ScratchpadMemory
from repro.memory.stream_sim import (
    ChunkState,
    finalize_state,
    merge_states,
    scan_chunk,
    simulate_streaming,
    _chunk_arrays,
    _slot_arrays_for,
)
from repro.trace.binio import open_binary, save_binary
from repro.trace.synthetic import markov_trace

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def _problem(num_ports: int, policy: PortPolicy, seed: int = 3):
    trace = markov_trace(14, 500, seed=seed)
    config = DWMConfig(
        words_per_dbc=8,
        num_dbcs=3,
        port_offsets=tuple(range(num_ports)) if num_ports > 1 else None,
        port_policy=policy,
    )
    problem = build_problem(trace, config)
    return trace, config, declaration_order_placement(problem)


@pytest.fixture
def fresh_pools():
    pool_mod.shutdown_pools()
    yield
    pool_mod.shutdown_pools()


class TestBitIdentity:
    @pytest.mark.parametrize("num_ports", [1, 2, 3])
    @pytest.mark.parametrize("policy", [PortPolicy.LAZY, PortPolicy.EAGER])
    @pytest.mark.parametrize("chunk_size", [1, 7, 500, 600])
    def test_matches_vectorized(self, num_ports, policy, chunk_size):
        trace, config, placement = _problem(num_ports, policy)
        reference = simulate_vectorized(trace, config, placement)
        for force_merge in (False, True):
            result = simulate_streaming(
                trace,
                config,
                placement,
                chunk_size=chunk_size,
                force_merge=force_merge,
            )
            assert result.shifts == reference.shifts
            assert result.per_dbc_shifts == reference.per_dbc_shifts
            assert result.max_access_shifts == reference.max_access_shifts
            assert (result.reads, result.writes) == (
                reference.reads,
                reference.writes,
            )

    def test_streaming_trace_input(self, tmp_path):
        trace, config, placement = _problem(2, PortPolicy.LAZY)
        path = tmp_path / "t.rtb"
        save_binary(trace, path)
        reference = simulate_vectorized(trace, config, placement)
        result = simulate_streaming(
            open_binary(path), config, placement, chunk_size=97
        )
        assert result.shifts == reference.shifts
        assert result.per_dbc_shifts == reference.per_dbc_shifts
        assert result.details["engine"] == "streaming"
        assert result.details["num_chunks"] == (500 + 96) // 97

    def test_empty_trace_chunks(self, tmp_path):
        from repro.trace.binio import pack

        path = tmp_path / "e.rtb"
        pack([("x", "R")], path)
        stream = open_binary(path)
        config = DWMConfig(words_per_dbc=4, num_dbcs=1)
        problem = build_problem(stream.to_trace(), config)
        placement = declaration_order_placement(problem)
        result = simulate_streaming(stream, config, placement, chunk_size=10)
        assert result.shifts == 0 or result.shifts > 0  # runs cleanly
        assert result.accesses == 1

    def test_chunk_size_validated(self):
        trace, config, placement = _problem(1, PortPolicy.LAZY)
        with pytest.raises(SimulationError, match="chunk_size"):
            simulate_streaming(trace, config, placement, chunk_size=0)


class TestMergeAlgebra:
    def _states(self, trace, config, placement, cuts):
        items = tuple(trace.items)
        dbc_of, offset_of = _slot_arrays_for(items, placement)
        bounds = list(zip([0] + cuts, cuts + [len(trace)]))
        return [
            scan_chunk(
                *_chunk_arrays(trace, start, stop), config, dbc_of, offset_of
            )
            for start, stop in bounds
            if stop > start
        ]

    @pytest.mark.parametrize("policy", [PortPolicy.LAZY, PortPolicy.EAGER])
    def test_fold_is_associative(self, policy):
        trace, config, placement = _problem(2, policy, seed=11)
        reference = simulate_vectorized(trace, config, placement)
        rng = random.Random(77)
        for _ in range(5):
            cuts = sorted(rng.sample(range(1, len(trace)), 4))
            states = self._states(trace, config, placement, cuts)
            left = functools.reduce(merge_states, states)
            right = functools.reduce(
                lambda a, b: merge_states(b, a), reversed(states)
            )
            # A random interior bracketing: fold a middle run first.
            lo, hi = sorted(rng.sample(range(len(states)), 2))
            middle = functools.reduce(merge_states, states[lo : hi + 1])
            mixed = functools.reduce(
                merge_states, states[: lo] + [middle] + states[hi + 1 :]
            )
            for folded in (left, right, mixed):
                per_dbc, total, max_access = finalize_state(folded, config)
                assert total == reference.shifts
                assert tuple(per_dbc) == reference.per_dbc_shifts
                assert max_access == reference.max_access_shifts

    def test_empty_state_is_identity(self):
        trace, config, placement = _problem(2, PortPolicy.LAZY)
        states = self._states(trace, config, placement, [250])
        empty = ChunkState(
            policy=config.port_policy.value,
            ports=config.port_offsets,
            accesses=0,
            writes=0,
            dbcs={},
        )
        assert merge_states(empty, states[0]) is states[0]
        assert merge_states(states[0], empty) is states[0]

    def test_mismatched_configs_refuse_to_merge(self):
        trace, config, placement = _problem(2, PortPolicy.LAZY)
        lazy = self._states(trace, config, placement, [250])[0]
        eager_config = DWMConfig(
            words_per_dbc=8,
            num_dbcs=3,
            port_offsets=config.port_offsets,
            port_policy=PortPolicy.EAGER,
        )
        eager = self._states(trace, eager_config, placement, [250])[0]
        with pytest.raises(SimulationError, match="different configurations"):
            merge_states(lazy, eager)


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
class TestParallel:
    def test_pool_scan_matches_sequential(self, tmp_path, fresh_pools):
        trace, config, placement = _problem(2, PortPolicy.LAZY, seed=21)
        path = tmp_path / "p.rtb"
        save_binary(trace, path)
        stream = open_binary(path)
        sequential = simulate_streaming(stream, config, placement, chunk_size=60)
        parallel = simulate_streaming(
            stream, config, placement, chunk_size=60, jobs=2
        )
        assert parallel.details["mode"] == "parallel"
        assert parallel.shifts == sequential.shifts
        assert parallel.per_dbc_shifts == sequential.per_dbc_shifts
        assert parallel.max_access_shifts == sequential.max_access_shifts

    def test_in_memory_trace_ships_arrays(self, fresh_pools):
        trace, config, placement = _problem(3, PortPolicy.LAZY, seed=22)
        reference = simulate_vectorized(trace, config, placement)
        parallel = simulate_streaming(
            trace, config, placement, chunk_size=50, jobs=2
        )
        assert parallel.details["mode"] == "parallel"
        assert parallel.shifts == reference.shifts

    def test_spawn_start_method_parity(self, tmp_path, fresh_pools, monkeypatch):
        monkeypatch.setenv(MP_START_ENV, "spawn")
        trace, config, placement = _problem(2, PortPolicy.LAZY, seed=23)
        path = tmp_path / "s.rtb"
        save_binary(trace, path)
        reference = simulate_vectorized(trace, config, placement)
        parallel = simulate_streaming(
            open_binary(path), config, placement, chunk_size=70, jobs=2
        )
        assert parallel.shifts == reference.shifts
        assert parallel.per_dbc_shifts == reference.per_dbc_shifts


class TestScratchpadIntegration:
    def test_streaming_engine_selectable(self):
        trace, config, placement = _problem(2, PortPolicy.LAZY)
        spm = ScratchpadMemory(config, placement)
        reference = spm.simulate(trace, engine="vectorized")
        streamed = spm.simulate(trace, engine="streaming", chunk_size=64)
        assert streamed.shifts == reference.shifts
        assert streamed.details["engine"] == "streaming"

    def test_streaming_trace_auto_routes(self, tmp_path):
        trace, config, placement = _problem(1, PortPolicy.LAZY)
        path = tmp_path / "a.rtb"
        save_binary(trace, path)
        spm = ScratchpadMemory(config, placement)
        result = spm.simulate(open_binary(path))
        assert result.details["engine"] == "streaming"
        assert result.shifts == spm.simulate(trace, engine="vectorized").shifts

    def test_streaming_trace_rejects_in_memory_engines(self, tmp_path):
        trace, config, placement = _problem(1, PortPolicy.LAZY)
        path = tmp_path / "b.rtb"
        save_binary(trace, path)
        spm = ScratchpadMemory(config, placement)
        with pytest.raises(SimulationError, match="in-memory trace"):
            spm.simulate(open_binary(path), engine="vectorized")

    def test_fault_model_unsupported(self):
        from repro.dwm.faults import FaultModel

        trace, config, placement = _problem(1, PortPolicy.LAZY)
        spm = ScratchpadMemory(config, placement)
        with pytest.raises(SimulationError, match="fault injection"):
            spm.simulate(
                trace, engine="streaming", fault_model=FaultModel(seed=1)
            )

    def test_unknown_engine_message_lists_streaming(self):
        trace, config, placement = _problem(1, PortPolicy.LAZY)
        spm = ScratchpadMemory(config, placement)
        with pytest.raises(SimulationError, match="unknown simulation engine"):
            spm.simulate(trace, engine="warp")
