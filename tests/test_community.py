"""Unit tests for the community-detection grouping comparator."""

import pytest

from repro.core.api import optimize_placement
from repro.core.community import (
    affinity_to_networkx,
    community_groups,
    community_placement,
)
from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig
from repro.errors import OptimizationError
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace


@pytest.fixture
def clustered_problem():
    """Two strongly-coupled item cliques with one weak cross link."""
    sequence = []
    for _ in range(20):
        sequence.extend(["a1", "a2", "a3"])
    for _ in range(20):
        sequence.extend(["b1", "b2", "b3"])
    sequence.extend(["a1", "b1"])  # weak bridge
    trace = AccessTrace(sequence)
    config = DWMConfig(words_per_dbc=4, num_dbcs=2, port_offsets=(0,))
    return PlacementProblem(trace=trace, config=config)


class TestAffinityToNetworkx:
    def test_nodes_and_weights(self, clustered_problem):
        graph = affinity_to_networkx(clustered_problem)
        assert set(graph.nodes) == set(clustered_problem.items)
        assert graph["a1"]["a2"]["weight"] >= 19

    def test_no_self_loops(self, clustered_problem):
        graph = affinity_to_networkx(clustered_problem)
        assert all(u != v for u, v in graph.edges)


class TestCommunityGroups:
    def test_cliques_stay_together(self, clustered_problem):
        groups = community_groups(clustered_problem)
        group_of = {
            item: index for index, group in enumerate(groups) for item in group
        }
        assert group_of["a1"] == group_of["a2"] == group_of["a3"]
        assert group_of["b1"] == group_of["b2"] == group_of["b3"]
        assert group_of["a1"] != group_of["b1"]

    def test_respects_capacity(self):
        trace = markov_trace(20, 300, locality=0.9, seed=3)
        config = DWMConfig(words_per_dbc=4, num_dbcs=5, port_offsets=(0,))
        problem = PlacementProblem(trace=trace, config=config)
        groups = community_groups(problem)
        assert all(len(group) <= 4 for group in groups)
        placed = sorted(item for group in groups for item in group)
        assert placed == sorted(problem.items)

    def test_capacity_violation_raises(self, clustered_problem):
        with pytest.raises(OptimizationError):
            community_groups(clustered_problem, num_groups=1)


class TestCommunityPlacement:
    def test_valid_placement(self, clustered_problem):
        placement = community_placement(clustered_problem)
        placement.validate(
            clustered_problem.config, clustered_problem.items
        )

    def test_registered_in_api(self):
        trace = markov_trace(12, 250, locality=0.85, seed=4)
        result = optimize_placement(trace, words_per_dbc=8, method="community")
        assert result.method == "community"
        assert result.total_shifts >= 0

    def test_deterministic(self, clustered_problem):
        assert community_placement(clustered_problem) == community_placement(
            clustered_problem
        )

    def test_cluster_chains_ordered_contiguously(self, clustered_problem):
        """Within each community the ordering phase makes the cycle short.

        The a-clique cycles a1→a2→a3→a1; chain ordering must place the three
        items on consecutive offsets so each cycle costs 1+1+2 shifts rather
        than arbitrary jumps.
        """
        placement = community_placement(clustered_problem)
        offsets = sorted(
            placement[item].offset for item in ("a1", "a2", "a3")
        )
        assert offsets == list(range(offsets[0], offsets[0] + 3))
