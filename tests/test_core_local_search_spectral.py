"""Unit tests for local search refinements and the spectral comparator."""

import pytest

from repro.core.baselines import declaration_order_placement, random_placement
from repro.core.cost import evaluate_placement
from repro.core.local_search import (
    simulated_annealing,
    swap_refinement,
    two_opt_refinement,
)
from repro.core.problem import PlacementProblem
from repro.core.spectral import fiedler_order, spectral_placement
from repro.dwm.config import DWMConfig
from repro.errors import OptimizationError
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace


@pytest.fixture
def problem():
    trace = markov_trace(10, 250, locality=0.85, seed=17)
    config = DWMConfig(words_per_dbc=8, num_dbcs=2, port_offsets=(0,))
    return PlacementProblem(trace=trace, config=config)


class TestSwapRefinement:
    def test_never_worse(self, problem):
        start = random_placement(problem, 1)
        refined = swap_refinement(problem, start)
        assert evaluate_placement(problem, refined) <= evaluate_placement(
            problem, start
        )

    def test_improves_bad_start(self, problem):
        start = random_placement(problem, 1)
        refined = swap_refinement(problem, start)
        assert evaluate_placement(problem, refined) < evaluate_placement(
            problem, start
        )

    def test_respects_budget(self, problem):
        start = random_placement(problem, 2)
        # A budget of 1 evaluation (the initial one) means no moves tried.
        refined = swap_refinement(problem, start, max_evaluations=1)
        assert refined == start

    def test_valid_output(self, problem):
        refined = swap_refinement(problem, random_placement(problem, 3))
        refined.validate(problem.config, problem.items)


class TestTwoOptRefinement:
    def test_never_worse(self, problem):
        start = declaration_order_placement(problem)
        refined = two_opt_refinement(problem, start)
        assert evaluate_placement(problem, refined) <= evaluate_placement(
            problem, start
        )

    def test_fixes_reversed_stream(self):
        # Stream 0..9 placed in reverse: 2-opt should recover most of it.
        sequence = [f"v{k}" for k in range(8)] * 10
        trace = AccessTrace(sequence)
        config = DWMConfig(words_per_dbc=8, num_dbcs=1, port_offsets=(0,))
        problem = PlacementProblem(trace=trace, config=config)
        from repro.core.placement import Placement

        reverse = Placement(
            {f"v{k}": (0, 7 - k) for k in range(8)}
        )
        refined = two_opt_refinement(problem, reverse)
        assert evaluate_placement(problem, refined) < evaluate_placement(
            problem, reverse
        )

    def test_valid_output(self, problem):
        refined = two_opt_refinement(problem, random_placement(problem, 4))
        refined.validate(problem.config, problem.items)


class TestSimulatedAnnealing:
    def test_never_worse_than_start(self, problem):
        start = declaration_order_placement(problem)
        annealed = simulated_annealing(
            problem, start, seed=0, max_evaluations=2000
        )
        assert evaluate_placement(problem, annealed) <= evaluate_placement(
            problem, start
        )

    def test_deterministic_per_seed(self, problem):
        start = declaration_order_placement(problem)
        first = simulated_annealing(problem, start, seed=5, max_evaluations=500)
        second = simulated_annealing(problem, start, seed=5, max_evaluations=500)
        assert first == second

    def test_invalid_cooling_raises(self, problem):
        start = declaration_order_placement(problem)
        with pytest.raises(OptimizationError):
            simulated_annealing(problem, start, cooling=1.5)

    def test_single_item_noop(self):
        trace = AccessTrace(["a", "a"])
        config = DWMConfig(words_per_dbc=4, num_dbcs=1)
        problem = PlacementProblem(trace=trace, config=config)
        from repro.core.placement import Placement

        start = Placement({"a": (0, 0)})
        assert simulated_annealing(problem, start) == start


class TestSpectral:
    def test_fiedler_order_groups_affine_items(self):
        # Two cliques joined by one weak edge: the order must not interleave.
        affinity = {
            ("a", "b"): 10, ("b", "c"): 10, ("a", "c"): 10,
            ("x", "y"): 10, ("y", "z"): 10, ("x", "z"): 10,
            ("c", "x"): 1,
        }
        order = fiedler_order(["a", "b", "c", "x", "y", "z"], affinity)
        first_half = set(order[:3])
        assert first_half in ({"a", "b", "c"}, {"x", "y", "z"})

    def test_fiedler_trivial_sizes(self):
        assert fiedler_order(["a"], {}) == ["a"]
        assert fiedler_order(["a", "b"], {}) == ["a", "b"]

    def test_spectral_placement_valid(self, problem):
        placement = spectral_placement(problem)
        placement.validate(problem.config, problem.items)

    def test_spectral_beats_random_on_locality(self, problem):
        spectral_cost = evaluate_placement(problem, spectral_placement(problem))
        random_cost = evaluate_placement(problem, random_placement(problem, 0))
        assert spectral_cost < random_cost

    def test_disconnected_components_handled(self):
        trace = AccessTrace(["a", "b"] * 5 + ["x", "y"] * 5)
        config = DWMConfig(words_per_dbc=4, num_dbcs=1)
        problem = PlacementProblem(trace=trace, config=config)
        placement = spectral_placement(problem)
        placement.validate(problem.config, problem.items)
