"""Unit tests for repro.core.reordering (shift-aware access scheduling)."""

from collections import defaultdict

import pytest

from repro.core.api import build_problem, optimize_placement
from repro.core.cost import evaluate_placement
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.core.reordering import reorder_accesses
from repro.dwm.config import DWMConfig
from repro.errors import OptimizationError
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace


def per_item_subsequences(trace: AccessTrace) -> dict:
    sequences = defaultdict(list)
    for access in trace:
        sequences[access.item].append(access.kind)
    return dict(sequences)


@pytest.fixture
def placed():
    trace = markov_trace(12, 300, locality=0.8, seed=61, write_fraction=0.3)
    config = DWMConfig(words_per_dbc=8, num_dbcs=2, port_offsets=(0,))
    problem = build_problem(trace, config)
    placement = optimize_placement(trace, config, method="heuristic").placement
    return problem, placement


class TestInvariant:
    def test_window_one_is_identity(self, placed):
        problem, placement = placed
        result = reorder_accesses(problem, placement, window=1)
        assert result.trace == problem.trace
        assert result.total_shifts == result.original_shifts

    def test_per_item_order_preserved(self, placed):
        problem, placement = placed
        result = reorder_accesses(problem, placement, window=16)
        assert per_item_subsequences(result.trace) == per_item_subsequences(
            problem.trace
        )

    def test_same_multiset_of_accesses(self, placed):
        problem, placement = placed
        result = reorder_accesses(problem, placement, window=16)
        assert sorted(a.item for a in result.trace) == sorted(
            a.item for a in problem.trace
        )

    def test_never_worse_than_original(self, placed):
        problem, placement = placed
        for window in (2, 4, 8, 32):
            result = reorder_accesses(problem, placement, window=window)
            assert result.total_shifts <= result.original_shifts

    def test_reported_cost_is_exact(self, placed):
        problem, placement = placed
        result = reorder_accesses(problem, placement, window=8)
        reordered_problem = PlacementProblem(
            trace=result.trace, config=problem.config
        )
        assert result.total_shifts == evaluate_placement(
            reordered_problem, placement, validate=False
        )

    def test_invalid_window_raises(self, placed):
        problem, placement = placed
        with pytest.raises(OptimizationError):
            reorder_accesses(problem, placement, window=0)


class TestBehaviour:
    def test_interleaved_streams_get_separated(self):
        # Two interleaved streams on one DBC: program order ping-pongs
        # between distant slots; the scheduler batches each stream.
        sequence = []
        for k in range(8):
            sequence.append(f"a{k}")
            sequence.append(f"b{k}")
        trace = AccessTrace(sequence)
        config = DWMConfig(words_per_dbc=16, num_dbcs=1, port_offsets=(0,))
        problem = build_problem(trace, config)
        mapping = {f"a{k}": (0, k) for k in range(8)}
        mapping.update({f"b{k}": (0, 8 + k) for k in range(8)})
        placement = Placement(mapping)
        result = reorder_accesses(problem, placement, window=16)
        assert result.total_shifts < result.original_shifts / 2

    def test_reduction_monotone_in_window_or_safe(self, placed):
        problem, placement = placed
        small = reorder_accesses(problem, placement, window=2)
        large = reorder_accesses(problem, placement, window=64)
        # Both are safe; the larger window is at least as good here.
        assert large.total_shifts <= small.total_shifts

    def test_deterministic(self, placed):
        problem, placement = placed
        first = reorder_accesses(problem, placement, window=8)
        second = reorder_accesses(problem, placement, window=8)
        assert first.trace == second.trace
        assert first.total_shifts == second.total_shifts

    def test_reduction_percent(self, placed):
        problem, placement = placed
        result = reorder_accesses(problem, placement, window=16)
        expected = 100.0 * (
            result.original_shifts - result.total_shifts
        ) / result.original_shifts
        assert result.reduction_percent == pytest.approx(expected)
