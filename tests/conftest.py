"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace, pingpong_trace


@pytest.fixture(autouse=True)
def _hermetic_perf_env(tmp_path, monkeypatch):
    """Keep tests independent of the user's cache/parallelism environment.

    CLI subcommands enable the persistent placement cache by default; point
    it at a per-test directory so runs never touch (or depend on)
    ``~/.cache/repro-dwm``, and neutralise ambient REPRO_* tuning knobs.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)


@pytest.fixture(autouse=True)
def _many_cpus(monkeypatch):
    """Pretend the host has 8 CPUs so the jobs cap never serialises tests.

    ``resolve_jobs`` caps at the logical CPU count; on small CI hosts that
    would silently turn every ``jobs=4`` determinism/pool test into a
    serial run.  The cap itself is tested explicitly by patching this same
    seam the other way (see ``tests/test_parallel.py``).
    """
    from repro.analysis import parallel

    monkeypatch.setattr(parallel, "_cpu_count", lambda: 8)


@pytest.fixture
def single_dbc_config() -> DWMConfig:
    """One DBC of 8 words, single port at offset 4 (uniform default)."""
    return DWMConfig(words_per_dbc=8, num_dbcs=1)


@pytest.fixture
def small_config() -> DWMConfig:
    """Four DBCs of 8 words each, single centred port."""
    return DWMConfig(words_per_dbc=8, num_dbcs=4)


@pytest.fixture
def multiport_config() -> DWMConfig:
    """One DBC of 16 words with two uniform ports."""
    return DWMConfig.with_uniform_ports(words_per_dbc=16, num_dbcs=1, num_ports=2)


@pytest.fixture
def tiny_trace() -> AccessTrace:
    """Five accesses over three items, mixed reads/writes."""
    return AccessTrace(
        [("a", "R"), ("b", "W"), ("a", "R"), ("c", "R"), ("b", "R")],
        name="tiny",
    )


@pytest.fixture
def locality_trace() -> AccessTrace:
    """A locality-rich Markov trace (16 items, 400 accesses)."""
    return markov_trace(16, 400, locality=0.85, seed=42)


@pytest.fixture
def pingpong() -> AccessTrace:
    """Strictly alternating pairs — adversarial for naive placement."""
    return pingpong_trace(num_pairs=3, rounds=16)


@pytest.fixture
def locality_problem(locality_trace) -> PlacementProblem:
    """The locality trace on a 2-DBC, 8-word array."""
    config = DWMConfig(words_per_dbc=8, num_dbcs=2)
    return PlacementProblem(trace=locality_trace, config=config)
