"""Differential tests: vectorized engine vs scalar engine vs evaluator.

The vectorized engine must be *bit-identical* to the scalar
``DWMArrayModel`` replay — total shifts, per-DBC shifts,
``max_access_shifts``, read/write counts — on every port-count × policy
combination, and its total must also match the reference
:func:`repro.core.cost.evaluate_placement`.
"""

from __future__ import annotations

import pytest

from repro.core.api import build_problem
from repro.core.baselines import random_placement
from repro.core.cost import evaluate_placement
from repro.core.placement import Placement
from repro.dwm.config import DWMConfig
from repro.errors import SimulationError
from repro.memory.batch_sim import (
    BatchSimulator,
    ResolvedTrace,
    batch_simulate,
    simulate_vectorized,
)
from repro.memory.spm import VECTORIZED_MIN_ACCESSES, ScratchpadMemory
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace, pingpong_trace, zipf_trace

PORT_COUNTS = (1, 2, 3)
POLICIES = ("lazy", "eager")


def _assert_identical(scalar, vectorized):
    assert vectorized.shifts == scalar.shifts
    assert vectorized.per_dbc_shifts == scalar.per_dbc_shifts
    assert vectorized.max_access_shifts == scalar.max_access_shifts
    assert vectorized.reads == scalar.reads
    assert vectorized.writes == scalar.writes
    assert vectorized.trace_name == scalar.trace_name
    assert vectorized.config_description == scalar.config_description


def _config_for(trace, words_per_dbc, num_ports, policy):
    return DWMConfig.for_items(
        trace.num_items,
        words_per_dbc=words_per_dbc,
        num_ports=num_ports,
        port_policy=policy,
    )


class TestDifferential:
    @pytest.mark.parametrize("num_ports", PORT_COUNTS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_markov_all_port_policy_combos(self, num_ports, policy):
        trace = markov_trace(40, 2500, locality=0.8, seed=11)
        config = _config_for(trace, 16, num_ports, policy)
        problem = build_problem(trace, config)
        for seed in (0, 1):
            placement = random_placement(problem, seed=seed)
            spm = ScratchpadMemory(config, placement)
            scalar = spm.simulate(trace, engine="scalar")
            vectorized = spm.simulate(trace, engine="vectorized")
            _assert_identical(scalar, vectorized)
            assert vectorized.shifts == evaluate_placement(problem, placement)

    @pytest.mark.parametrize("num_ports", PORT_COUNTS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_zipf_skewed_trace(self, num_ports, policy):
        trace = zipf_trace(30, 1500, seed=5)
        config = _config_for(trace, 8, num_ports, policy)
        placement = random_placement(build_problem(trace, config), seed=3)
        scalar = ScratchpadMemory(config, placement).simulate(trace, engine="scalar")
        vectorized = simulate_vectorized(trace, config, placement)
        _assert_identical(scalar, vectorized)

    def test_pingpong_adversarial(self):
        trace = pingpong_trace(num_pairs=4, rounds=50)
        config = _config_for(trace, 8, 1, "lazy")
        placement = random_placement(build_problem(trace, config), seed=0)
        scalar = ScratchpadMemory(config, placement).simulate(trace, engine="scalar")
        vectorized = simulate_vectorized(trace, config, placement)
        _assert_identical(scalar, vectorized)

    def test_non_uniform_port_layout(self):
        """Hand-placed (asymmetric) ports, including one at offset 0."""
        trace = markov_trace(12, 800, seed=2)
        config = DWMConfig(
            words_per_dbc=12,
            num_dbcs=1,
            port_offsets=(0, 5, 11),
        )
        placement = Placement(
            {item: (0, position) for position, item in enumerate(trace.items)}
        )
        scalar = ScratchpadMemory(config, placement).simulate(trace, engine="scalar")
        vectorized = simulate_vectorized(trace, config, placement)
        _assert_identical(scalar, vectorized)

    def test_tiny_traces(self, tiny_trace, small_config):
        placement = Placement({"a": (0, 0), "b": (1, 3), "c": (0, 7)})
        scalar = ScratchpadMemory(small_config, placement).simulate(
            tiny_trace, engine="scalar"
        )
        vectorized = simulate_vectorized(tiny_trace, small_config, placement)
        _assert_identical(scalar, vectorized)

    def test_single_access_trace(self, single_dbc_config):
        trace = AccessTrace([("x", "W")], name="one")
        placement = Placement({"x": (0, 7)})
        scalar = ScratchpadMemory(single_dbc_config, placement).simulate(
            trace, engine="scalar"
        )
        vectorized = simulate_vectorized(trace, single_dbc_config, placement)
        _assert_identical(scalar, vectorized)
        assert vectorized.shifts == 3  # |7 - port@4|


class TestBatchAPI:
    def test_batch_simulator_matches_one_shot(self):
        trace = markov_trace(24, 1200, seed=9)
        simulator = BatchSimulator(trace)
        for num_ports in (1, 2):
            config = _config_for(trace, 8, num_ports, "lazy")
            placement = random_placement(build_problem(trace, config), seed=1)
            batch_result = simulator.simulate(config, placement)
            one_shot = simulate_vectorized(trace, config, placement)
            assert batch_result.shifts == one_shot.shifts
            assert batch_result.per_dbc_shifts == one_shot.per_dbc_shifts

    def test_batch_simulate_preserves_run_order(self):
        trace = markov_trace(20, 600, seed=4)
        runs = []
        for words_per_dbc in (8, 16):
            config = _config_for(trace, words_per_dbc, 1, "lazy")
            placement = random_placement(build_problem(trace, config), seed=0)
            runs.append((config, placement))
        results = batch_simulate(trace, runs)
        assert [r.config_description for r in results] == [
            config.describe() for config, _ in runs
        ]

    def test_resolution_amortized(self):
        """The batch API reports resolve cost once, then zero."""
        trace = markov_trace(16, 500, seed=6)
        config = _config_for(trace, 8, 1, "lazy")
        placement = random_placement(build_problem(trace, config), seed=0)
        simulator = BatchSimulator(trace)
        first = simulator.simulate(config, placement)
        second = simulator.simulate(config, placement)
        assert first.details["resolve_seconds"] >= 0.0
        assert second.details["resolve_seconds"] == 0.0

    def test_resolved_trace_counts(self):
        trace = markov_trace(10, 300, write_fraction=0.4, seed=8)
        resolved = ResolvedTrace(trace)
        reads, writes = trace.read_write_counts()
        assert resolved.reads == reads
        assert resolved.writes == writes
        assert resolved.item_at.shape == (len(trace),)


class TestEngineSelection:
    def test_auto_uses_scalar_below_threshold(self, tiny_trace, small_config):
        placement = Placement({"a": (0, 0), "b": (1, 3), "c": (0, 7)})
        result = ScratchpadMemory(small_config, placement).simulate(tiny_trace)
        assert result.details["engine"] == "scalar"

    def test_auto_uses_vectorized_above_threshold(self):
        trace = markov_trace(16, VECTORIZED_MIN_ACCESSES, seed=1)
        config = _config_for(trace, 16, 1, "lazy")
        placement = random_placement(build_problem(trace, config), seed=0)
        result = ScratchpadMemory(config, placement).simulate(trace)
        assert result.details["engine"] == "vectorized"

    def test_unknown_engine_rejected(self, tiny_trace, small_config):
        placement = Placement({"a": (0, 0), "b": (1, 3), "c": (0, 7)})
        spm = ScratchpadMemory(small_config, placement)
        with pytest.raises(SimulationError, match="unknown simulation engine"):
            spm.simulate(tiny_trace, engine="quantum")

    def test_perf_counters_present(self):
        trace = markov_trace(16, 400, seed=0)
        config = _config_for(trace, 8, 1, "lazy")
        placement = random_placement(build_problem(trace, config), seed=0)
        result = simulate_vectorized(trace, config, placement)
        assert result.details["engine"] == "vectorized"
        assert result.details["resolve_seconds"] >= 0.0
        assert result.details["scan_seconds"] >= 0.0


class TestValidationCaching:
    def test_validate_called_once_per_trace(self, monkeypatch):
        """Satellite: repeated simulate* on one (trace, placement) pair
        must not re-validate or re-resolve every call."""
        trace = markov_trace(12, 300, seed=3)
        config = _config_for(trace, 8, 1, "lazy")
        placement = random_placement(build_problem(trace, config), seed=0)
        spm = ScratchpadMemory(config, placement)
        calls = []
        original = placement.validate
        monkeypatch.setattr(
            placement,
            "validate",
            lambda *args, **kwargs: (calls.append(1), original(*args, **kwargs))[1],
        )
        for _ in range(3):
            spm.simulate(trace, engine="scalar")
        for _ in range(3):
            spm.simulate(trace, engine="vectorized")
        spm.simulate_functional(trace)
        assert len(calls) == 1

    def test_invalid_placement_still_rejected(self, tiny_trace, small_config):
        incomplete = Placement({"a": (0, 0)})
        spm = ScratchpadMemory(small_config, incomplete)
        with pytest.raises(Exception):
            spm.simulate(tiny_trace, engine="vectorized")
