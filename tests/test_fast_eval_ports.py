"""Unit tests for the vectorised evaluator and port co-design."""

import pytest

from repro.core.api import build_problem, optimize_placement
from repro.core.baselines import declaration_order_placement, random_placement
from repro.core.cost import evaluate_placement
from repro.core.fast_eval import evaluate_placement_fast
from repro.dwm.config import DWMConfig, PortPolicy
from repro.dwm.ports import (
    access_histogram,
    co_design_ports,
    weighted_k_medians,
)
from repro.errors import OptimizationError, PlacementError
from repro.trace.kernels import fir_trace
from repro.trace.synthetic import markov_trace, zipf_trace


class TestFastEvaluator:
    @pytest.mark.parametrize("words,ports,policy", [
        (8, 1, PortPolicy.LAZY),
        (32, 1, PortPolicy.LAZY),
        (16, 2, PortPolicy.LAZY),       # falls back to the scalar path
        (16, 1, PortPolicy.EAGER),
        (16, 2, PortPolicy.EAGER),
    ])
    def test_agrees_with_scalar(self, words, ports, policy):
        trace = markov_trace(20, 600, locality=0.8, seed=71, write_fraction=0.3)
        config = DWMConfig.with_uniform_ports(
            words_per_dbc=words,
            num_dbcs=max(1, -(-trace.num_items // words)),
            num_ports=ports,
            port_policy=policy,
        )
        problem = build_problem(trace, config)
        for seed in range(4):
            placement = random_placement(problem, seed)
            assert evaluate_placement_fast(problem, placement) == (
                evaluate_placement(problem, placement)
            )

    def test_agrees_on_kernel_traces(self):
        trace = fir_trace()
        problem = build_problem(trace, words_per_dbc=16)
        placement = declaration_order_placement(problem)
        assert evaluate_placement_fast(problem, placement) == (
            evaluate_placement(problem, placement)
        )

    def test_validates_coverage(self):
        trace = markov_trace(5, 50, seed=1)
        problem = build_problem(trace, words_per_dbc=8)
        from repro.core.placement import Placement

        with pytest.raises(PlacementError):
            evaluate_placement_fast(problem, Placement({"v0": (0, 0)}))


class TestWeightedKMedians:
    def test_single_median_is_weighted_median(self):
        histogram = {0: 10, 5: 10, 15: 1}
        assert weighted_k_medians(histogram, 1, 16) == (5,)

    def test_two_medians_cover_clusters(self):
        histogram = {1: 50, 2: 50, 14: 50, 15: 50}
        ports = weighted_k_medians(histogram, 2, 16)
        assert len(ports) == 2
        assert min(ports) in (1, 2)
        assert max(ports) in (14, 15)

    def test_optimality_vs_brute_force(self):
        import itertools

        histogram = {0: 3, 3: 7, 6: 2, 7: 9}
        n, k = 8, 2
        best = min(
            (
                sum(
                    weight * min(abs(offset - p) for p in ports)
                    for offset, weight in histogram.items()
                ),
                ports,
            )
            for ports in itertools.combinations(range(n), k)
        )[0]
        chosen = weighted_k_medians(histogram, k, n)
        cost = sum(
            weight * min(abs(offset - p) for p in chosen)
            for offset, weight in histogram.items()
        )
        assert cost == best

    def test_more_ports_than_offsets(self):
        assert weighted_k_medians({0: 1}, 4, 3) == (0, 1, 2)

    def test_invalid_k_raises(self):
        with pytest.raises(OptimizationError):
            weighted_k_medians({}, 0, 8)

    def test_empty_histogram(self):
        ports = weighted_k_medians({}, 2, 8)
        assert len(ports) == 2
        assert all(0 <= p < 8 for p in ports)


class TestCoDesign:
    def test_never_worse_than_uniform(self):
        trace = zipf_trace(30, 800, alpha=1.3, seed=7)
        config, result = co_design_ports(trace, num_ports=2, words_per_dbc=32)
        uniform_config = DWMConfig.for_items(
            trace.num_items, words_per_dbc=32, num_ports=2
        )
        uniform = optimize_placement(trace, uniform_config, method="heuristic")
        assert result.total_shifts <= uniform.total_shifts
        assert config.num_ports == 2

    def test_histogram_totals(self):
        trace = markov_trace(10, 200, seed=2)
        problem = build_problem(trace, words_per_dbc=8)
        placement = declaration_order_placement(problem)
        histogram = access_histogram(problem, placement)
        total = sum(
            weight for per_dbc in histogram.values() for weight in per_dbc.values()
        )
        assert total == len(trace)

    def test_invalid_rounds_raise(self):
        trace = markov_trace(6, 60, seed=3)
        with pytest.raises(OptimizationError):
            co_design_ports(trace, rounds=0)
