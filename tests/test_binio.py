"""Tests for the memory-mapped binary trace format (repro.trace.binio).

Covers the format round trip (save → open → materialise must be the
identity, including the fingerprint), the windowed access surface the
streaming engine builds on, the bounded-size placement sample, pickling
by path (the pool-worker transport), and clean ``TraceError`` diagnostics
for every corruption mode a partial download or version skew can produce.
"""

from __future__ import annotations

import pickle
import struct

import pytest

from repro.errors import TraceError
from repro.trace.binio import (
    HEADER_SIZE,
    MAGIC,
    StreamingTrace,
    open_binary,
    pack,
    save_binary,
)
from repro.trace.model import AccessKind
from repro.trace.synthetic import markov_trace, zipf_trace


@pytest.fixture
def trace():
    return markov_trace(17, 400, seed=5)


@pytest.fixture
def packed(trace, tmp_path):
    path = tmp_path / "t.rtb"
    save_binary(trace, path)
    return path


class TestRoundTrip:
    def test_materialised_trace_is_identical(self, trace, packed):
        stream = open_binary(packed)
        back = stream.to_trace()
        assert back.name == trace.name
        assert back.items == trace.items
        assert len(back) == len(trace)
        assert [(a.item, a.kind) for a in back] == [
            (a.item, a.kind) for a in trace
        ]

    def test_fingerprint_matches_in_memory(self, trace, packed):
        stream = open_binary(packed)
        assert stream.fingerprint() == trace.fingerprint()
        assert stream.to_trace().fingerprint() == trace.fingerprint()

    def test_fingerprint_stable_across_repacks(self, trace, tmp_path):
        first, second = tmp_path / "a.rtb", tmp_path / "b.rtb"
        save_binary(trace, first)
        save_binary(trace, second)
        assert open_binary(first).fingerprint() == open_binary(second).fingerprint()

    def test_identity_surface(self, trace, packed):
        stream = open_binary(packed)
        assert len(stream) == stream.num_accesses == len(trace)
        assert stream.num_items == trace.num_items
        assert stream.metadata == {
            k: v for k, v in trace.metadata.items() if k in stream.metadata
        }
        reads, writes = stream.read_write_counts()
        assert reads == sum(a.kind is AccessKind.READ for a in trace)
        assert writes == sum(a.kind is AccessKind.WRITE for a in trace)
        assert "StreamingTrace" in repr(stream)

    def test_pack_accepts_kind_spellings(self, tmp_path):
        path = tmp_path / "k.rtb"
        count = pack(
            [("a", "r"), ("b", "READ"), ("a", "w"), ("c", "Write")],
            path,
            name="spellings",
        )
        assert count == 4
        stream = open_binary(path)
        assert stream.items == ("a", "b", "c")
        assert stream.read_write_counts() == (2, 2)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.rtb"
        assert pack([], path, name="void") == 0
        stream = open_binary(path)
        assert len(stream) == 0
        assert stream.items == ()
        assert stream.to_trace().num_items == 0

    def test_pack_rejects_bad_records(self, tmp_path):
        with pytest.raises(TraceError, match="unknown access kind"):
            pack([("a", "X")], tmp_path / "bad.rtb")
        with pytest.raises(TraceError, match="non-empty"):
            pack([("", "R")], tmp_path / "bad2.rtb")


class TestWindows:
    def test_window_carries_full_item_table(self, trace, packed):
        stream = open_binary(packed)
        window = stream.window(100, 150)
        assert window.items == trace.items  # indices are global
        assert [(a.item, a.kind) for a in window] == [
            (a.item, a.kind) for a in list(trace)[100:150]
        ]

    def test_chunk_arrays_bounds_checked(self, packed):
        stream = open_binary(packed)
        with pytest.raises(TraceError, match="outside trace"):
            stream.chunk_arrays(0, len(stream) + 1)
        with pytest.raises(TraceError, match="outside trace"):
            stream.chunk_arrays(-1, 2)

    def test_iter_chunks_covers_exactly(self, packed):
        stream = open_binary(packed)
        bounds = list(stream.iter_chunks(64))
        assert bounds[0][0] == 0
        assert bounds[-1][1] == len(stream)
        assert all(a1 == b0 for (_, a1), (b0, _) in zip(bounds, bounds[1:]))
        with pytest.raises(TraceError, match="chunk_size"):
            next(stream.iter_chunks(0))

    def test_sample_covers_every_item(self, tmp_path):
        big = zipf_trace(40, 5000, seed=9)
        path = tmp_path / "z.rtb"
        save_binary(big, path)
        sample = open_binary(path).sample_trace(target_accesses=300, windows=4)
        assert sample.items == big.items
        assert set(a.item for a in sample) == set(big.items)
        assert len(sample) <= 300 + big.num_items

    def test_small_trace_samples_to_itself(self, trace, packed):
        sample = open_binary(packed).sample_trace(target_accesses=10_000)
        assert sample.fingerprint() == trace.fingerprint()


class TestPickle:
    def test_round_trips_by_path(self, packed):
        stream = open_binary(packed)
        clone = pickle.loads(pickle.dumps(stream))
        assert isinstance(clone, StreamingTrace)
        assert clone.path == stream.path
        assert clone.fingerprint() == stream.fingerprint()
        assert len(clone) == len(stream)


class TestCorruption:
    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.rtb"
        path.write_bytes(b"REPROTRC")
        with pytest.raises(TraceError, match="truncated"):
            open_binary(path)

    def test_bad_magic(self, tmp_path, packed):
        raw = bytearray(packed.read_bytes())
        raw[:8] = b"NOTATRCE"
        bad = tmp_path / "magic.rtb"
        bad.write_bytes(raw)
        with pytest.raises(TraceError, match="bad magic"):
            open_binary(bad)

    def test_future_version(self, tmp_path, packed):
        raw = bytearray(packed.read_bytes())
        struct.pack_into("<I", raw, 8, 99)
        bad = tmp_path / "version.rtb"
        bad.write_bytes(raw)
        with pytest.raises(TraceError, match="version 99"):
            open_binary(bad)

    def test_truncated_records(self, tmp_path, packed):
        raw = packed.read_bytes()
        bad = tmp_path / "cut.rtb"
        bad.write_bytes(raw[: HEADER_SIZE + 12])
        with pytest.raises(TraceError, match="truncated"):
            open_binary(bad)

    def test_corrupt_meta_json(self, tmp_path, trace):
        path = tmp_path / "meta.rtb"
        save_binary(trace, path)
        raw = bytearray(path.read_bytes())
        meta_offset = struct.unpack_from("<Q", raw, 40)[0]
        raw[meta_offset] = ord("!")  # breaks the leading '{'
        path.write_bytes(raw)
        with pytest.raises(TraceError, match="corrupt meta"):
            open_binary(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            open_binary(tmp_path / "nope.rtb")

    def test_magic_constant_is_the_spec(self):
        assert MAGIC == b"REPROTRC"
        assert HEADER_SIZE == 128
