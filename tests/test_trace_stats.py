"""Unit tests for repro.trace.stats."""

import pytest

from repro.trace.model import AccessTrace
from repro.trace.stats import (
    AffinityMatrix,
    affinity_graph,
    compute_stats,
    hot_items,
    reuse_distances,
    shift_locality_score,
    transition_counts,
)


class TestAffinityGraph:
    def test_counts_unordered_pairs(self):
        trace = AccessTrace(["a", "b", "a", "b"])
        graph = affinity_graph(trace)
        assert graph == {("a", "b"): 3}

    def test_self_pairs_excluded_by_default(self):
        trace = AccessTrace(["a", "a", "b"])
        graph = affinity_graph(trace)
        assert ("a", "a") not in graph
        assert graph[("a", "b")] == 1

    def test_self_pairs_included_on_request(self):
        trace = AccessTrace(["a", "a"])
        graph = affinity_graph(trace, include_self_pairs=True)
        assert graph[("a", "a")] == 1

    def test_key_is_sorted(self):
        trace = AccessTrace(["b", "a"])
        assert list(affinity_graph(trace)) == [("a", "b")]

    def test_empty_trace(self):
        assert affinity_graph(AccessTrace([])) == {}

    def test_total_mass_is_nonself_transitions(self):
        trace = AccessTrace(["a", "b", "c", "b", "b", "a"])
        graph = affinity_graph(trace)
        # transitions: ab bc cb bb ba -> 4 non-self
        assert sum(graph.values()) == 4


class TestTransitionCounts:
    def test_keeps_direction(self):
        trace = AccessTrace(["a", "b", "a"])
        counts = transition_counts(trace)
        assert counts[("a", "b")] == 1
        assert counts[("b", "a")] == 1

    def test_keeps_self_pairs(self):
        trace = AccessTrace(["a", "a"])
        assert transition_counts(trace) == {("a", "a"): 1}


class TestReuseDistances:
    def test_immediate_reuse_distance_zero(self):
        assert reuse_distances(AccessTrace(["a", "a"])) == [0]

    def test_one_item_between(self):
        assert reuse_distances(AccessTrace(["a", "b", "a"])) == [1]

    def test_cold_misses_excluded(self):
        assert reuse_distances(AccessTrace(["a", "b", "c"])) == []

    def test_lru_stack_semantics(self):
        # a b c b a: b reused at distance 1, a reused at distance 2 (c,b seen)
        assert reuse_distances(AccessTrace(["a", "b", "c", "b", "a"])) == [1, 2]


class TestComputeStats:
    def test_basic_fields(self, tiny_trace):
        stats = compute_stats(tiny_trace)
        assert stats.num_accesses == 5
        assert stats.num_items == 3
        assert stats.reads == 4
        assert stats.writes == 1
        assert stats.name == "tiny"

    def test_write_fraction(self, tiny_trace):
        assert compute_stats(tiny_trace).write_fraction == pytest.approx(0.2)

    def test_accesses_per_item(self, tiny_trace):
        assert compute_stats(tiny_trace).accesses_per_item == pytest.approx(5 / 3)

    def test_top_item(self):
        trace = AccessTrace(["a", "a", "b"])
        stats = compute_stats(trace)
        assert stats.top_item == "a"
        assert stats.max_item_frequency == 2

    def test_empty_reuse_stats_zero(self):
        stats = compute_stats(AccessTrace(["a", "b"]))
        assert stats.mean_reuse_distance == 0.0


class TestAffinityMatrix:
    def test_from_trace_weights(self):
        trace = AccessTrace(["a", "b", "a", "c"])
        matrix = AffinityMatrix.from_trace(trace)
        ia, ib, ic = (matrix.index[x] for x in "abc")
        assert matrix.weight(ia, ib) == 2
        assert matrix.weight(ia, ic) == 1
        assert matrix.weight(ib, ic) == 0

    def test_weight_symmetric(self):
        trace = AccessTrace(["a", "b"])
        matrix = AffinityMatrix.from_trace(trace)
        assert matrix.weight(0, 1) == matrix.weight(1, 0)

    def test_to_numpy(self):
        import numpy as np

        trace = AccessTrace(["a", "b", "a"])
        dense = AffinityMatrix.from_trace(trace).to_numpy()
        assert dense.shape == (2, 2)
        assert np.allclose(dense, dense.T)
        assert dense[0, 1] == 2

    def test_neighbor_weights(self):
        trace = AccessTrace(["a", "b", "a", "c"])
        matrix = AffinityMatrix.from_trace(trace)
        neighbors = matrix.neighbor_weights(matrix.index["a"])
        assert neighbors == {matrix.index["b"]: 2, matrix.index["c"]: 1}

    def test_num_items(self, tiny_trace):
        assert AffinityMatrix.from_trace(tiny_trace).num_items == 3


class TestHotItems:
    def test_sorted_by_frequency(self):
        trace = AccessTrace(["a", "b", "b", "c", "c", "c"])
        assert hot_items(trace) == ["c", "b", "a"]

    def test_ties_break_first_touch(self):
        trace = AccessTrace(["b", "a", "b", "a"])
        assert hot_items(trace) == ["b", "a"]


class TestShiftLocalityScore:
    def test_empty_trace_zero(self):
        assert shift_locality_score(AccessTrace([])) == 0.0

    def test_concentrated_transitions_score_high(self):
        concentrated = AccessTrace(["a", "b"] * 50)
        assert shift_locality_score(concentrated) == 1.0

    def test_score_bounded(self, locality_trace):
        score = shift_locality_score(locality_trace)
        assert 0.0 <= score <= 1.0


def _stack_walk_reuse_distances(trace):
    """The original O(n^2) LRU-stack implementation, kept as a test oracle."""
    stack = []
    distances = []
    for access in trace:
        item = access.item
        if item in stack:
            index = stack.index(item)
            distances.append(index)
            stack.pop(index)
        stack.insert(0, item)
    return distances


class TestReuseDistancesDifferential:
    """The Fenwick-tree rewrite must match the old stack walk exactly."""

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_stack_walk_on_random_traces(self, seed):
        import random

        rng = random.Random(seed)
        items = [f"i{k}" for k in range(rng.randint(2, 12))]
        trace = AccessTrace(
            [rng.choice(items) for _ in range(rng.randint(1, 300))]
        )
        assert reuse_distances(trace) == _stack_walk_reuse_distances(trace)

    def test_matches_stack_walk_on_pathological_trace(self):
        # Single hot item with a long cold tail in between: the pattern
        # that made the quadratic scan hurt the most.
        sequence = (
            ["hot"] + [f"cold{k}" for k in range(50)] + ["hot"]
        ) * 3
        trace = AccessTrace(sequence)
        assert reuse_distances(trace) == _stack_walk_reuse_distances(trace)

    def test_empty_trace(self):
        assert reuse_distances(AccessTrace([])) == []


class TestMedianReuseDistance:
    def test_even_length_averages_middle_pair(self):
        # Distances are [0, 1]: a-a reused immediately, b reused past one
        # distinct item.  The median of an even-length list is the mean of
        # the two middle elements, not the upper one.
        trace = AccessTrace(["a", "a", "b", "a", "b"])
        distances = reuse_distances(trace)
        assert sorted(distances) == [0, 1, 1]  # sanity: odd case unchanged
        trace = AccessTrace(["a", "a", "b", "c", "b"])
        assert sorted(reuse_distances(trace)) == [0, 1]
        stats = compute_stats(trace)
        assert stats.median_reuse_distance == pytest.approx(0.5)

    def test_odd_length_still_middle_element(self):
        trace = AccessTrace(["a", "a", "b", "c", "b", "d", "c"])
        assert sorted(reuse_distances(trace)) == [0, 1, 2]
        stats = compute_stats(trace)
        assert stats.median_reuse_distance == pytest.approx(1.0)


class TestTopItemTieBreak:
    def test_count_ties_break_by_name(self):
        stats = compute_stats(AccessTrace(["b", "a", "b", "a"]))
        assert stats.top_item == "a"
        assert stats.max_item_frequency == 2

    def test_tie_break_independent_of_first_touch(self):
        first = compute_stats(AccessTrace(["z", "a", "z", "a"]))
        second = compute_stats(AccessTrace(["a", "z", "a", "z"]))
        assert first.top_item == second.top_item == "a"
