"""Unit tests for repro.trace.stats."""

import pytest

from repro.trace.model import AccessTrace
from repro.trace.stats import (
    AffinityMatrix,
    affinity_graph,
    compute_stats,
    hot_items,
    reuse_distances,
    shift_locality_score,
    transition_counts,
)


class TestAffinityGraph:
    def test_counts_unordered_pairs(self):
        trace = AccessTrace(["a", "b", "a", "b"])
        graph = affinity_graph(trace)
        assert graph == {("a", "b"): 3}

    def test_self_pairs_excluded_by_default(self):
        trace = AccessTrace(["a", "a", "b"])
        graph = affinity_graph(trace)
        assert ("a", "a") not in graph
        assert graph[("a", "b")] == 1

    def test_self_pairs_included_on_request(self):
        trace = AccessTrace(["a", "a"])
        graph = affinity_graph(trace, include_self_pairs=True)
        assert graph[("a", "a")] == 1

    def test_key_is_sorted(self):
        trace = AccessTrace(["b", "a"])
        assert list(affinity_graph(trace)) == [("a", "b")]

    def test_empty_trace(self):
        assert affinity_graph(AccessTrace([])) == {}

    def test_total_mass_is_nonself_transitions(self):
        trace = AccessTrace(["a", "b", "c", "b", "b", "a"])
        graph = affinity_graph(trace)
        # transitions: ab bc cb bb ba -> 4 non-self
        assert sum(graph.values()) == 4


class TestTransitionCounts:
    def test_keeps_direction(self):
        trace = AccessTrace(["a", "b", "a"])
        counts = transition_counts(trace)
        assert counts[("a", "b")] == 1
        assert counts[("b", "a")] == 1

    def test_keeps_self_pairs(self):
        trace = AccessTrace(["a", "a"])
        assert transition_counts(trace) == {("a", "a"): 1}


class TestReuseDistances:
    def test_immediate_reuse_distance_zero(self):
        assert reuse_distances(AccessTrace(["a", "a"])) == [0]

    def test_one_item_between(self):
        assert reuse_distances(AccessTrace(["a", "b", "a"])) == [1]

    def test_cold_misses_excluded(self):
        assert reuse_distances(AccessTrace(["a", "b", "c"])) == []

    def test_lru_stack_semantics(self):
        # a b c b a: b reused at distance 1, a reused at distance 2 (c,b seen)
        assert reuse_distances(AccessTrace(["a", "b", "c", "b", "a"])) == [1, 2]


class TestComputeStats:
    def test_basic_fields(self, tiny_trace):
        stats = compute_stats(tiny_trace)
        assert stats.num_accesses == 5
        assert stats.num_items == 3
        assert stats.reads == 4
        assert stats.writes == 1
        assert stats.name == "tiny"

    def test_write_fraction(self, tiny_trace):
        assert compute_stats(tiny_trace).write_fraction == pytest.approx(0.2)

    def test_accesses_per_item(self, tiny_trace):
        assert compute_stats(tiny_trace).accesses_per_item == pytest.approx(5 / 3)

    def test_top_item(self):
        trace = AccessTrace(["a", "a", "b"])
        stats = compute_stats(trace)
        assert stats.top_item == "a"
        assert stats.max_item_frequency == 2

    def test_empty_reuse_stats_zero(self):
        stats = compute_stats(AccessTrace(["a", "b"]))
        assert stats.mean_reuse_distance == 0.0


class TestAffinityMatrix:
    def test_from_trace_weights(self):
        trace = AccessTrace(["a", "b", "a", "c"])
        matrix = AffinityMatrix.from_trace(trace)
        ia, ib, ic = (matrix.index[x] for x in "abc")
        assert matrix.weight(ia, ib) == 2
        assert matrix.weight(ia, ic) == 1
        assert matrix.weight(ib, ic) == 0

    def test_weight_symmetric(self):
        trace = AccessTrace(["a", "b"])
        matrix = AffinityMatrix.from_trace(trace)
        assert matrix.weight(0, 1) == matrix.weight(1, 0)

    def test_to_numpy(self):
        import numpy as np

        trace = AccessTrace(["a", "b", "a"])
        dense = AffinityMatrix.from_trace(trace).to_numpy()
        assert dense.shape == (2, 2)
        assert np.allclose(dense, dense.T)
        assert dense[0, 1] == 2

    def test_neighbor_weights(self):
        trace = AccessTrace(["a", "b", "a", "c"])
        matrix = AffinityMatrix.from_trace(trace)
        neighbors = matrix.neighbor_weights(matrix.index["a"])
        assert neighbors == {matrix.index["b"]: 2, matrix.index["c"]: 1}

    def test_num_items(self, tiny_trace):
        assert AffinityMatrix.from_trace(tiny_trace).num_items == 3


class TestHotItems:
    def test_sorted_by_frequency(self):
        trace = AccessTrace(["a", "b", "b", "c", "c", "c"])
        assert hot_items(trace) == ["c", "b", "a"]

    def test_ties_break_first_touch(self):
        trace = AccessTrace(["b", "a", "b", "a"])
        assert hot_items(trace) == ["b", "a"]


class TestShiftLocalityScore:
    def test_empty_trace_zero(self):
        assert shift_locality_score(AccessTrace([])) == 0.0

    def test_concentrated_transitions_score_high(self):
        concentrated = AccessTrace(["a", "b"] * 50)
        assert shift_locality_score(concentrated) == 1.0

    def test_score_bounded(self, locality_trace):
        score = shift_locality_score(locality_trace)
        assert 0.0 <= score <= 1.0
