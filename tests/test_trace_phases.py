"""Unit tests for repro.trace.phases (phase analysis)."""

import pytest

from repro.errors import TraceError
from repro.trace.model import AccessTrace
from repro.trace.phases import (
    jaccard,
    phase_boundaries,
    phase_stability_score,
    phase_summary,
    windowed_working_sets,
)
from repro.trace.synthetic import markov_trace


def two_phase_trace(per_phase=512):
    a = markov_trace(10, per_phase, locality=0.9, seed=1).prefixed("a_")
    b = markov_trace(10, per_phase, locality=0.9, seed=2).prefixed("b_")
    return a.concatenated(b)


class TestWindowedWorkingSets:
    def test_window_partitioning(self):
        trace = AccessTrace(["a"] * 10)
        sets = windowed_working_sets(trace, window=4)
        assert len(sets) == 3  # 4 + 4 + 2
        assert all(s == {"a"} for s in sets)

    def test_exact_multiple_no_empty_tail(self):
        trace = AccessTrace(["a"] * 8)
        assert len(windowed_working_sets(trace, window=4)) == 2

    def test_invalid_window_raises(self):
        with pytest.raises(TraceError):
            windowed_working_sets(AccessTrace(["a"]), window=0)


class TestJaccard:
    def test_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_empty_sets(self):
        assert jaccard(set(), set()) == 1.0


class TestPhaseBoundaries:
    def test_single_phase_no_boundaries(self):
        trace = markov_trace(10, 1024, locality=0.9, seed=3)
        assert phase_boundaries(trace, window=256) == []

    def test_two_phases_one_boundary(self):
        trace = two_phase_trace(512)
        boundaries = phase_boundaries(trace, window=256)
        assert boundaries == [512]

    def test_invalid_threshold_raises(self):
        with pytest.raises(TraceError):
            phase_boundaries(AccessTrace(["a"]), threshold=2.0)


class TestPhaseSummary:
    def test_phases_cover_trace(self):
        trace = two_phase_trace(512)
        phases = phase_summary(trace, window=256)
        assert phases[0].start == 0
        assert phases[-1].end == len(trace)
        assert sum(phase.length for phase in phases) == len(trace)

    def test_phase_traces_are_slices(self):
        trace = two_phase_trace(512)
        phases = phase_summary(trace, window=256)
        assert len(phases) == 2
        assert all(item.startswith("a_") for item in phases[0].trace.items)
        assert all(item.startswith("b_") for item in phases[1].trace.items)

    def test_working_set_size(self):
        trace = two_phase_trace(512)
        phases = phase_summary(trace, window=256)
        assert phases[0].working_set_size <= 10


class TestStabilityScore:
    def test_single_phase_high(self):
        trace = markov_trace(8, 1024, locality=0.95, seed=4)
        assert phase_stability_score(trace, window=256) > 0.7

    def test_phase_change_lowers_score(self):
        stable = markov_trace(8, 1024, locality=0.95, seed=4)
        phased = two_phase_trace(512)
        assert phase_stability_score(phased, window=256) < (
            phase_stability_score(stable, window=256)
        )

    def test_short_trace_scores_one(self):
        assert phase_stability_score(AccessTrace(["a"] * 10), window=256) == 1.0
