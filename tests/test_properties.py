"""Property-based tests (hypothesis) for core invariants.

These pin down the load-bearing invariants of the reproduction:

* the analytical cost evaluator ≡ the event-driven simulator ≡ the bit-true
  device model, on arbitrary traces/placements/geometries;
* every placement algorithm emits a valid (injective, in-capacity) placement;
* the exact DP really is optimal for the MinLA objective;
* trace IO round-trips; head-state arithmetic of the DBC model is sound.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.baselines import random_placement
from repro.core.cost import evaluate_placement, linear_arrangement_cost
from repro.core.exact import minla_exact_order
from repro.core.heuristic import heuristic_placement
from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig, PortPolicy
from repro.dwm.dbc import HeadModel, port_access_cost
from repro.memory.spm import ScratchpadMemory
from repro.trace import io as trace_io
from repro.trace.model import Access, AccessKind, AccessTrace
from repro.trace.stats import affinity_graph


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

item_names = st.integers(min_value=0, max_value=11).map(lambda i: f"v{i}")

accesses = st.builds(
    Access,
    item=item_names,
    kind=st.sampled_from([AccessKind.READ, AccessKind.WRITE]),
)

traces = st.lists(accesses, min_size=1, max_size=60).map(
    lambda records: AccessTrace(records, name="hyp")
)

geometries = st.builds(
    lambda words, dbcs, ports, policy: DWMConfig(
        words_per_dbc=words,
        num_dbcs=dbcs,
        port_offsets=tuple(sorted(set(p % words for p in ports))) or (0,),
        port_policy=policy,
    ),
    words=st.integers(min_value=12, max_value=24),
    dbcs=st.integers(min_value=1, max_value=3),
    ports=st.lists(st.integers(min_value=0, max_value=23), min_size=1, max_size=3),
    policy=st.sampled_from([PortPolicy.LAZY, PortPolicy.EAGER]),
)


@st.composite
def problems(draw):
    trace = draw(traces)
    config = draw(geometries)
    # Guarantee capacity.
    while config.capacity_words < trace.num_items:  # pragma: no cover
        config = config.resized(num_dbcs=config.num_dbcs + 1)
    return PlacementProblem(trace=trace, config=config)


# ---------------------------------------------------------------------------
# Differential equivalence of the three cost engines
# ---------------------------------------------------------------------------

@given(problem=problems(), seed=st.integers(min_value=0, max_value=99))
@settings(max_examples=60, deadline=None)
def test_evaluator_equals_fast_simulator(problem, seed):
    placement = random_placement(problem, seed)
    analytical = evaluate_placement(problem, placement)
    sim = ScratchpadMemory(problem.config, placement).simulate(problem.trace)
    assert sim.shifts == analytical


@given(problem=problems(), seed=st.integers(min_value=0, max_value=99))
@settings(max_examples=25, deadline=None)
def test_fast_simulator_equals_device_model(problem, seed):
    placement = random_placement(problem, seed)
    spm = ScratchpadMemory(problem.config, placement)
    fast = spm.simulate(problem.trace)
    functional = spm.simulate_functional(problem.trace)
    assert fast.shifts == functional.shifts
    assert fast.per_dbc_shifts == functional.per_dbc_shifts


# ---------------------------------------------------------------------------
# Algorithm output validity and ordering
# ---------------------------------------------------------------------------

@given(problem=problems())
@settings(max_examples=40, deadline=None)
def test_heuristic_emits_valid_placement(problem):
    placement = heuristic_placement(problem)
    placement.validate(problem.config, problem.items)
    slots = [placement[item] for item in problem.items]
    assert len(set(slots)) == len(slots)  # injective


@given(problem=problems())
@settings(max_examples=25, deadline=None)
def test_heuristic_not_worse_than_declaration(problem):
    from repro.core.baselines import declaration_order_placement

    heuristic_cost = evaluate_placement(problem, heuristic_placement(problem))
    declaration_cost = evaluate_placement(
        problem, declaration_order_placement(problem)
    )
    assert heuristic_cost <= declaration_cost


@given(
    trace=traces,
    method=st.sampled_from(
        ["declaration", "random", "frequency", "spectral", "heuristic"]
    ),
)
@settings(max_examples=40, deadline=None)
def test_methods_cover_all_items(trace, method):
    from repro.core.api import optimize_placement

    result = optimize_placement(trace, words_per_dbc=16, method=method)
    for item in trace.items:
        assert item in result.placement


# ---------------------------------------------------------------------------
# Exact DP optimality
# ---------------------------------------------------------------------------

@given(
    n=st.integers(min_value=2, max_value=6),
    weights=st.lists(st.integers(min_value=0, max_value=9), min_size=15, max_size=15),
)
@settings(max_examples=40, deadline=None)
def test_minla_dp_matches_brute_force(n, weights):
    items = [f"v{i}" for i in range(n)]
    pairs = list(itertools.combinations(items, 2))
    affinity = {
        pair: weight
        for pair, weight in zip(pairs, weights)
        if weight > 0
    }
    dp_cost = linear_arrangement_cost(
        minla_exact_order(items, affinity), affinity
    )
    brute = min(
        linear_arrangement_cost(list(perm), affinity)
        for perm in itertools.permutations(items)
    )
    assert dp_cost == brute


# ---------------------------------------------------------------------------
# Cost-model arithmetic
# ---------------------------------------------------------------------------

@given(
    offsets=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=40),
    ports=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=3),
)
@settings(max_examples=60, deadline=None)
def test_head_model_cost_bounds(offsets, ports):
    config = DWMConfig(
        words_per_dbc=16, num_dbcs=1, port_offsets=tuple(sorted(set(ports)))
    )
    model = HeadModel(config)
    for offset in offsets:
        result = model.access(offset)
        assert 0 <= result.shifts <= 2 * (config.words_per_dbc - 1)
    assert model.shifts == sum(
        abs(b - a)
        for a, b in zip([0] + _head_trajectory(offsets, config)[:-1],
                        _head_trajectory(offsets, config))
    )


def _head_trajectory(offsets, config):
    """Reference head states after each lazy access (independent impl).

    Ties between ports break toward the lower-numbered port, matching the
    documented deterministic rule of :func:`port_access_cost`.
    """
    heads = []
    head = 0
    for offset in offsets:
        best_cost = None
        best_target = 0
        for port in config.port_offsets:  # ascending port order
            target = offset - port
            cost = abs(target - head)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_target = target
        head = best_target
        heads.append(head)
    return heads


@given(
    offset=st.integers(min_value=0, max_value=31),
    head=st.integers(min_value=-31, max_value=31),
    ports=st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=4),
)
def test_port_access_cost_is_min_over_ports(offset, head, ports):
    ports = tuple(sorted(set(ports)))
    cost, port, new_head = port_access_cost(offset, head, ports)
    assert cost == min(abs((offset - p) - head) for p in ports)
    assert new_head == offset - port
    assert abs(new_head - head) == cost


# ---------------------------------------------------------------------------
# Trace invariants and IO round-trips
# ---------------------------------------------------------------------------

@given(trace=traces)
@settings(max_examples=50, deadline=None)
def test_affinity_mass_bounded_by_transitions(trace):
    graph = affinity_graph(trace)
    assert sum(graph.values()) <= max(0, len(trace) - 1)
    for (left, right), weight in graph.items():
        assert left <= right
        assert weight > 0


@given(trace=traces)
@settings(max_examples=30, deadline=None)
def test_jsonl_roundtrip(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "trace.jsonl"
    trace_io.save_jsonl(trace, path)
    assert trace_io.load_jsonl(path) == trace


@given(trace=traces)
@settings(max_examples=30, deadline=None)
def test_text_roundtrip(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "trace.trc"
    trace_io.save_text(trace, path)
    assert trace_io.load_text(path) == trace


@given(trace=traces, items=st.sets(item_names, max_size=5))
@settings(max_examples=50, deadline=None)
def test_restriction_is_projection(trace, items):
    restricted = trace.restricted_to(items)
    assert all(access.item in items for access in restricted)
    # Restricting twice is the same as once (idempotent projection).
    assert restricted.restricted_to(items) == restricted


@given(problem=problems())
@settings(max_examples=25, deadline=None)
def test_eager_cost_is_order_independent_round_trips(problem):
    """Return-to-zero cost = Σ 2·dist(offset, nearest port), order-free."""
    placement = heuristic_placement(problem)
    eager_config = problem.config.resized(port_policy=PortPolicy.EAGER)
    eager_cost = evaluate_placement(
        problem.with_config(eager_config), placement
    )
    expected = 0
    for access in problem.trace:
        slot = placement[access.item]
        expected += 2 * min(
            abs(slot.offset - port) for port in eager_config.port_offsets
        )
    assert eager_cost == expected
