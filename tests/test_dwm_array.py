"""Unit tests for repro.dwm.array (DWM arrays) and repro.dwm.energy."""

import pytest

from repro.dwm.array import ArrayStats, DWMArray, DWMArrayModel
from repro.dwm.config import DWMConfig
from repro.dwm.energy import (
    DWMEnergyModel,
    DWMEnergyParams,
    SRAMEnergyModel,
    SRAMEnergyParams,
)
from repro.errors import ConfigError, SimulationError


@pytest.fixture
def config():
    return DWMConfig(words_per_dbc=8, num_dbcs=3, port_offsets=(0,), bits_per_word=8)


class TestDWMArrayModel:
    def test_dbcs_are_independent(self, config):
        array = DWMArrayModel(config)
        array.access(0, 5)
        # DBC 1's head is untouched: accessing its offset 0 is free.
        assert array.access(1, 0).shifts == 0
        # DBC 0 remembers its head.
        assert array.access(0, 5).shifts == 0

    def test_head_query(self, config):
        array = DWMArrayModel(config)
        array.access(2, 4)
        assert array.head(2) == 4
        assert array.head(0) == 0

    def test_stats_aggregate(self, config):
        array = DWMArrayModel(config)
        array.access(0, 3)
        array.access(1, 2, is_write=True)
        stats = array.stats()
        assert stats.shifts == 5
        assert stats.reads == 1
        assert stats.writes == 1
        assert stats.per_dbc_shifts == [3, 2, 0]

    def test_invalid_dbc_raises(self, config):
        array = DWMArrayModel(config)
        with pytest.raises(SimulationError):
            array.access(3, 0)

    def test_reset(self, config):
        array = DWMArrayModel(config)
        array.access(0, 7)
        array.reset()
        assert array.stats().shifts == 0
        assert array.access(0, 7).shifts == 7


class TestDWMArrayFunctional:
    def test_write_read_across_dbcs(self, config):
        array = DWMArray(config)
        array.write(0, 1, 0x11)
        array.write(2, 5, 0x22)
        assert array.read(0, 1).value == 0x11
        assert array.read(2, 5).value == 0x22

    def test_peek_does_not_cost(self, config):
        array = DWMArray(config)
        array.write(1, 3, 7)
        before = array.stats().shifts
        assert array.peek(1, 3) == 7
        assert array.stats().shifts == before

    def test_stats_shape(self, config):
        array = DWMArray(config)
        array.write(0, 2, 1)
        stats = array.stats()
        assert len(stats.per_dbc_shifts) == 3
        assert stats.writes == 1

    def test_invalid_dbc_raises(self, config):
        array = DWMArray(config)
        with pytest.raises(SimulationError):
            array.read(5, 0)


class TestArrayStats:
    def test_accesses_property(self):
        stats = ArrayStats(shifts=10, reads=3, writes=2)
        assert stats.accesses == 5

    def test_shifts_per_access(self):
        stats = ArrayStats(shifts=10, reads=4, writes=1)
        assert stats.shifts_per_access == 2.0

    def test_shifts_per_access_empty(self):
        assert ArrayStats().shifts_per_access == 0.0


class TestDWMEnergyModel:
    def test_linear_in_counts(self):
        model = DWMEnergyModel(
            DWMEnergyParams(
                shift_energy_pj=1.0,
                read_energy_pj=2.0,
                write_energy_pj=3.0,
                shift_latency_ns=1.0,
                read_latency_ns=1.0,
                write_latency_ns=1.0,
                leakage_mw=0.0,
            )
        )
        breakdown = model.evaluate(shifts=10, reads=5, writes=2)
        assert breakdown.shift_energy_pj == 10.0
        assert breakdown.read_energy_pj == 10.0
        assert breakdown.write_energy_pj == 6.0
        assert breakdown.latency_ns == 17.0

    def test_shift_energy_share(self):
        model = DWMEnergyModel()
        breakdown = model.evaluate(shifts=100, reads=10, writes=0)
        assert 0.0 < breakdown.shift_energy_share < 1.0

    def test_zero_run_has_zero_shares(self):
        breakdown = DWMEnergyModel().evaluate(0, 0, 0)
        assert breakdown.shift_energy_share == 0.0
        assert breakdown.shift_latency_share == 0.0
        assert breakdown.total_energy_pj == 0.0

    def test_leakage_scales_with_latency(self):
        params = DWMEnergyParams(leakage_mw=1.0)
        model = DWMEnergyModel(params)
        short = model.evaluate(1, 1, 0)
        long = model.evaluate(100, 1, 0)
        assert long.leakage_energy_pj > short.leakage_energy_pj

    def test_negative_param_raises(self):
        with pytest.raises(ConfigError):
            DWMEnergyParams(shift_energy_pj=-1.0)

    def test_total_is_dynamic_plus_leakage(self):
        breakdown = DWMEnergyModel().evaluate(10, 10, 10)
        assert breakdown.total_energy_pj == pytest.approx(
            breakdown.dynamic_energy_pj + breakdown.leakage_energy_pj
        )


class TestSRAMEnergyModel:
    def test_no_shift_component(self):
        breakdown = SRAMEnergyModel().evaluate(reads=10, writes=5)
        assert breakdown.shift_energy_pj == 0.0
        assert breakdown.shift_latency_share == 0.0

    def test_sram_leaks_more_than_dwm(self):
        assert SRAMEnergyParams().leakage_mw > 2 * DWMEnergyParams().leakage_mw

    def test_negative_param_raises(self):
        with pytest.raises(ConfigError):
            SRAMEnergyParams(read_latency_ns=-0.1)

    def test_latency_linear(self):
        params = SRAMEnergyParams(read_latency_ns=1.0, write_latency_ns=2.0)
        breakdown = SRAMEnergyModel(params).evaluate(reads=3, writes=4)
        assert breakdown.latency_ns == 11.0
