"""Tests for Monte-Carlo shift-fault injection (repro.dwm.faults)."""

from __future__ import annotations

import math

import pytest

from repro.core.api import build_problem, optimize_placement
from repro.core.baselines import random_placement
from repro.dwm.config import DWMConfig
from repro.dwm.faults import (
    OVERSHIFT,
    PINNING,
    UNDERSHIFT,
    FaultModel,
    injection_seed,
    run_injection,
)
from repro.errors import ConfigError
from repro.memory.spm import ScratchpadMemory
from repro.trace.synthetic import markov_trace


@pytest.fixture
def trace():
    return markov_trace(48, 20_000, locality=0.8, seed=7, write_fraction=0.2)


@pytest.fixture
def config(trace):
    return DWMConfig.for_items(trace.num_items, words_per_dbc=16)


@pytest.fixture
def spm(trace, config):
    placement = random_placement(build_problem(trace, config), 0)
    return ScratchpadMemory(config, placement)


class TestFaultModelValidation:
    def test_defaults_valid(self):
        model = FaultModel()
        assert model.shift_error_rate == pytest.approx(1e-4)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigError):
            FaultModel(shift_error_rate=-0.1)
        with pytest.raises(ConfigError):
            FaultModel(shift_error_rate=1.0)

    def test_rejects_fractions_not_summing_to_one(self):
        with pytest.raises(ConfigError):
            FaultModel(
                overshift_fraction=0.5,
                undershift_fraction=0.5,
                pinning_fraction=0.5,
            )

    def test_rejects_negative_fraction(self):
        with pytest.raises(ConfigError):
            FaultModel(
                overshift_fraction=-0.1,
                undershift_fraction=1.0,
                pinning_fraction=0.1,
            )

    def test_rejects_bad_check_interval(self):
        with pytest.raises(ConfigError):
            FaultModel(check_interval=0)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ConfigError):
            FaultModel(realignment_overhead_shifts=-1)


class TestInjectionSeed:
    def test_deterministic(self, trace, config):
        model = FaultModel(seed=3)
        assert injection_seed(model, trace, config) == injection_seed(
            model, trace, config
        )

    def test_sensitive_to_model_seed(self, trace, config):
        assert injection_seed(FaultModel(seed=0), trace, config) != injection_seed(
            FaultModel(seed=1), trace, config
        )

    def test_sensitive_to_trace_content(self, trace, config):
        other = markov_trace(48, 20_000, locality=0.8, seed=8, write_fraction=0.2)
        model = FaultModel()
        assert injection_seed(model, trace, config) != injection_seed(
            model, other, config
        )

    def test_insensitive_to_trace_name(self, trace, config):
        model = FaultModel()
        assert injection_seed(model, trace, config) == injection_seed(
            model, trace.renamed("other-name"), config
        )


class TestRunInjection:
    def test_zero_rate_injects_nothing(self):
        model = FaultModel(shift_error_rate=0.0)
        report = run_injection([0, 1, 0], [5, 3, 2], 2, model, seed=42)
        assert report.injected_faults == 0
        assert report.corrupted_accesses == 0
        assert report.realignment_shifts == 0
        assert report.within_sigma()

    def test_stream_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            run_injection([0, 1], [5], 2, FaultModel(), seed=0)

    def test_pure_function_of_inputs(self):
        model = FaultModel(shift_error_rate=0.05)
        a = run_injection([0, 1, 0, 1], [9, 7, 5, 3], 2, model, seed=99)
        b = run_injection([0, 1, 0, 1], [9, 7, 5, 3], 2, model, seed=99)
        assert a.events == b.events
        assert a.as_details() == b.as_details()

    def test_fault_kinds_partition_events(self):
        model = FaultModel(shift_error_rate=0.1, seed=5)
        report = run_injection(
            [i % 4 for i in range(500)], [7] * 500, 4, model, seed=123
        )
        assert report.injected_faults > 0
        assert (
            report.count(OVERSHIFT)
            + report.count(UNDERSHIFT)
            + report.count(PINNING)
            == report.injected_faults
        )
        assert sum(report.per_dbc_faults) == report.injected_faults

    def test_pinning_magnitude_bounded_by_burst(self):
        model = FaultModel(
            shift_error_rate=0.1,
            overshift_fraction=0.0,
            undershift_fraction=0.0,
            pinning_fraction=1.0,
        )
        costs = [6] * 300
        report = run_injection([0] * 300, costs, 1, model, seed=7)
        assert report.injected_faults > 0
        for event in report.events:
            # A stuck train can freeze at most the rest of one burst.
            assert -6 <= event.magnitude <= -1

    def test_detection_and_correction_accounting(self):
        model = FaultModel(shift_error_rate=0.02, check_interval=10, seed=1)
        report = run_injection([0] * 200, [8] * 200, 1, model, seed=55)
        # 200 accesses / interval 10 = 20 checks on DBC 0.
        assert report.position_checks == 20
        assert report.realignments <= report.position_checks
        if report.realignments:
            # Every realignment pays at least the fixed calibration cost
            # plus one corrective shift.
            assert report.realignment_shifts >= report.realignments * (
                model.realignment_overhead_shifts + 1
            )


class TestEngineIndependence:
    """Same seed + trace + config => identical schedule on either engine."""

    @pytest.mark.parametrize("policy", ["lazy", "eager"])
    def test_schedule_identical_across_engines(self, trace, policy):
        config = DWMConfig.for_items(
            trace.num_items, words_per_dbc=16, port_policy=policy
        )
        placement = random_placement(build_problem(trace, config), 0)
        model = FaultModel(shift_error_rate=1e-3, check_interval=16, seed=2)

        scalar_spm = ScratchpadMemory(config, placement)
        scalar = scalar_spm.simulate(trace, engine="scalar", fault_model=model)
        scalar_report = scalar_spm.last_fault_report

        vector_spm = ScratchpadMemory(config, placement)
        vector = vector_spm.simulate(trace, engine="vectorized", fault_model=model)
        vector_report = vector_spm.last_fault_report

        assert scalar.shifts == vector.shifts
        assert scalar_report.events == vector_report.events
        assert scalar_report.as_details() == vector_report.as_details()
        assert scalar.details["faults"] == vector.details["faults"]

    def test_repeated_runs_identical(self, spm, trace):
        model = FaultModel(shift_error_rate=1e-3, seed=11)
        first = spm.simulate(trace, fault_model=model)
        second = spm.simulate(trace, fault_model=model)
        assert first.details["faults"] == second.details["faults"]

    def test_no_fault_model_no_details(self, spm, trace):
        sim = spm.simulate(trace)
        assert "faults" not in sim.details
        assert spm.last_fault_report is None


class TestAnalyticAgreement:
    def test_mc_within_three_sigma_of_analytic(self, spm, trace):
        """The MC draw agrees with shifts * p within binomial 3 sigma."""
        model = FaultModel(shift_error_rate=1e-3, seed=0)
        sim = spm.simulate(trace, fault_model=model)
        report = spm.last_fault_report
        assert report.total_shifts == sim.shifts
        assert report.expected_faults == pytest.approx(sim.shifts * 1e-3)
        assert report.within_sigma(3.0)

    def test_mean_over_seeds_converges(self, spm, trace):
        """Averaged over seeds, the MC count tightens around expectation."""
        model = FaultModel(shift_error_rate=1e-3)
        seeds = range(8)
        counts = []
        expected = None
        for seed in seeds:
            spm.simulate(
                trace, fault_model=FaultModel(shift_error_rate=1e-3, seed=seed)
            )
            report = spm.last_fault_report
            counts.append(report.injected_faults)
            expected = report.expected_faults
            sigma = report.fault_count_sigma
        mean = sum(counts) / len(counts)
        # Standard error of the seed-mean: sigma / sqrt(n).
        assert abs(mean - expected) <= 3.0 * sigma / math.sqrt(len(counts))
        del model

    def test_analytic_report_matches_reliability_module(self, spm, trace):
        model = FaultModel(shift_error_rate=1e-3, seed=0)
        sim = spm.simulate(trace, fault_model=model)
        analytic = spm.last_fault_report.analytic(sim.per_dbc_shifts)
        assert analytic.total_shifts == sim.shifts
        assert analytic.expected_position_errors == pytest.approx(
            sim.shifts * 1e-3
        )

    def test_placement_reduces_fault_budget(self, trace, config):
        """Shift-minimizing placement shrinks exposure and overhead."""
        model = FaultModel(shift_error_rate=1e-3, check_interval=32, seed=0)
        problem = build_problem(trace, config)
        random_spm = ScratchpadMemory(config, random_placement(problem, 0))
        random_spm.simulate(trace, fault_model=model)
        random_report = random_spm.last_fault_report

        placed = optimize_placement(trace, config, method="heuristic").placement
        placed_spm = ScratchpadMemory(config, placed)
        placed_spm.simulate(trace, fault_model=model)
        placed_report = placed_spm.last_fault_report

        assert placed_report.total_shifts < random_report.total_shifts
        assert placed_report.injected_faults <= random_report.injected_faults
        assert (
            placed_report.realignment_shifts <= random_report.realignment_shifts
        )
