"""Tests for the compiled lazy-cost kernel layer (repro.core.kernels).

The contract: whichever backend gets selected (numba, cc, numpy
fallback), every kernel output is bit-identical to the pure-numpy
reference implementations in ``repro.core.incremental`` — the compiled
path is a wall-clock optimisation only.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import kernels
from repro.core.incremental import (
    multi_port_access_costs,
    multi_port_access_costs_numpy,
    two_port_access_costs,
    two_port_access_costs_numpy,
)

HAVE_COMPILED = kernels.compiled() is not None


@pytest.fixture
def backend_env(monkeypatch):
    """Set kernel env knobs, re-select the backend, restore afterwards."""

    def select(**env):
        for key, value in env.items():
            monkeypatch.setenv(key, value)
        kernels.reset_backend()
        return kernels.compiled()

    yield select
    kernels.reset_backend()


def _random_chains(seed: int, count: int = 20):
    rng = np.random.default_rng(seed)
    for _ in range(count):
        length = int(rng.integers(2, 96))
        n = int(rng.integers(1, 400))
        offsets = rng.integers(0, length, size=n, dtype=np.int64)
        port_count = int(rng.integers(1, min(4, length) + 1))
        ports = np.sort(
            rng.choice(length, size=port_count, replace=False)
        ).astype(np.int64)
        yield offsets, ports


class TestBackendSelection:
    def test_numpy_request_disables_compiled(self, backend_env):
        assert backend_env(REPRO_KERNEL="numpy") is None
        assert kernels.backend_name() == "numpy"

    def test_no_numba_env_forces_numpy_fallback(self, backend_env):
        assert backend_env(REPRO_NO_NUMBA="1") is None
        info = kernels.describe()
        assert info["no_numba"] is True
        assert info["backend"] == "numpy"

    def test_describe_reports_selection(self, backend_env):
        backend_env(REPRO_KERNEL="auto")
        info = kernels.describe()
        assert info["backend"] in ("numba", "cc", "numpy")
        assert info["compiled"] == (kernels.compiled() is not None)
        assert "cache_dir" in info

    def test_backend_is_cached_singleton(self):
        kernels.reset_backend()
        first = kernels.compiled()
        assert kernels.compiled() is first

    @pytest.mark.skipif(not HAVE_COMPILED, reason="no compiled backend here")
    def test_cc_library_cached_on_disk(self, backend_env):
        backend = backend_env(REPRO_KERNEL="cc")
        if backend is None:
            pytest.skip("no C compiler available")
        info = kernels.describe()
        assert os.path.exists(info["library"])
        # Re-selection must reuse the cached shared object, not recompile.
        again = backend_env(REPRO_KERNEL="cc")
        assert kernels.describe()["library"] == info["library"]
        assert again is not None


@pytest.mark.skipif(not HAVE_COMPILED, reason="no compiled backend here")
class TestKernelParity:
    def test_lazy_costs_matches_numpy(self):
        backend = kernels.compiled()
        for offsets, ports in _random_chains(101):
            expected = multi_port_access_costs_numpy(offsets, ports)
            got = backend.lazy_costs(offsets, ports)
            np.testing.assert_array_equal(got, expected)

    def test_chain_cost_matches_numpy(self):
        backend = kernels.compiled()
        rng = np.random.default_rng(202)
        for offsets, ports in _random_chains(202):
            item_at = np.arange(offsets.size, dtype=np.int64)
            positions = np.flatnonzero(
                rng.random(offsets.size) < 0.6
            ).astype(np.int64)
            expected = (
                int(multi_port_access_costs_numpy(offsets[positions], ports).sum())
                if positions.size
                else 0
            )
            got = backend.lazy_chain_cost(positions, item_at, offsets, ports)
            assert got == expected

    def test_merge_cost_matches_numpy(self):
        backend = kernels.compiled()
        rng = np.random.default_rng(303)
        for offsets, ports in _random_chains(303):
            item_at = np.arange(offsets.size, dtype=np.int64)
            keep = rng.random(offsets.size) < 0.5
            base = np.flatnonzero(keep).astype(np.int64)
            skip = base[rng.random(base.size) < 0.4]
            add = np.flatnonzero(~keep).astype(np.int64)
            add = add[rng.random(add.size) < 0.5]
            merged = np.union1d(np.setdiff1d(base, skip), add).astype(np.int64)
            expected = (
                int(multi_port_access_costs_numpy(offsets[merged], ports).sum())
                if merged.size
                else 0
            )
            got = backend.lazy_merge_cost(
                base, skip, add, item_at, offsets, ports
            )
            assert got == expected

    def test_single_access_and_head_return(self):
        backend = kernels.compiled()
        offsets = np.array([5], dtype=np.int64)
        ports = np.array([0], dtype=np.int64)
        np.testing.assert_array_equal(
            backend.lazy_costs(offsets, ports),
            multi_port_access_costs_numpy(offsets, ports),
        )


class TestDispatchers:
    """The public cost functions agree regardless of selected backend."""

    def test_two_port_dispatcher_matches_numpy(self):
        rng = np.random.default_rng(404)
        offsets = rng.integers(0, 64, size=500, dtype=np.int64)
        ports = np.array([0, 63], dtype=np.int64)
        np.testing.assert_array_equal(
            two_port_access_costs(offsets, ports),
            two_port_access_costs_numpy(offsets, ports),
        )

    def test_multi_port_dispatcher_matches_numpy(self):
        rng = np.random.default_rng(505)
        offsets = rng.integers(0, 48, size=500, dtype=np.int64)
        ports = np.array([3, 17, 40], dtype=np.int64)
        np.testing.assert_array_equal(
            multi_port_access_costs(offsets, ports),
            multi_port_access_costs_numpy(offsets, ports),
        )
