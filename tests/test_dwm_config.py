"""Unit tests for repro.dwm.config."""

import pytest

from repro.dwm.config import DWMConfig, PortPolicy, uniform_port_offsets
from repro.errors import ConfigError


class TestPortPolicy:
    def test_parse_string_lazy(self):
        assert PortPolicy.parse("lazy") is PortPolicy.LAZY

    def test_parse_string_eager(self):
        assert PortPolicy.parse("EAGER") is PortPolicy.EAGER

    def test_parse_passthrough(self):
        assert PortPolicy.parse(PortPolicy.LAZY) is PortPolicy.LAZY

    def test_parse_unknown_raises(self):
        with pytest.raises(ConfigError, match="unknown port policy"):
            PortPolicy.parse("bouncy")


class TestUniformPortOffsets:
    def test_single_port_centred(self):
        assert uniform_port_offsets(64, 1) == (32,)

    def test_two_ports(self):
        assert uniform_port_offsets(64, 2) == (16, 48)

    def test_four_ports(self):
        offsets = uniform_port_offsets(64, 4)
        assert len(offsets) == 4
        assert offsets == tuple(sorted(offsets))
        assert all(0 <= p < 64 for p in offsets)

    def test_ports_equal_words(self):
        offsets = uniform_port_offsets(4, 4)
        assert sorted(offsets) == list(offsets)
        assert len(set(offsets)) == 4

    def test_more_ports_than_words_raises(self):
        with pytest.raises(ConfigError):
            uniform_port_offsets(2, 3)

    def test_zero_words_raises(self):
        with pytest.raises(ConfigError):
            uniform_port_offsets(0, 1)

    def test_zero_ports_raises(self):
        with pytest.raises(ConfigError):
            uniform_port_offsets(8, 0)


class TestDWMConfigValidation:
    def test_defaults(self):
        config = DWMConfig()
        assert config.words_per_dbc == 64
        assert config.num_dbcs == 16
        assert config.num_ports == 1
        assert config.port_policy is PortPolicy.LAZY

    def test_default_port_is_centred(self):
        config = DWMConfig(words_per_dbc=64)
        assert config.port_offsets == (32,)

    def test_negative_words_raises(self):
        with pytest.raises(ConfigError):
            DWMConfig(words_per_dbc=-1)

    def test_zero_dbcs_raises(self):
        with pytest.raises(ConfigError):
            DWMConfig(num_dbcs=0)

    def test_zero_bits_raises(self):
        with pytest.raises(ConfigError):
            DWMConfig(bits_per_word=0)

    def test_port_out_of_range_raises(self):
        with pytest.raises(ConfigError, match="outside DBC range"):
            DWMConfig(words_per_dbc=8, port_offsets=(8,))

    def test_duplicate_ports_raise(self):
        with pytest.raises(ConfigError, match="duplicate"):
            DWMConfig(words_per_dbc=8, port_offsets=(2, 2))

    def test_empty_ports_raise(self):
        with pytest.raises(ConfigError):
            DWMConfig(words_per_dbc=8, port_offsets=())

    def test_ports_sorted_on_construction(self):
        config = DWMConfig(words_per_dbc=16, port_offsets=(12, 3))
        assert config.port_offsets == (3, 12)

    def test_port_policy_string_coerced(self):
        config = DWMConfig(port_policy="eager")
        assert config.port_policy is PortPolicy.EAGER

    def test_negative_overhead_raises(self):
        with pytest.raises(ConfigError):
            DWMConfig(words_per_dbc=8, overhead_domains=-1)

    def test_default_overhead_covers_shift_range(self):
        config = DWMConfig(words_per_dbc=32)
        assert config.overhead_domains == 31


class TestDWMConfigDerived:
    def test_capacity_words(self):
        config = DWMConfig(words_per_dbc=8, num_dbcs=4)
        assert config.capacity_words == 32

    def test_capacity_bits(self):
        config = DWMConfig(words_per_dbc=8, num_dbcs=2, bits_per_word=16)
        assert config.capacity_bits == 256

    def test_physical_domains_per_tape(self):
        config = DWMConfig(words_per_dbc=8, overhead_domains=7)
        assert config.physical_domains_per_tape == 22

    def test_nearest_port_single(self):
        config = DWMConfig(words_per_dbc=8)  # port at 4
        assert config.nearest_port(0) == 4
        assert config.nearest_port(7) == 4

    def test_nearest_port_multi(self):
        config = DWMConfig(words_per_dbc=16, port_offsets=(2, 12))
        assert config.nearest_port(0) == 2
        assert config.nearest_port(15) == 12
        # Tie at offset 7 (distance 5 to both) breaks toward the lower port.
        assert config.nearest_port(7) == 2

    def test_nearest_port_out_of_range_raises(self):
        config = DWMConfig(words_per_dbc=8)
        with pytest.raises(ConfigError):
            config.nearest_port(8)

    def test_max_shift_distance(self):
        config = DWMConfig(words_per_dbc=8)
        assert config.max_shift_distance == 7

    def test_describe_mentions_geometry(self):
        text = DWMConfig(words_per_dbc=8, num_dbcs=2).describe()
        assert "2 DBCs" in text
        assert "8 words" in text


class TestDWMConfigConstructors:
    def test_with_uniform_ports(self):
        config = DWMConfig.with_uniform_ports(
            words_per_dbc=32, num_dbcs=2, num_ports=2
        )
        assert config.num_ports == 2
        assert config.num_dbcs == 2

    def test_for_items_rounds_up(self):
        config = DWMConfig.for_items(65, words_per_dbc=64)
        assert config.num_dbcs == 2

    def test_for_items_exact_fit(self):
        config = DWMConfig.for_items(64, words_per_dbc=64)
        assert config.num_dbcs == 1

    def test_for_items_zero_raises(self):
        with pytest.raises(ConfigError):
            DWMConfig.for_items(0)

    def test_resized_rederives_ports(self):
        config = DWMConfig.with_uniform_ports(words_per_dbc=64, num_ports=2)
        resized = config.resized(words_per_dbc=32)
        assert resized.words_per_dbc == 32
        assert resized.num_ports == 2
        assert all(p < 32 for p in resized.port_offsets)

    def test_resized_keeps_explicit_ports(self):
        config = DWMConfig(words_per_dbc=16, port_offsets=(0, 15))
        resized = config.resized(num_dbcs=8)
        assert resized.port_offsets == (0, 15)
        assert resized.num_dbcs == 8

    def test_frozen(self):
        config = DWMConfig()
        with pytest.raises(AttributeError):
            config.words_per_dbc = 1  # type: ignore[misc]
