"""Property-based tests (hypothesis) for the extension subsystems."""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.allocation import DataObject, _knapsack_select
from repro.core.baselines import random_placement
from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig
from repro.dwm.reliability import reliability_report
from repro.memory.cache import CacheGeometry, compare_cache_policies
from repro.memory.timing import TimingParams, TimingSimulator
from repro.trace.model import Access, AccessKind, AccessTrace

item_names = st.integers(min_value=0, max_value=9).map(lambda i: f"v{i}")

accesses = st.builds(
    Access,
    item=item_names,
    kind=st.sampled_from([AccessKind.READ, AccessKind.WRITE]),
)

traces = st.lists(accesses, min_size=1, max_size=50).map(
    lambda records: AccessTrace(records, name="hyp-ext")
)


@st.composite
def placed_problems(draw):
    trace = draw(traces)
    words = draw(st.integers(min_value=10, max_value=20))
    dbcs = draw(st.integers(min_value=1, max_value=3))
    config = DWMConfig(words_per_dbc=words, num_dbcs=dbcs, port_offsets=(0,))
    while config.capacity_words < trace.num_items:  # pragma: no cover
        config = config.resized(num_dbcs=config.num_dbcs + 1)
    problem = PlacementProblem(trace=trace, config=config)
    seed = draw(st.integers(min_value=0, max_value=50))
    return problem, random_placement(problem, seed)


# ---------------------------------------------------------------------------
# Timing: overlap dominance and accounting
# ---------------------------------------------------------------------------

@given(data=placed_problems())
@settings(max_examples=40, deadline=None)
def test_overlap_never_slower(data):
    problem, placement = data
    simulator = TimingSimulator(problem.config, placement)
    serial = simulator.run(problem.trace, overlap=False)
    overlapped = simulator.run(problem.trace, overlap=True)
    assert overlapped.total_cycles <= serial.total_cycles
    # Component accounting is identical; only scheduling differs.
    assert overlapped.shift_cycles == serial.shift_cycles
    assert overlapped.port_cycles == serial.port_cycles


@given(data=placed_problems())
@settings(max_examples=25, deadline=None)
def test_nonblocking_loads_never_slower(data):
    problem, placement = data
    blocking = TimingSimulator(problem.config, placement, TimingParams())
    decoupled = TimingSimulator(
        problem.config, placement, TimingParams(blocking_loads=False)
    )
    assert (
        decoupled.run(problem.trace).total_cycles
        <= blocking.run(problem.trace).total_cycles
    )


@given(data=placed_problems())
@settings(max_examples=25, deadline=None)
def test_overlapped_time_at_least_port_serialisation(data):
    """The shared data port lower-bounds any schedule."""
    problem, placement = data
    simulator = TimingSimulator(
        problem.config, placement, TimingParams(blocking_loads=False)
    )
    overlapped = simulator.run(problem.trace, overlap=True)
    assert overlapped.total_cycles >= overlapped.port_cycles


# ---------------------------------------------------------------------------
# Cache: policy-invariant hits, honest accounting
# ---------------------------------------------------------------------------

@given(
    trace=traces,
    ways=st.integers(min_value=2, max_value=6),
    sets=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=30, deadline=None)
def test_cache_hit_rate_policy_invariant(trace, ways, sets):
    geometry = CacheGeometry(
        num_sets=sets,
        ways=ways,
        dbc_config=DWMConfig(words_per_dbc=8, num_dbcs=sets, port_offsets=(0,)),
    )
    results = compare_cache_policies(trace, geometry)
    hit_counts = {result.hits for result in results.values()}
    assert len(hit_counts) == 1
    for result in results.values():
        assert result.accesses == len(trace)
        assert result.shifts >= result.reorg_shifts >= 0
    assert results["static"].reorg_swaps == 0


@given(trace=traces)
@settings(max_examples=20, deadline=None)
def test_cache_capacity_bounds_misses(trace):
    """With capacity >= working set, misses = cold misses exactly."""
    geometry = CacheGeometry(
        num_sets=1,
        ways=10,
        dbc_config=DWMConfig(words_per_dbc=16, num_dbcs=1, port_offsets=(0,)),
    )
    results = compare_cache_policies(trace, geometry)
    for result in results.values():
        assert result.misses == trace.num_items


# ---------------------------------------------------------------------------
# Allocation: knapsack optimality
# ---------------------------------------------------------------------------

@given(
    sizes=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=8),
    benefit_values=st.lists(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        min_size=8, max_size=8,
    ),
    capacity=st.integers(min_value=0, max_value=12),
)
@settings(max_examples=50, deadline=None)
def test_knapsack_matches_brute_force(sizes, benefit_values, capacity):
    objects = [
        DataObject(
            name=f"o{i}",
            items=tuple(f"o{i}[{k}]" for k in range(size)),
            accesses=1,
        )
        for i, size in enumerate(sizes)
    ]
    benefits = benefit_values[: len(objects)]
    chosen = _knapsack_select(objects, benefits, capacity)
    chosen_value = sum(benefits[i] for i in chosen)
    chosen_size = sum(objects[i].size_words for i in chosen)
    assert chosen_size <= capacity
    best = 0.0
    for mask in itertools.product((0, 1), repeat=len(objects)):
        size = sum(
            objects[i].size_words for i, bit in enumerate(mask) if bit
        )
        if size > capacity:
            continue
        value = sum(
            max(0.0, benefits[i]) for i, bit in enumerate(mask) if bit
        )
        best = max(best, value)
    assert chosen_value >= best - 1e-6


# ---------------------------------------------------------------------------
# Reliability: monotonicity and composition
# ---------------------------------------------------------------------------

@given(
    per_dbc=st.lists(st.integers(min_value=0, max_value=10000), min_size=1, max_size=6),
    rate=st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
)
@settings(max_examples=60)
def test_reliability_composition(per_dbc, rate):
    report = reliability_report(
        sum(per_dbc), per_dbc_shifts=tuple(per_dbc), shift_error_rate=rate
    )
    probabilities = report.per_dbc_error_free_probability()
    product = 1.0
    for probability in probabilities:
        product *= probability
    assert abs(product - report.error_free_probability) < 1e-9
    assert 0.0 <= report.error_free_probability <= 1.0


@given(
    shifts_low=st.integers(min_value=0, max_value=10**6),
    extra=st.integers(min_value=1, max_value=10**6),
)
@settings(max_examples=60)
def test_reliability_monotone_in_shifts(shifts_low, extra):
    rate = 1e-6
    low = reliability_report(shifts_low, shift_error_rate=rate)
    high = reliability_report(shifts_low + extra, shift_error_rate=rate)
    assert high.expected_position_errors > low.expected_position_errors
    assert high.error_free_probability < low.error_free_probability or rate == 0


# ---------------------------------------------------------------------------
# ILP: formulation equivalence on random small instances
# ---------------------------------------------------------------------------

@given(
    n=st.integers(min_value=2, max_value=5),
    weights=st.lists(st.integers(min_value=0, max_value=9), min_size=10, max_size=10),
)
@settings(max_examples=25, deadline=None)
def test_ilp_formulation_matches_dp(n, weights):
    from repro.core.ilp import verify_formulation

    items = [f"v{i}" for i in range(n)]
    pairs = list(itertools.combinations(items, 2))
    affinity = {
        pair: weight for pair, weight in zip(pairs, weights) if weight > 0
    }
    assert verify_formulation(items, affinity)
