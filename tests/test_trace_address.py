"""Unit tests for repro.trace.address (raw-address trace ingestion)."""

import pytest

from repro.errors import TraceError
from repro.trace.address import (
    items_from_addresses,
    load_address_trace,
    parse_address_line,
    save_address_trace,
    synthetic_address_stream,
    word_item_name,
)


class TestWordItemName:
    def test_word_quantisation(self):
        assert word_item_name(0x1000) == "w_1000"
        assert word_item_name(0x1001) == "w_1000"
        assert word_item_name(0x1003) == "w_1000"
        assert word_item_name(0x1004) == "w_1004"

    def test_custom_word_size(self):
        assert word_item_name(0x10, word_bytes=8) == "w_10"
        assert word_item_name(0x17, word_bytes=8) == "w_10"

    def test_invalid_inputs(self):
        with pytest.raises(TraceError):
            word_item_name(-1)
        with pytest.raises(TraceError):
            word_item_name(0, word_bytes=0)


class TestItemsFromAddresses:
    def test_sub_word_accesses_collapse(self):
        trace = items_from_addresses([(0x100, "R"), (0x102, "W"), (0x104, "R")])
        assert trace.num_items == 2
        assert trace[0].item == trace[1].item

    def test_kinds_preserved(self):
        trace = items_from_addresses([(0x0, "R"), (0x0, "W")])
        assert not trace[0].is_write
        assert trace[1].is_write

    def test_address_range_filter(self):
        records = [(0x100, "R"), (0x900, "R"), (0x104, "R")]
        trace = items_from_addresses(records, address_range=(0x100, 0x200))
        assert len(trace) == 2

    def test_metadata_records_word_size(self):
        trace = items_from_addresses([(0, "R")], word_bytes=8)
        assert trace.metadata["word_bytes"] == 8


class TestParseLine:
    def test_standard_format(self):
        assert parse_address_line("R 0x1000") == (0x1000, "R")
        assert parse_address_line("w 4096") == (4096, "W")

    def test_address_first_format(self):
        assert parse_address_line("0x20 R") == (0x20, "R")

    def test_blank_and_comment(self):
        assert parse_address_line("") is None
        assert parse_address_line("# header") is None

    def test_malformed(self):
        with pytest.raises(TraceError):
            parse_address_line("justone", 3)
        with pytest.raises(TraceError):
            parse_address_line("X 0x10", 4)
        with pytest.raises(TraceError):
            parse_address_line("R notanumber", 5)


class TestFileRoundtrip:
    def test_save_and_load(self, tmp_path):
        records = [(0x1000, "R"), (0x1004, "W"), (0x1000, "R")]
        path = tmp_path / "dump.txt"
        save_address_trace(records, path, comment="test dump")
        trace = load_address_trace(path)
        assert len(trace) == 3
        assert trace[1].is_write
        assert trace.name == "dump"

    def test_load_with_range(self, tmp_path):
        records = [(0x0, "R"), (0x1000, "R")]
        path = tmp_path / "dump.txt"
        save_address_trace(records, path)
        trace = load_address_trace(path, address_range=(0x1000, 0x2000))
        assert len(trace) == 1

    def test_bad_line_reports_number(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("R 0x10\noops\n")
        with pytest.raises(TraceError, match="line 2"):
            load_address_trace(path)


class TestSyntheticStream:
    def test_deterministic(self):
        assert synthetic_address_stream(seed=4) == synthetic_address_stream(seed=4)

    def test_word_aligned_in_range(self):
        stream = synthetic_address_stream(
            base=0x2000, num_words=16, num_accesses=200, seed=1
        )
        for address, kind in stream:
            assert address % 4 == 0
            assert 0x2000 <= address < 0x2000 + 16 * 4
            assert kind in ("R", "W")

    def test_end_to_end_placement(self):
        """Address stream → trace → optimized placement, full flow."""
        from repro.core.api import optimize_placement

        stream = synthetic_address_stream(num_words=24, num_accesses=600, seed=9)
        trace = items_from_addresses(stream)
        heuristic = optimize_placement(trace, words_per_dbc=8, method="heuristic")
        declaration = optimize_placement(trace, words_per_dbc=8, method="declaration")
        assert heuristic.total_shifts <= declaration.total_shifts

    def test_validation(self):
        with pytest.raises(TraceError):
            synthetic_address_stream(num_words=0)
