"""Unit tests for repro.dwm.reliability (shift-error exposure)."""

import math

import pytest

from repro.dwm.reliability import (
    DEFAULT_SHIFT_ERROR_RATE,
    ReliabilityReport,
    reliability_report,
)
from repro.errors import ConfigError


class TestValidation:
    def test_rate_out_of_range_raises(self):
        with pytest.raises(ConfigError):
            ReliabilityReport(total_shifts=1, shift_error_rate=1.0)
        with pytest.raises(ConfigError):
            ReliabilityReport(total_shifts=1, shift_error_rate=-0.1)

    def test_negative_shifts_raise(self):
        with pytest.raises(ConfigError):
            ReliabilityReport(total_shifts=-1, shift_error_rate=0.0)


class TestMetrics:
    def test_expected_errors_linear(self):
        report = reliability_report(1000, shift_error_rate=1e-3)
        assert report.expected_position_errors == pytest.approx(1.0)

    def test_error_free_probability(self):
        report = reliability_report(100, shift_error_rate=0.01)
        assert report.error_free_probability == pytest.approx(0.99**100)

    def test_zero_shifts_is_safe(self):
        report = reliability_report(0, shift_error_rate=0.5)
        assert report.error_free_probability == 1.0
        assert report.expected_position_errors == 0.0

    def test_zero_rate_never_fails(self):
        report = reliability_report(10**9, shift_error_rate=0.0)
        assert report.error_free_probability == 1.0
        assert report.mean_shifts_between_failures == float("inf")

    def test_mean_shifts_between_failures(self):
        report = reliability_report(10, shift_error_rate=1e-5)
        assert report.mean_shifts_between_failures == pytest.approx(1e5)

    def test_per_dbc_probabilities(self):
        report = reliability_report(
            30, per_dbc_shifts=(10, 20, 0), shift_error_rate=0.01
        )
        probabilities = report.per_dbc_error_free_probability()
        assert probabilities[0] == pytest.approx(0.99**10)
        assert probabilities[1] == pytest.approx(0.99**20)
        assert probabilities[2] == 1.0
        # Whole-array survival = product over DBCs.
        assert math.prod(probabilities) == pytest.approx(
            report.error_free_probability
        )

    def test_exposure_reduction(self):
        optimized = reliability_report(500)
        baseline = reliability_report(1000)
        assert optimized.exposure_reduction_vs(baseline) == pytest.approx(0.5)

    def test_exposure_reduction_zero_baseline(self):
        assert reliability_report(5).exposure_reduction_vs(
            reliability_report(0)
        ) == 0.0


class TestPlacementReliabilityLink:
    def test_fewer_shifts_means_fewer_errors(self):
        """Shift-minimizing placement reduces error exposure end-to-end."""
        from repro.core.api import optimize_placement
        from repro.dwm.config import DWMConfig
        from repro.memory.spm import ScratchpadMemory
        from repro.trace.kernels import fir_trace

        trace = fir_trace(taps=8, samples=24)
        config = DWMConfig.for_items(trace.num_items, words_per_dbc=16)
        reports = {}
        for method in ("declaration", "heuristic"):
            result = optimize_placement(trace, config, method=method)
            sim = ScratchpadMemory(config, result.placement).simulate(trace)
            reports[method] = reliability_report(
                sim.shifts, sim.per_dbc_shifts, DEFAULT_SHIFT_ERROR_RATE
            )
        assert (
            reports["heuristic"].expected_position_errors
            < reports["declaration"].expected_position_errors
        )
        assert (
            reports["heuristic"].error_free_probability
            > reports["declaration"].error_free_probability
        )
