"""Tests for the chaos failpoint framework (``repro.chaos``).

Covers the spec grammar (parse / round-trip / rejection), deterministic
trigger semantics (``nth``, ``p``+``seed``, ``times``), scoped
installation and env propagation, the cooperative truncate directive,
kill generation-gating, and a short seeded soak smoke run (the full
acceptance soak is ``repro chaos soak``).

The signal-teardown tests (satellite: KeyboardInterrupt / SIGTERM during
a pooled streaming scan) drive a real child process and assert the
crash-consistency contract afterwards: journal flushed with no torn
tail, every pool worker dead, no shared-memory segment and no ``*.tmp``
stray left behind.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import chaos
from repro.chaos import (
    CHAOS_ENV,
    ChaosPlan,
    ChaosSpecError,
    FailpointRule,
    chaos_scope,
    failpoint,
    failpoints,
)
from repro.errors import InjectedFaultError

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


class TestSpecGrammar:
    def test_parse_round_trips(self):
        spec = (
            "binio.read:nth=3:raise=IOError,"
            "pool.dispatch:p=0.05:seed=7,"
            "journal.append:truncate=4:times=2,"
            "stream.scan:delay=0.01,"
            "pool.task:nth=1:kill"
        )
        plan = ChaosPlan.parse(spec)
        assert len(plan.rules) == 5
        assert ChaosPlan.parse(plan.to_spec()).to_spec() == plan.to_spec()

    def test_parse_fields(self):
        rule = FailpointRule.parse("cache.read:nth=2:raise=OSError:times=3")
        assert rule.point == "cache.read"
        assert rule.nth == 2
        assert rule.error == "OSError"
        assert rule.times == 3

    @pytest.mark.parametrize(
        "bad",
        [
            "no.such.point",
            "binio.read:nth=0",
            "binio.read:p=1.5",
            "binio.read:nth=1:p=0.5",
            "binio.read:times=-1",
            "binio.read:raise=ValueError",  # outside the closed set
            "binio.read:frob=1",
            "binio.read:nth=x",
            "pool.task:kill=1",
            "",
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ChaosSpecError):
            ChaosPlan.parse(bad)

    def test_catalog_is_sorted_and_closed(self):
        catalog = failpoints()
        assert catalog == tuple(sorted(catalog))
        assert "binio.read" in catalog and "pool.task" in catalog


class TestTriggerSemantics:
    def test_nth_fires_exactly_once_on_that_hit(self):
        plan = ChaosPlan.parse("binio.read:nth=3")
        with chaos_scope(plan):
            failpoint("binio.read")
            failpoint("binio.read")
            with pytest.raises(InjectedFaultError):
                failpoint("binio.read")
            for _ in range(10):
                failpoint("binio.read")  # nth is one-shot
        assert plan.fire_counts() == {"binio.read": 1}

    def test_p_schedule_is_deterministic_for_a_seed(self):
        def fire_pattern():
            plan = ChaosPlan.parse("cache.read:p=0.5:seed=42:times=0")
            pattern = []
            with chaos_scope(plan):
                for _ in range(32):
                    try:
                        failpoint("cache.read")
                        pattern.append(0)
                    except InjectedFaultError:
                        pattern.append(1)
            return pattern

        first, second = fire_pattern(), fire_pattern()
        assert first == second
        assert sum(first) > 0 and sum(first) < 32

    def test_times_caps_total_fires(self):
        plan = ChaosPlan.parse("cache.read:times=2")  # no trigger = every hit
        fired = 0
        with chaos_scope(plan):
            for _ in range(10):
                try:
                    failpoint("cache.read")
                except InjectedFaultError:
                    fired += 1
        assert fired == 2

    def test_raise_type_is_honoured(self):
        with chaos_scope("shm.publish:raise=TimeoutError"):
            with pytest.raises(TimeoutError):
                failpoint("shm.publish")

    def test_truncate_returns_cooperative_directive(self):
        with chaos_scope("journal.append:truncate=4"):
            action = failpoint("journal.append")
            assert action is not None
            assert action.kind == "truncate"
            assert action.keep_bytes == 4
            assert failpoint("journal.append") is None  # times=1 default

    def test_delay_sleeps_instead_of_raising(self):
        with chaos_scope("stream.scan:delay=0.01"):
            started = time.monotonic()
            assert failpoint("stream.scan") is None
            assert time.monotonic() - started >= 0.009

    def test_random_plans_are_reproducible(self):
        assert (
            ChaosPlan.random(123).to_spec() == ChaosPlan.random(123).to_spec()
        )
        specs = {ChaosPlan.random(seed).to_spec() for seed in range(20)}
        assert len(specs) > 1

    def test_kill_gated_by_process_generation(self, monkeypatch):
        # Generation >= times means "this process is already a replacement
        # of a killed worker": the kill rule must stand down, not crash-loop.
        plan = ChaosPlan.parse("pool.task:nth=1:kill")
        monkeypatch.setenv(chaos.GENERATION_ENV, "5")
        with chaos_scope(plan):
            assert failpoint("pool.task") is None
        assert plan.fire_counts() == {"pool.task": 1}  # fired, chose no-op


class TestInstallation:
    def test_off_by_default_and_scope_restores(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert not chaos.is_active()
        assert failpoint("binio.read") is None
        with chaos_scope("binio.read:nth=1"):
            assert chaos.is_active()
            assert os.environ[CHAOS_ENV] == "binio.read:nth=1"
        assert not chaos.is_active()
        assert CHAOS_ENV not in os.environ

    def test_scope_restores_even_on_error(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        with pytest.raises(RuntimeError):
            with chaos_scope("binio.read:nth=1"):
                raise RuntimeError("boom")
        assert not chaos.is_active()

    def test_nested_scope_restores_outer_plan(self):
        outer = ChaosPlan.parse("binio.read:nth=9")
        with chaos_scope(outer):
            with chaos_scope("cache.read:nth=9"):
                assert chaos.active_plan().rules[0].point == "cache.read"
            assert chaos.active_plan() is outer

    def test_ensure_installed_from_env(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "cache.write:nth=2")
        monkeypatch.setattr(chaos, "_PLAN", None)
        plan = chaos.ensure_installed_from_env()
        assert plan is not None
        assert plan.rules[0].point == "cache.write"
        chaos.uninstall_plan()

    def test_ensure_installed_rejects_malformed_env(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "definitely:not=valid")
        monkeypatch.setattr(chaos, "_PLAN", None)
        with pytest.raises(ChaosSpecError):
            chaos.ensure_installed_from_env()

    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
    def test_plan_propagates_into_pool_workers(self, monkeypatch):
        # A worker-side failpoint (pool.task) can only fire if the plan
        # crossed the process boundary; exhausted retries then surface as a
        # TaskFailure carrying the injected error.
        from repro.analysis import pool as pool_mod
        from repro.analysis.parallel import TaskFailure

        pool_mod.shutdown_pools()
        try:
            with chaos_scope("pool.task:times=0:raise=IOError"):
                pool = pool_mod.get_pool(2)
                results = pool.run(_identity, [1, 2], retries=1)
            assert all(isinstance(r, TaskFailure) for r in results)
            assert any("chaos failpoint pool.task" in r.error for r in results)
        finally:
            pool_mod.shutdown_pools()


def _identity(value):
    return value


# ---------------------------------------------------------------------------
# Failpoints actually planted at the I/O boundaries
# ---------------------------------------------------------------------------


class TestPlantedFailpoints:
    def test_binio_write_truncate_makes_typed_torn_file(self, tmp_path):
        from repro.trace.binio import open_binary, pack

        path = tmp_path / "torn.rtb"
        with chaos_scope("binio.write:truncate=64"):
            with pytest.raises(InjectedFaultError):
                pack([("a", "R")] * 100, path, name="torn")
        assert path.exists()
        with pytest.raises(Exception) as info:
            open_binary(path).read_write_counts()
        from repro.errors import TraceFormatError

        assert isinstance(info.value, TraceFormatError)

    def test_cache_read_fault_is_a_miss_not_a_crash(self, tmp_path):
        from repro.analysis.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        cache.put("deadbeef" * 8, {"value": 1})
        with chaos_scope("cache.read:nth=1:raise=IOError"):
            assert cache.get("deadbeef" * 8) is None  # injected miss
        assert cache.get("deadbeef" * 8) == {"value": 1}

    def test_journal_append_truncate_leaves_recoverable_tail(self, tmp_path):
        from repro.analysis.checkpoint import CheckpointJournal, scan_journal

        path = tmp_path / "j.journal"
        journal = CheckpointJournal(path)
        journal.record("a", {"v": 1})
        with chaos_scope("journal.append:truncate=7"):
            with pytest.raises(InjectedFaultError):
                journal.record("b", {"v": 2})
        journal.close()
        entries, good_offset, _corrupt = scan_journal(path)
        assert list(entries) == ["a"]
        assert path.stat().st_size > good_offset  # torn bytes present
        resumed = CheckpointJournal(path, resume=True)
        assert resumed.truncated_bytes > 0
        resumed.close()
        assert path.stat().st_size == good_offset


# ---------------------------------------------------------------------------
# Soak smoke (the full 25-schedule acceptance run is `repro chaos soak`)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
def test_soak_smoke(tmp_path):
    from repro.chaos.soak import run_soak

    report = run_soak(seed=2015, schedules=2, workdir=tmp_path / "soak")
    assert len(report.runs) == 2
    assert report.ok, [run.to_dict() for run in report.runs]
    for run in report.runs:
        assert run.outcome in ("identical", "typed-abort")
        assert run.leaks == []
    assert all(entry["ok"] for entry in report.fsck)


# ---------------------------------------------------------------------------
# Signal teardown during pooled streaming scans (satellite)
# ---------------------------------------------------------------------------

_SIGNAL_SCRIPT = r"""
import os, sys, time
from pathlib import Path

from repro import robust
from repro.analysis import parallel
from repro.analysis.checkpoint import CheckpointJournal, flush_active_journals
from repro.analysis.pool import get_pool, shutdown_pools
from repro.core.api import optimize_placement
from repro.dwm.config import DWMConfig
from repro.memory.shm import unlink_all
from repro.memory.spm import ScratchpadMemory
from repro.trace.binio import open_binary, pack
from repro.trace.model import AccessKind
from repro.trace.synthetic import zipf_trace

parallel._cpu_count = lambda: 4  # lift the 1-CPU cap so jobs=2 pools run
robust.install_sigterm_handler()
out = Path(sys.argv[1])
trace = zipf_trace(num_items=16, num_accesses=5000, seed=1)
pack(
    ((a.item, "W" if a.kind is AccessKind.WRITE else "R") for a in trace),
    out / "t.rtb",
    name=trace.name,
)
streaming = open_binary(out / "t.rtb")
config = DWMConfig.for_items(16, words_per_dbc=8)
placement = optimize_placement(trace, config, method="declaration").placement
spm = ScratchpadMemory(config, placement)
journal = CheckpointJournal(out / "run.journal")
try:
    i = 0
    while True:
        journal.record(f"iter-{i}", {"i": i})
        spm.simulate(streaming, engine="streaming", chunk_size=128, jobs=2)
        import multiprocessing
        pids = sorted(p.pid for p in multiprocessing.active_children())
        (out / "workers.txt").write_text("\n".join(map(str, pids)))
        print("TICK", flush=True)
        i += 1
except KeyboardInterrupt:
    flushed = flush_active_journals()
    shutdown_pools()
    unlink_all()
    sys.exit(130)
"""


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
@pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
def test_signal_during_pooled_streaming_scan_tears_down(tmp_path, signum):
    """Interrupting a pooled streaming run must leave no debris behind."""
    script = tmp_path / "runner.py"
    script.write_text(_SIGNAL_SCRIPT)
    out = tmp_path / "out"
    out.mkdir()
    shm_before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else None
    env = dict(os.environ, PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"))
    env.pop("REPRO_CHAOS", None)
    proc = subprocess.Popen(
        [sys.executable, str(script), str(out)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        # Wait until the pooled scan loop is demonstrably running.
        deadline = time.monotonic() + 60
        ticks = 0
        while ticks < 3:
            line = proc.stdout.readline()
            assert line, f"runner exited early: {proc.stderr.read()}"
            if line.strip() == "TICK":
                ticks += 1
            assert time.monotonic() < deadline
        proc.send_signal(signum)
        returncode = proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert returncode == 130, proc.stderr.read()

    # Workers recorded mid-run are all gone.
    workers = [
        int(line)
        for line in (out / "workers.txt").read_text().splitlines()
        if line
    ]
    assert workers, "runner never recorded its pool workers"
    for pid in workers:
        with pytest.raises(OSError):
            os.kill(pid, 0)

    # The journal was flushed and has no torn tail.
    from repro.analysis.checkpoint import scan_journal

    journal_path = out / "run.journal"
    entries, good_offset, corrupt = scan_journal(journal_path)
    assert entries and corrupt == 0
    assert journal_path.stat().st_size == good_offset
    assert json.loads(journal_path.read_text().splitlines()[0])["key"] == "iter-0"

    # No stray temp files, no leaked shared-memory segments.
    assert list(out.rglob("*.tmp")) == []
    if shm_before is not None:
        assert set(os.listdir("/dev/shm")) - shm_before == set()
