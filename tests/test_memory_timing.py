"""Unit tests for repro.memory.timing (overlapped controller model)."""

import pytest

from repro.core.api import build_problem, optimize_placement
from repro.core.placement import Placement
from repro.dwm.config import DWMConfig
from repro.errors import ConfigError
from repro.memory.timing import (
    TimingParams,
    TimingResult,
    TimingSimulator,
    overlap_benefit,
)
from repro.trace.model import AccessTrace
from repro.trace.synthetic import markov_trace


@pytest.fixture
def placed():
    trace = markov_trace(12, 300, locality=0.8, seed=41, write_fraction=0.3)
    config = DWMConfig(words_per_dbc=8, num_dbcs=2, port_offsets=(0,))
    result = optimize_placement(trace, config, method="heuristic")
    return trace, config, result.placement


class TestTimingParams:
    def test_defaults_valid(self):
        TimingParams()

    def test_nonpositive_cycles_raise(self):
        with pytest.raises(ConfigError):
            TimingParams(shift_cycles=0)
        with pytest.raises(ConfigError):
            TimingParams(read_cycles=-1)

    def test_negative_store_queue_raises(self):
        with pytest.raises(ConfigError):
            TimingParams(store_queue_depth=-1)


class TestSerialModel:
    def test_serial_cycles_are_closed_form(self, placed):
        trace, config, placement = placed
        params = TimingParams(shift_cycles=1, read_cycles=2, write_cycles=3)
        simulator = TimingSimulator(config, placement, params)
        result = simulator.run(trace, overlap=False)
        problem = build_problem(trace, config)
        from repro.core.cost import evaluate_placement

        shifts = evaluate_placement(problem, placement)
        reads, writes = trace.read_write_counts()
        assert result.total_cycles == shifts + 2 * reads + 3 * writes
        assert result.shift_cycles == shifts
        assert result.port_cycles == 2 * reads + 3 * writes

    def test_overlap_flag_recorded(self, placed):
        trace, config, placement = placed
        simulator = TimingSimulator(config, placement)
        assert simulator.run(trace, overlap=False).overlap is False
        assert simulator.run(trace, overlap=True).overlap is True


class TestOverlapModel:
    def test_overlap_never_slower_than_serial(self, placed):
        trace, config, placement = placed
        serial, overlapped = overlap_benefit(trace, config, placement)
        assert overlapped.total_cycles <= serial.total_cycles

    def test_nonblocking_loads_never_slower(self, placed):
        trace, config, placement = placed
        blocking = TimingSimulator(config, placement, TimingParams())
        decoupled = TimingSimulator(
            config, placement, TimingParams(blocking_loads=False)
        )
        assert decoupled.run(trace).total_cycles <= blocking.run(trace).total_cycles

    def test_single_dbc_no_overlap_benefit(self):
        # Everything on one DBC: the shift driver is the bottleneck and the
        # dependent-load chain serialises — overlap cannot help.
        trace = AccessTrace(["a", "b"] * 50)
        config = DWMConfig(words_per_dbc=8, num_dbcs=1, port_offsets=(0,))
        placement = Placement({"a": (0, 0), "b": (0, 7)})
        simulator = TimingSimulator(config, placement)
        serial = simulator.run(trace, overlap=False)
        overlapped = simulator.run(trace, overlap=True)
        assert overlapped.total_cycles == serial.total_cycles

    def test_cross_dbc_write_streams_overlap(self):
        # Writes to alternating DBCs: shifting of one DBC hides behind the
        # other's port beat, so overlapped time beats serial.
        accesses = []
        for k in range(40):
            accesses.append((f"a{k % 4}", "W"))
            accesses.append((f"b{k % 4}", "W"))
        trace = AccessTrace(accesses)
        config = DWMConfig(words_per_dbc=8, num_dbcs=2, port_offsets=(0,))
        mapping = {f"a{k}": (0, 2 * k) for k in range(4)}
        mapping.update({f"b{k}": (1, 2 * k) for k in range(4)})
        placement = Placement(mapping)
        simulator = TimingSimulator(config, placement)
        serial = simulator.run(trace, overlap=False)
        overlapped = simulator.run(trace, overlap=True)
        assert overlapped.total_cycles < serial.total_cycles

    def test_zero_shift_trace_is_port_bound(self):
        trace = AccessTrace(["a"] * 10)
        config = DWMConfig(words_per_dbc=8, num_dbcs=1, port_offsets=(0,))
        placement = Placement({"a": (0, 0)})
        params = TimingParams(read_cycles=2)
        result = TimingSimulator(config, placement, params).run(trace)
        assert result.shift_cycles == 0
        assert result.total_cycles == 10 * 2


class TestTimingResult:
    def test_cycles_per_access(self):
        result = TimingResult(
            total_cycles=100, shift_cycles=50, port_cycles=50,
            accesses=25, overlap=True,
        )
        assert result.cycles_per_access == 4.0

    def test_speedup_over(self):
        fast = TimingResult(50, 0, 50, 10, True)
        slow = TimingResult(100, 50, 50, 10, False)
        assert fast.speedup_over(slow) == 2.0

    def test_empty_run(self):
        empty = TimingResult(0, 0, 0, 0, True)
        assert empty.cycles_per_access == 0.0
