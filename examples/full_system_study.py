"""Scenario: a complete system study, from loop nest to architecture choice.

Walks the whole toolchain the way an SoC team would:

1. **Specify** the kernel as a declarative loop nest (no instrumentation
   needed) and derive its access trace.
2. **Characterise** it: phase stability, locality, working set.
3. **Co-design** the port positions with the placement (k-medians ⇄
   heuristic fixed point).
4. **System comparison**: all-DRAM vs SPM with oblivious placement vs SPM
   with shift-aware placement, on the cycle-level full-system model.
5. **Visualise** where the shift load lands with a per-DBC heatmap.

Usage::

    python examples/full_system_study.py
"""

from repro.analysis.report import format_heatmap, format_table
from repro.core.api import build_problem, optimize_placement
from repro.core.cost import per_dbc_costs
from repro.dwm.config import DWMConfig
from repro.dwm.ports import co_design_ports
from repro.memory.hierarchy import system_comparison
from repro.trace.loops import Loop, LoopNest, Ref
from repro.trace.phases import phase_stability_score
from repro.trace.stats import compute_stats, shift_locality_score


def build_kernel() -> LoopNest:
    """A blocked vector pipeline: y[i] = Σ_k h[k]·x[i+k], then peak scan."""
    taps, samples = 8, 40
    return LoopNest(
        loops=[Loop("i", 0, samples), Loop("k", 0, taps)],
        body=[
            Ref("h", ("k",), "R"),
            Ref("x", (({"i": 1, "k": 1}, 0),), "R"),  # x[i + k]
            Ref("y", ("i",), "W"),
        ],
        shapes={"h": (taps,), "x": (samples + taps,), "y": (samples,)},
        name="windowed-dot",
        repetitions=2,
    )


def main() -> None:
    # 1-2. Specify and characterise.
    nest = build_kernel()
    trace = nest.trace()
    stats = compute_stats(trace)
    print(
        format_table(
            ("metric", "value"),
            [
                ("accesses", stats.num_accesses),
                ("items", stats.num_items),
                ("footprint (words)", nest.footprint_words()),
                ("mean reuse distance", f"{stats.mean_reuse_distance:.1f}"),
                ("locality score", f"{shift_locality_score(trace):.3f}"),
                ("phase stability", f"{phase_stability_score(trace):.3f}"),
            ],
            title="1-2. Kernel characterisation (from the loop-nest DSL)",
        )
    )

    # 3. Port/placement co-design.
    uniform_config = DWMConfig.for_items(
        trace.num_items, words_per_dbc=32, num_ports=2
    )
    uniform = optimize_placement(trace, uniform_config, method="heuristic")
    designed_config, designed = co_design_ports(
        trace, num_ports=2, words_per_dbc=32
    )
    print()
    print(
        format_table(
            ("design", "port offsets", "shifts"),
            [
                ("uniform ports", list(uniform_config.port_offsets),
                 uniform.total_shifts),
                ("co-designed ports", list(designed_config.port_offsets),
                 designed.total_shifts),
            ],
            title="3. Port-position co-design",
        )
    )

    # 4. Full-system comparison at 60% capacity.
    capacity = max(16, int(trace.num_items * 0.6))
    system_config = DWMConfig(
        words_per_dbc=16, num_dbcs=max(1, capacity // 16), port_offsets=(8,)
    )
    results = system_comparison(trace, system_config)
    baseline = results["all_dram"]
    print()
    print(
        format_table(
            ("configuration", "cycles", "speedup"),
            [
                (label, result.total_cycles,
                 f"{baseline.total_cycles / result.total_cycles:.2f}x")
                for label, result in results.items()
            ],
            title="4. Full-system comparison (SPM at 60% of working set)",
        )
    )

    # 5. Shift-load heatmap of the final placement.
    problem = build_problem(trace, designed_config)
    costs = per_dbc_costs(problem, designed.placement)
    print()
    print(
        format_heatmap(
            {
                f"DBC {dbc}": [costs.get(dbc, 0)]
                for dbc in range(designed_config.num_dbcs)
            },
            title="5. Per-DBC shift load (co-designed placement)",
        )
    )


if __name__ == "__main__":
    main()
