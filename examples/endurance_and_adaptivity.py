"""Scenario: lifetime engineering — wear, reliability, and adaptive placement.

A deployed always-on device replays its workload for years, so the questions
after "how fast" are "how long does the memory last" and "what happens when
the workload changes".  This script walks the three extension analyses:

1. **Wear** — the shift-minimizing placement concentrates shift current on
   few DBCs; the wear-aware variant levels it within a 10% shift budget,
   extending first-failure lifetime.
2. **Reliability** — every shift is a misalignment opportunity; fewer shifts
   mean exponentially better error-free-run probability.
3. **Adaptivity** — when the workload changes phase, an online placer with
   real migration costs recovers most of a whole-trace oracle's advantage
   over a stale profile.

Usage::

    python examples/endurance_and_adaptivity.py
"""

from repro.analysis.report import format_table
from repro.analysis.wear import (
    lifetime_estimate_accesses,
    wear_aware_placement,
    wear_report,
)
from repro.core.api import build_problem, optimize_placement
from repro.core.cost import evaluate_placement
from repro.core.online import compare_static_vs_online
from repro.dwm.config import DWMConfig
from repro.dwm.reliability import reliability_report
from repro.memory.spm import ScratchpadMemory
from repro.trace.kernels import fir_trace
from repro.trace.synthetic import markov_trace, zipf_trace


def wear_section() -> None:
    trace = fir_trace()
    config = DWMConfig.for_items(trace.num_items, words_per_dbc=16)
    problem = build_problem(trace, config)
    heuristic = optimize_placement(trace, config, method="heuristic")
    balanced = wear_aware_placement(problem)
    rows = []
    for label, placement, shifts in (
        ("shift-minimizing", heuristic.placement, heuristic.total_shifts),
        ("wear-aware (+<=10% shifts)", balanced,
         evaluate_placement(problem, balanced)),
    ):
        report = wear_report(problem, placement)
        lifetime = lifetime_estimate_accesses(
            report, shift_endurance=1e15, trace_length=len(trace)
        )
        rows.append(
            (
                label,
                shifts,
                f"{report.max_mean_shift_ratio:.2f}",
                f"{report.shift_gini:.3f}",
                f"{lifetime:.2e}",
            )
        )
    print(
        format_table(
            ("placement", "shifts", "max/mean wear", "gini",
             "est. lifetime (accesses)"),
            rows,
            title="1. Wear leveling on the FIR kernel",
        )
    )


def reliability_section() -> None:
    trace = fir_trace()
    config = DWMConfig.for_items(trace.num_items, words_per_dbc=16)
    rows = []
    for method in ("declaration", "heuristic"):
        result = optimize_placement(trace, config, method=method)
        sim = ScratchpadMemory(config, result.placement).simulate(trace)
        report = reliability_report(sim.shifts, sim.per_dbc_shifts)
        rows.append(
            (
                method,
                sim.shifts,
                f"{report.expected_position_errors:.2e}",
                f"{report.error_free_probability:.6f}",
            )
        )
    print()
    print(
        format_table(
            ("placement", "shifts", "expected misalignments",
             "P(error-free run)"),
            rows,
            title="2. Shift-error exposure (p_shift = 1e-5)",
        )
    )


def adaptivity_section() -> None:
    phase_a = markov_trace(40, 4000, locality=0.9, seed=1).prefixed("a_")
    phase_b = markov_trace(40, 4000, locality=0.9, seed=2).prefixed("b_")
    phase_c = zipf_trace(40, 4000, alpha=1.3, seed=3).prefixed("c_")
    trace = phase_a.concatenated(phase_b).concatenated(phase_c)
    config = DWMConfig.for_items(trace.num_items, words_per_dbc=16)
    comparison = compare_static_vs_online(trace, config, window=500)
    print()
    print(
        format_table(
            ("policy", "total shifts"),
            [
                ("static profile (first phase)", comparison["static_first_window"]),
                ("online adaptive", comparison["online"]),
                ("  migration share", comparison["online_migration"]),
                ("oracle static", comparison["oracle_static"]),
            ],
            title=(
                "3. Phase-changing workload "
                f"({comparison['online_replacements']} online re-placements)"
            ),
        )
    )


def main() -> None:
    wear_section()
    reliability_section()
    adaptivity_section()


if __name__ == "__main__":
    main()
