"""Scenario: design-space exploration of a DWM scratchpad geometry.

An SoC architect choosing a DWM macro must fix the DBC length (L) and the
number of access ports (P) before tape-out; the best choice depends on the
workload *and* on how good the data placement will be.  This script sweeps
L × P for the matrix-multiply kernel, evaluates declaration vs heuristic
placement at every design point, and reports energy-latency figures so the
trade-off is visible.

Usage::

    python examples/design_space_exploration.py
"""

from repro.analysis.report import format_table
from repro.analysis.sweep import normalized_by_method, sweep
from repro.core.api import optimize_placement
from repro.dwm.config import DWMConfig
from repro.dwm.energy import DWMEnergyModel
from repro.memory.spm import ScratchpadMemory
from repro.trace.kernels import matmul_trace

LENGTHS = (16, 32, 64)
PORTS = (1, 2, 4)


def main() -> None:
    trace = matmul_trace(size=6)
    print(f"workload: {trace.name} — {len(trace)} accesses, "
          f"{trace.num_items} items\n")

    records = sweep(
        [trace],
        methods=("declaration", "heuristic"),
        words_per_dbc_values=LENGTHS,
        num_ports_values=PORTS,
    )
    normalized = normalized_by_method(records)

    model = DWMEnergyModel()
    rows = []
    best = None
    for length in LENGTHS:
        for ports in PORTS:
            config = DWMConfig.for_items(
                trace.num_items, words_per_dbc=length, num_ports=ports
            )
            result = optimize_placement(trace, config, method="heuristic")
            sim = ScratchpadMemory(config, result.placement).simulate(trace)
            breakdown = sim.energy(model)
            ratio = normalized[(trace.name, length, ports)]["heuristic"]
            rows.append(
                (
                    f"L={length}",
                    f"P={ports}",
                    config.num_dbcs,
                    result.total_shifts,
                    ratio,
                    breakdown.latency_ns,
                    breakdown.total_energy_pj,
                )
            )
            key = (breakdown.total_energy_pj, breakdown.latency_ns)
            if best is None or key < best[0]:
                best = (key, length, ports)
    print(
        format_table(
            ("DBC len", "ports", "DBCs", "heur. shifts", "vs decl",
             "latency (ns)", "energy (pJ)"),
            rows,
            title="Design-space sweep: matmul with heuristic placement",
            float_format="{:.2f}",
        )
    )
    assert best is not None
    _key, length, ports = best
    print(
        f"\nlowest-energy design point for this workload: "
        f"L={length}, P={ports}"
    )
    print(
        "note: longer DBCs amortise ports over more words (less area) but\n"
        "expose more shift distance — placement quality decides how much of\n"
        "that exposure is actually paid."
    )

    # Pareto view: latency x energy x area (ports cost area).
    from repro.analysis.dse import explore, knee_point, pareto_front, render_front

    points = explore(trace, lengths=LENGTHS, ports=PORTS)
    front = pareto_front(points)
    print()
    print(render_front(points, front))
    knee = knee_point(front)
    print(f"\nbalanced (knee) design: {knee.label}")


if __name__ == "__main__":
    main()
