"""Quickstart: optimize the data placement of one kernel on a DWM scratchpad.

Runs the FIR benchmark kernel, compares the paper's placement heuristic
against the baseline placements, and shows the resulting shift, latency, and
energy improvements on the simulated device.

Usage::

    python examples/quickstart.py
"""

from repro import DWMConfig, compare_methods
from repro.analysis.metrics import reduction_percent
from repro.analysis.report import format_table
from repro.dwm.energy import DWMEnergyModel
from repro.memory.spm import ScratchpadMemory
from repro.trace.kernels import fir_trace


def main() -> None:
    # 1. Produce an access trace by executing a real FIR filter.
    trace = fir_trace(taps=16, samples=48)
    print(f"trace: {trace.name} — {len(trace)} accesses over "
          f"{trace.num_items} items\n")

    # 2. Size a DWM scratchpad for it: 64-word DBCs, one port each.
    config = DWMConfig.for_items(trace.num_items, words_per_dbc=64)
    print(f"device: {config.describe()}\n")

    # 3. Run the baselines and the heuristic.
    results = compare_methods(
        trace, config,
        methods=("declaration", "random", "frequency", "heuristic"),
    )

    # 4. Simulate each placement and report.
    model = DWMEnergyModel()
    baseline = results["declaration"]
    rows = []
    for method, result in results.items():
        sim = ScratchpadMemory(config, result.placement).simulate(trace)
        breakdown = sim.energy(model)
        rows.append(
            (
                method,
                result.total_shifts,
                reduction_percent(baseline.total_shifts, result.total_shifts),
                breakdown.latency_ns,
                breakdown.total_energy_pj,
            )
        )
    print(
        format_table(
            ("placement", "shifts", "reduction %", "latency (ns)", "energy (pJ)"),
            rows,
            title="FIR on a DWM scratchpad",
            float_format="{:.1f}",
        )
    )

    best = results["heuristic"]
    print(
        f"\nheuristic placement removed "
        f"{reduction_percent(baseline.total_shifts, best.total_shifts):.1f}% "
        f"of shift operations (computed in {best.runtime_seconds * 1e3:.2f} ms)"
    )


if __name__ == "__main__":
    main()
