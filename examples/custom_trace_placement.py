"""Scenario: placing *your own* workload — record, persist, optimize.

Shows the full user workflow for code this library has never seen:

1. instrument an application loop with :class:`TracedArray` /
   :class:`TracedScalar` so its memory behaviour is recorded;
2. save the trace to disk (JSONL) as a build step would;
3. reload it, optimize the placement, and emit a placement map a linker
   script or SPM allocator could consume.

The sample application is a tiny run-length encoder over a sensor ring
buffer — a pattern none of the built-in kernels covers.

Usage::

    python examples/custom_trace_placement.py
"""

import json
import random
import tempfile
from pathlib import Path

from repro import DWMConfig, optimize_placement
from repro.analysis.report import format_table
from repro.trace import io as trace_io
from repro.trace.model import TracedArray, TracedScalar, TraceRecorder


def run_length_encode(recorder: TraceRecorder) -> list[tuple[int, int]]:
    """Run-length encode a noisy sensor buffer (instrumented)."""
    rng = random.Random(2026)
    raw = [rng.choice([0, 0, 0, 1, 1, 2]) for _ in range(48)]
    sensor = TracedArray("sensor", raw, recorder)
    out_values = TracedArray("rle_val", [0] * 48, recorder)
    out_counts = TracedArray("rle_cnt", [0] * 48, recorder)
    run_value = TracedScalar("run_value", sensor[0], recorder)
    run_length = TracedScalar("run_length", 1, recorder)
    out_index = TracedScalar("out_index", 0, recorder)
    for i in range(1, len(sensor)):
        current = sensor[i]
        if current == run_value.get():
            run_length.set(run_length.get() + 1)
        else:
            index = out_index.get()
            out_values[index] = run_value.get()
            out_counts[index] = run_length.get()
            out_index.set(index + 1)
            run_value.set(current)
            run_length.set(1)
    index = out_index.get()
    out_values[index] = run_value.get()
    out_counts[index] = run_length.get()
    out_index.set(index + 1)
    count = out_index.get()
    return [
        (out_values.peek(i), out_counts.peek(i)) for i in range(count)
    ]


def main() -> None:
    # 1. Record the application.
    recorder = TraceRecorder()
    runs = run_length_encode(recorder)
    trace = recorder.to_trace("rle", metadata={"app": "run-length encoder"})
    print(f"recorded {len(trace)} accesses over {trace.num_items} items; "
          f"encoder emitted {len(runs)} runs\n")

    # 2. Persist the trace (what a tracing build step would leave behind).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "rle.jsonl"
        trace_io.save(trace, path)
        reloaded = trace_io.load(path)
        assert reloaded == trace
        print(f"trace round-tripped through {path.name} "
              f"({path.stat().st_size} bytes)\n")

    # 3. Optimize and compare.
    config = DWMConfig.for_items(trace.num_items, words_per_dbc=32)
    rows = []
    heuristic = None
    for method in ("declaration", "heuristic"):
        result = optimize_placement(reloaded, config, method=method)
        rows.append((method, result.total_shifts))
        if method == "heuristic":
            heuristic = result
    print(format_table(("placement", "shifts"), rows,
                       title="Run-length encoder placement"))

    # 4. Emit a placement map an SPM allocator could consume.
    assert heuristic is not None
    placement_map = {
        item: {"dbc": slot.dbc, "offset": slot.offset}
        for item, slot in sorted(heuristic.placement.items())
    }
    print("\nplacement map (first 8 entries):")
    for item in list(placement_map)[:8]:
        print(f"  {item:14s} -> {json.dumps(placement_map[item])}")


if __name__ == "__main__":
    main()
