"""Scenario: an embedded audio-DSP pipeline sharing one DWM scratchpad.

Models the workload class the paper's introduction motivates: a small
always-on DSP runs a chain of filters (FIR pre-filter → IIR equalizer → LMS
echo canceller) whose working sets live together in a scratchpad.  The
combined access trace interleaves streaming and pointer-chasing patterns, so
a shift-aware placement matters more than for any single kernel.

The script places the pipeline's combined trace with each method, then
reports shifts, latency, energy — including the iso-capacity SRAM reference
— and prints where the heuristic put the hottest items.

Usage::

    python examples/embedded_dsp_pipeline.py
"""

from repro import DWMConfig, optimize_placement
from repro.analysis.report import format_table
from repro.dwm.energy import DWMEnergyModel
from repro.memory.spm import ScratchpadMemory
from repro.memory.sram import SRAMScratchpad
from repro.trace.kernels import fir_trace, iir_trace, lms_trace


def build_pipeline_trace():
    """Concatenate per-stage traces into one frame-processing super-trace.

    Each stage's items keep their own names (the kernels use distinct array
    names), so the combined trace is a faithful model of one shared SPM.
    """
    fir = fir_trace(taps=12, samples=32, seed=101)
    iir = iir_trace(sections=3, samples=32, seed=102)
    lms = lms_trace(taps=8, samples=32, seed=103)
    frame = fir.concatenated(iir).concatenated(lms)
    # Process several frames: the pipeline repeats every frame period.
    trace = frame
    for _ in range(2):
        trace = trace.concatenated(frame)
    return trace.renamed("dsp-pipeline(3 stages x 3 frames)")


def main() -> None:
    trace = build_pipeline_trace()
    print(f"pipeline trace: {len(trace)} accesses, {trace.num_items} items\n")

    config = DWMConfig.for_items(trace.num_items, words_per_dbc=32)
    model = DWMEnergyModel()

    rows = []
    sims = {}
    for method in ("declaration", "frequency", "heuristic", "heuristic+ls"):
        result = optimize_placement(trace, config, method=method)
        sim = ScratchpadMemory(config, result.placement).simulate(trace)
        sims[method] = (result, sim)
        breakdown = sim.energy(model)
        rows.append(
            (
                method,
                result.total_shifts,
                f"{sim.shifts_per_access:.2f}",
                breakdown.latency_ns,
                breakdown.total_energy_pj,
            )
        )
    # SRAM reference (placement-insensitive).
    sram = SRAMScratchpad(config.capacity_words).simulate(trace)
    sram_breakdown = sram.sram_reference()
    rows.append(
        (
            "SRAM (reference)",
            0,
            "0.00",
            sram_breakdown.latency_ns,
            sram_breakdown.total_energy_pj,
        )
    )
    print(
        format_table(
            ("placement", "shifts", "shifts/access", "latency (ns)", "energy (pJ)"),
            rows,
            title="DSP pipeline on a shared DWM scratchpad",
            float_format="{:.1f}",
        )
    )

    # Show where the heuristic put the ten hottest items.
    result, _sim = sims["heuristic"]
    frequencies = trace.frequencies()
    hottest = [item for item, _count in frequencies.most_common(10)]
    placement_rows = [
        (item, frequencies[item], result.placement[item].dbc,
         result.placement[item].offset)
        for item in hottest
    ]
    print()
    print(
        format_table(
            ("item", "accesses", "DBC", "offset"),
            placement_rows,
            title="Hottest items under the heuristic placement "
                  f"(ports at offset {config.port_offsets[0]})",
        )
    )


if __name__ == "__main__":
    main()
