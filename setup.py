"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs setuptools' legacy develop
path when wheel is unavailable offline; this shim enables it.  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
