"""Chaos soak: randomized failpoint schedules over real workloads.

:func:`run_soak` is the executable form of the robustness claim in
``docs/CHAOS.md``: run representative workloads (a checkpointed parallel
sweep, a pack→streaming simulation, a cold/warm cached placement) under
many seeded random :class:`~repro.chaos.ChaosPlan` schedules and assert
that every run either

* produces results **byte-identical** to the failure-free baseline
  (faults absorbed by retries / degradation chains), or
* aborts with a **typed** error (:class:`~repro.errors.ReproError` or
  ``OSError`` family) — never a hang, an untyped crash, a leaked shared
  memory segment, an orphan worker, or a stray ``*.tmp`` file.

A final phase tears artifacts on purpose (truncated ``.rtb`` records and
metadata, a torn checkpoint-journal tail, a corrupt cache shard) and
asserts ``repro fsck --repair`` brings every one back to a loadable
state.

Everything is derived from the soak seed, so ``repro chaos soak --seed
2015`` reproduces bit-for-bit anywhere.  On small containers the harness
temporarily widens :func:`repro.analysis.parallel._cpu_count` so the
pooled paths are actually exercised (the 1-CPU cap would otherwise
silently serialize every workload and the pool/shm failpoints would
never fire).
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import signal
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.chaos import ChaosPlan, chaos_scope
from repro.errors import InjectedFaultError, ReproError
from repro.util import TMP_SUFFIX

#: Per-schedule wall-clock bound; exceeding it counts as a hang (violation).
RUN_TIMEOUT_SECONDS = 120


class SoakHang(Exception):
    """A chaos run exceeded :data:`RUN_TIMEOUT_SECONDS` (deliberately not a
    :class:`ReproError`: a hang is a soak violation, not a clean abort)."""


@dataclass
class SoakRunResult:
    """Outcome of one chaos schedule."""

    index: int
    spec: str
    outcome: str  # identical | typed-abort | mismatch | untyped-error | hang
    error: str = ""
    fires: dict = field(default_factory=dict)
    leaks: list = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.outcome in ("identical", "typed-abort") and not self.leaks

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class SoakReport:
    """Outcome of a whole soak sweep."""

    seed: int
    schedules: int
    runs: list = field(default_factory=list)
    fsck: list = field(default_factory=list)
    degradations: dict = field(default_factory=dict)
    baseline_seconds: float = 0.0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return (
            all(run.ok for run in self.runs)
            and all(entry["ok"] for entry in self.fsck)
            and len(self.runs) == self.schedules
        )

    def outcome_counts(self) -> dict:
        counts: dict[str, int] = {}
        for run in self.runs:
            counts[run.outcome] = counts.get(run.outcome, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "schedules": self.schedules,
            "ok": self.ok,
            "outcomes": self.outcome_counts(),
            "runs": [run.to_dict() for run in self.runs],
            "fsck": list(self.fsck),
            "degradations": dict(self.degradations),
            "baseline_seconds": round(self.baseline_seconds, 3),
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }


# --------------------------------------------------------------------------
# Workloads.  Each takes a fresh run directory and returns a JSON-able
# snapshot containing only chaos-invariant fields (no runtimes, cache hit
# counts, or engine labels — degradation may legally change those while
# producing identical results).


def _traces():
    from repro.trace.synthetic import pingpong_trace, zipf_trace

    return [
        zipf_trace(num_items=24, num_accesses=1200, seed=3),
        pingpong_trace(num_pairs=8, rounds=50),
    ]


def _pack_trace(trace, path: Path) -> int:
    from repro.trace.binio import pack
    from repro.trace.model import AccessKind

    pairs = (
        (access.item, "W" if access.kind is AccessKind.WRITE else "R")
        for access in trace
    )
    return pack(pairs, path, name=trace.name, metadata=dict(trace.metadata))


def _workload_sweep(workdir: Path) -> dict:
    """Checkpointed parallel sweep; retries absorb injected worker faults.

    A cell that still exhausts its retries surfaces as a *typed* abort
    (raised here) rather than a silent hole in the result table.
    """
    from repro.analysis.checkpoint import CheckpointJournal
    from repro.analysis.parallel import TaskFailure
    from repro.analysis.sweep import sweep

    journal = CheckpointJournal(workdir / "sweep.journal")
    try:
        records = sweep(
            _traces(),
            methods=("declaration", "heuristic"),
            words_per_dbc_values=(8, 16),
            jobs=2,
            retries=3,
            checkpoint=journal,
        )
    finally:
        journal.close()
    failures = [r for r in records if isinstance(r, TaskFailure)]
    if failures:
        raise InjectedFaultError(
            f"{len(failures)} sweep cell(s) exhausted retries under chaos"
        )
    rows = []
    for record in records:
        row = dataclasses.asdict(record)
        row.pop("runtime_seconds", None)
        rows.append(row)
    return {"sweep": rows}


def _workload_streaming(workdir: Path) -> dict:
    """Pack an ``.rtb``, place from its sample, replay it out-of-core."""
    from repro.core.api import optimize_placement
    from repro.dwm.config import DWMConfig
    from repro.memory.spm import ScratchpadMemory
    from repro.trace.binio import open_binary

    trace = _traces()[0]
    path = workdir / "stream.rtb"
    _pack_trace(trace, path)
    streaming = open_binary(path)
    config = DWMConfig.for_items(streaming.num_items, words_per_dbc=16)
    placed = optimize_placement(streaming, config, method="heuristic")
    spm = ScratchpadMemory(config, placed.placement)
    result = spm.simulate(streaming, chunk_size=256, jobs=2)
    return {
        "streaming": {
            "placement_shifts": placed.total_shifts,
            "shifts": result.shifts,
            "reads": result.reads,
            "writes": result.writes,
            "per_dbc_shifts": list(result.per_dbc_shifts),
            "max_access_shifts": result.max_access_shifts,
        }
    }


def _workload_cached(workdir: Path) -> dict:
    """Cold + warm placement through the on-disk result cache."""
    from repro.analysis.cache import cache_scope
    from repro.core.api import optimize_placement
    from repro.dwm.config import DWMConfig

    trace = _traces()[1]
    config = DWMConfig.for_items(trace.num_items, words_per_dbc=8)
    with cache_scope(root=workdir / "cache"):
        cold = optimize_placement(trace, config, method="heuristic")
        warm = optimize_placement(trace, config, method="heuristic")
    return {
        "cached": {
            "cold_shifts": cold.total_shifts,
            "warm_shifts": warm.total_shifts,
            "method": cold.method,
        }
    }


_WORKLOADS: tuple[Callable[[Path], dict], ...] = (
    _workload_sweep,
    _workload_streaming,
    _workload_cached,
)


def _run_workloads(rundir: Path) -> str:
    snapshot: dict = {}
    for workload in _WORKLOADS:
        subdir = rundir / workload.__name__.replace("_workload_", "")
        subdir.mkdir(parents=True, exist_ok=True)
        snapshot.update(workload(subdir))
    return json.dumps(snapshot, sort_keys=True)


# --------------------------------------------------------------------------
# Leak / teardown accounting.


def _teardown_and_leaks(rundir: Path) -> list[str]:
    """Shut worker pools down and report anything a clean run must not leave."""
    import multiprocessing

    from repro.analysis.checkpoint import flush_active_journals
    from repro.analysis.pool import shutdown_pools
    from repro.memory import shm

    leaks: list[str] = []
    flush_active_journals()
    shutdown_pools()
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    orphans = multiprocessing.active_children()
    if orphans:
        for proc in orphans:
            proc.terminate()
        leaks.append(f"{len(orphans)} orphan worker process(es)")
    segments = shm.active_segments()
    if segments:
        leaks.append(f"leaked shm segments: {segments}")
        shm.unlink_all()
    strays = sorted(
        str(p.relative_to(rundir)) for p in rundir.rglob(f"*{TMP_SUFFIX}")
    )
    if strays:
        leaks.append(f"stray temp files: {strays}")
    return leaks


def _alarm_guard(seconds: int):
    """Raise :class:`SoakHang` if the guarded block overruns (POSIX only)."""
    from contextlib import contextmanager

    @contextmanager
    def guard():
        if not hasattr(signal, "SIGALRM"):
            yield
            return

        def _on_alarm(signum, frame):
            raise SoakHang(f"run exceeded {seconds}s")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.alarm(seconds)
        try:
            yield
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)

    return guard()


# --------------------------------------------------------------------------
# fsck phase: corrupt real artifacts, repair them, verify they load again.


def _fsck_phase(workdir: Path) -> list[dict]:
    """Tear every artifact kind, then assert ``fsck --repair`` salvages it."""
    from repro.analysis.checkpoint import CheckpointJournal
    from repro.fsck import fsck_path
    from repro.trace.binio import _HEADER_STRUCT, open_binary

    root = workdir / "fsck"
    root.mkdir(parents=True, exist_ok=True)
    trace = _traces()[0]
    pristine = root / "pristine.rtb"
    _pack_trace(trace, pristine)
    raw = pristine.read_bytes()
    size = len(raw)
    meta_start = _HEADER_STRUCT.unpack(raw[: _HEADER_STRUCT.size])[6]
    victims: list[tuple[str, Path]] = []

    torn_records = root / "torn_records.rtb"
    torn_records.write_bytes(raw[: 128 + (len(trace) // 2) * 4 + 2])
    victims.append(("rtb-torn-records", torn_records))

    torn_meta = root / "torn_meta.rtb"
    torn_meta.write_bytes(raw[: meta_start + (size - meta_start) // 2])
    victims.append(("rtb-torn-meta", torn_meta))

    journal_path = root / "torn.journal"
    journal = CheckpointJournal(journal_path)
    for index in range(5):
        journal.record(f"cell-{index}", {"value": index})
    journal.close()
    with open(journal_path, "ab") as handle:
        handle.write(b'{"key": "cell-5", "payl')  # torn mid-record, no \n
    victims.append(("journal-torn-tail", journal_path))

    cache_root = root / "cache"
    shard = cache_root / "ab"
    shard.mkdir(parents=True, exist_ok=True)
    (shard / "deadbeef.json").write_text('{"schema": 1, "result"')
    (cache_root / f".orphan{TMP_SUFFIX}").write_text("")
    victims.append(("cache-corrupt-shard", cache_root))

    entries: list[dict] = []
    for label, path in victims:
        report = fsck_path(path, repair=True)
        ok = report.status in ("ok", "repaired")
        if ok and path.suffix == ".rtb":
            # A repaired trace must actually load.
            try:
                open_binary(path).read_write_counts()
            except Exception as exc:  # pragma: no cover - defensive
                ok = False
                report.detail += f"; reopen failed: {exc}"
        entries.append(
            {
                "artifact": label,
                "status": report.status,
                "salvaged_records": report.salvaged_records,
                "detail": report.detail,
                "ok": ok,
            }
        )
    return entries


# --------------------------------------------------------------------------
# Driver.


def run_soak(
    seed: int = 2015,
    schedules: int = 25,
    workdir: str | Path | None = None,
    out: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> SoakReport:
    """Run the chaos soak (see module docstring)."""
    from repro import robust
    from repro.analysis import parallel
    from repro.analysis.pool import shutdown_pools

    report = SoakReport(seed=seed, schedules=schedules)
    started = time.monotonic()
    owned_tmp = workdir is None
    base = Path(workdir) if workdir else Path(tempfile.mkdtemp(prefix="soak-"))
    base.mkdir(parents=True, exist_ok=True)
    saved_cpu_count = parallel._cpu_count
    try:
        # Let jobs=2 through on single-CPU CI hosts so the pooled/shm
        # failpoints are exercised; the workloads are tiny.
        parallel._cpu_count = lambda: max(4, saved_cpu_count())

        def say(message: str) -> None:
            if progress:
                progress(message)

        shutdown_pools()
        say("baseline: running workloads twice without chaos")
        baseline_started = time.monotonic()
        first = _run_workloads(base / "baseline-a")
        shutdown_pools()
        second = _run_workloads(base / "baseline-b")
        shutdown_pools()
        report.baseline_seconds = time.monotonic() - baseline_started
        if first != second:
            raise ReproError(
                "soak workloads are nondeterministic without chaos; "
                "cannot use them as a byte-identical oracle"
            )

        for index in range(schedules):
            plan = ChaosPlan.random(seed + index)
            rundir = base / f"run-{index:03d}"
            rundir.mkdir(parents=True, exist_ok=True)
            run = SoakRunResult(index=index, spec=plan.to_spec(), outcome="")
            run_started = time.monotonic()
            try:
                with _alarm_guard(RUN_TIMEOUT_SECONDS):
                    with chaos_scope(plan):
                        snapshot = _run_workloads(rundir)
                run.outcome = (
                    "identical" if snapshot == first else "mismatch"
                )
                if run.outcome == "mismatch":
                    run.error = "results differ from failure-free baseline"
            except SoakHang as exc:
                run.outcome = "hang"
                run.error = str(exc)
            except (ReproError, OSError) as exc:
                run.outcome = "typed-abort"
                run.error = f"{type(exc).__name__}: {exc}"
            except Exception as exc:  # noqa: BLE001 - the point of the soak
                run.outcome = "untyped-error"
                run.error = f"{type(exc).__name__}: {exc}"
            finally:
                run.leaks = _teardown_and_leaks(rundir)
                run.fires = plan.fire_counts()
                run.seconds = round(time.monotonic() - run_started, 3)
            report.runs.append(run)
            status = "ok" if run.ok else "VIOLATION"
            say(
                f"schedule {index:03d} [{status}] {run.outcome} "
                f"({run.seconds:.1f}s) {run.spec}"
                + (f" -- {run.error}" if run.error else "")
            )
            if run.ok and run.outcome == "identical":
                # Byte-identical output means retries/degradation absorbed
                # the faults; nothing from this run needs keeping.
                shutil.rmtree(rundir, ignore_errors=True)

        say("fsck: corrupting artifacts and repairing them")
        report.fsck = _fsck_phase(base)
        for entry in report.fsck:
            status = "ok" if entry["ok"] else "VIOLATION"
            say(
                f"fsck {entry['artifact']} [{status}] {entry['status']}: "
                f"{entry['detail']}"
            )
        report.degradations = robust.degradation_summary()
    finally:
        parallel._cpu_count = saved_cpu_count
        shutdown_pools()
        if owned_tmp:
            shutil.rmtree(base, ignore_errors=True)
    report.elapsed_seconds = time.monotonic() - started
    if out is not None:
        from repro.util import atomic_write_text

        atomic_write_text(
            Path(out),
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
        )
    return report
