"""Deterministic failpoint injection for chaos testing (``repro.chaos``).

The reliability layer (retries, checkpoint journals, cache quarantine,
pool worker replacement, streaming fallbacks) is only trustworthy if its
error paths are *exercised*; this module makes every I/O and IPC boundary
in the stack injectable.  A **failpoint** is a named hook planted at such
a boundary::

    from repro.chaos import failpoint
    failpoint("binio.read")            # may raise / delay / kill
    action = failpoint("journal.append", payload_len=len(line))
    if action is not None and action.kind == "truncate":
        line = line[: action.keep_bytes]   # cooperative torn write

Failpoints are **free when chaos is off** (one global ``None`` check) and
fully deterministic when on: every rule carries its own seeded RNG, so a
schedule replays identically from its spec string.

**Spec grammar** (``REPRO_CHAOS`` environment variable or
:meth:`ChaosPlan.parse`) — comma-separated rules, each
``<point>(:<param>)*``::

    REPRO_CHAOS="binio.read:nth=3:raise=IOError,pool.dispatch:p=0.05:seed=7"

Params:

* ``nth=N`` — fire on exactly the N-th hit of the point (1-based).
* ``p=F`` — fire each hit with probability ``F`` (seeded; see ``seed``).
* ``seed=N`` — RNG seed for ``p`` rules (default: derived from the point
  name, so distinct points decorrelate).
* ``times=N`` — maximum number of fires (default 1; ``times=0`` means
  unlimited).
* ``raise=TYPE`` — raise this error type when firing (default
  :class:`~repro.errors.InjectedFaultError`; see :data:`ERROR_TYPES`).
* ``delay=SECONDS`` — sleep instead of raising.
* ``kill`` — hard-exit the *current process* (``os._exit``); plant only at
  worker-side points (``pool.task``) to simulate crashed workers.
* ``truncate=KEEP`` — cooperative action: the call site receives a
  :class:`FailpointAction` telling it to keep only ``KEEP`` bytes of its
  payload (torn-write simulation).  Sites that cannot truncate ignore it.

A rule with neither ``nth`` nor ``p`` fires on every hit (up to
``times``).  Unknown points, actions or malformed params raise
:class:`ChaosSpecError` at parse time, not silently at run time.

Plans install process-globally (:func:`chaos_scope` /
:func:`install_plan`) and — because installation mirrors the spec into
``REPRO_CHAOS`` — propagate into pool workers under both ``fork`` and
``spawn`` start methods (workers call :func:`ensure_installed_from_env`
on startup).  The soak harness lives in :mod:`repro.chaos.soak`; the spec
grammar and failpoint catalog are documented in ``docs/CHAOS.md``.
"""

from __future__ import annotations

import os
import random
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import (
    ConfigError,
    InjectedFaultError,
    ReproError,
    SimulationError,
    TraceError,
)

__all__ = [
    "CHAOS_ENV",
    "ChaosPlan",
    "ChaosSpecError",
    "FailpointAction",
    "FailpointRule",
    "chaos_scope",
    "ensure_installed_from_env",
    "failpoint",
    "failpoints",
    "install_plan",
    "is_active",
    "uninstall_plan",
]

#: Environment variable carrying the active chaos spec.
CHAOS_ENV = "REPRO_CHAOS"

#: Process-generation stamp (set by the worker pool before each spawn).
#: ``kill`` rules only fire in generations below their ``times``, so a
#: replacement worker does not immediately kill itself again — without
#: this, a kill failpoint crash-loops the pool (respawned workers
#: re-install the plan from the environment with fresh hit counters) and
#: no retry budget can ever succeed.
GENERATION_ENV = "REPRO_CHAOS_GEN"

#: Exit code of a ``kill`` action (distinctive in crash reports).
KILL_EXIT_CODE = 86

#: Error types a ``raise=`` param may name.  Deliberately a closed set:
#: chaos must only raise *typed* errors the degradation layer classifies.
ERROR_TYPES: dict[str, type] = {
    "InjectedFaultError": InjectedFaultError,
    "IOError": IOError,
    "OSError": OSError,
    "EOFError": EOFError,
    "BrokenPipeError": BrokenPipeError,
    "TimeoutError": TimeoutError,
    "MemoryError": MemoryError,
    "ConnectionError": ConnectionError,
    "TraceError": TraceError,
    "SimulationError": SimulationError,
    "ConfigError": ConfigError,
}

#: The failpoint catalog: every point planted in the codebase.  The spec
#: parser rejects names outside it so a typo cannot silently disable a
#: schedule.  Extend with :func:`register_failpoint` when planting new ones.
_CATALOG: set[str] = {
    "pool.dispatch",   # parent→worker task send (analysis/pool.py)
    "pool.task",       # worker-side, before running a task (analysis/pool.py)
    "shm.publish",     # shared-memory segment creation (memory/shm.py)
    "shm.attach",      # worker-side segment attach (memory/shm.py)
    "binio.read",      # binary-trace header/window reads (trace/binio.py)
    "binio.write",     # binary-trace pack writes (trace/binio.py)
    "cache.read",      # result-cache shard read (analysis/cache.py)
    "cache.write",     # result-cache shard write (analysis/cache.py)
    "journal.append",  # checkpoint-journal record append (analysis/checkpoint.py)
    "kernel.compile",  # compiled-kernel backend selection (core/kernels.py)
    "stream.scan",     # streaming-engine chunk scan (memory/stream_sim.py)
}


class ChaosSpecError(ReproError, ValueError):
    """A chaos spec string (``REPRO_CHAOS``) is malformed."""


def register_failpoint(name: str) -> str:
    """Add ``name`` to the failpoint catalog (for out-of-tree plants)."""
    _CATALOG.add(name)
    return name


def failpoints() -> tuple[str, ...]:
    """The sorted failpoint catalog."""
    return tuple(sorted(_CATALOG))


@dataclass(frozen=True)
class FailpointAction:
    """Cooperative action returned to a call site (currently: truncate)."""

    point: str
    kind: str
    keep_bytes: int = 0


@dataclass(frozen=True)
class FailpointRule:
    """One parsed rule of a chaos schedule (see the module docstring)."""

    point: str
    action: str = "raise"
    error: str = "InjectedFaultError"
    nth: int | None = None
    p: float | None = None
    seed: int | None = None
    times: int = 1
    delay_seconds: float = 0.0
    keep_bytes: int = 0

    def __post_init__(self) -> None:
        if self.point not in _CATALOG:
            raise ChaosSpecError(
                f"unknown failpoint {self.point!r}; "
                f"known: {', '.join(sorted(_CATALOG))}"
            )
        if self.action not in ("raise", "delay", "kill", "truncate"):
            raise ChaosSpecError(f"unknown chaos action {self.action!r}")
        if self.error not in ERROR_TYPES:
            raise ChaosSpecError(
                f"unknown error type {self.error!r}; "
                f"known: {', '.join(sorted(ERROR_TYPES))}"
            )
        if self.nth is not None and self.nth < 1:
            raise ChaosSpecError(f"nth must be >= 1, got {self.nth}")
        if self.p is not None and not 0.0 < self.p <= 1.0:
            raise ChaosSpecError(f"p must be in (0, 1], got {self.p}")
        if self.nth is not None and self.p is not None:
            raise ChaosSpecError("a rule takes nth= or p=, not both")
        if self.times < 0:
            raise ChaosSpecError(f"times must be >= 0, got {self.times}")

    # -- spec round-trip -----------------------------------------------
    def to_spec(self) -> str:
        """Render this rule back into the env-spec grammar."""
        parts = [self.point]
        if self.nth is not None:
            parts.append(f"nth={self.nth}")
        if self.p is not None:
            parts.append(f"p={self.p:g}")
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        if self.times != 1:
            parts.append(f"times={self.times}")
        if self.action == "raise":
            if self.error != "InjectedFaultError":
                parts.append(f"raise={self.error}")
        elif self.action == "delay":
            parts.append(f"delay={self.delay_seconds:g}")
        elif self.action == "kill":
            parts.append("kill")
        elif self.action == "truncate":
            parts.append(f"truncate={self.keep_bytes}")
        return ":".join(parts)

    @classmethod
    def parse(cls, text: str) -> "FailpointRule":
        """Parse one ``point:param:param`` rule."""
        fields = [part.strip() for part in text.strip().split(":")]
        if not fields or not fields[0]:
            raise ChaosSpecError(f"empty chaos rule in {text!r}")
        point = fields[0]
        kwargs: dict = {}

        def _int(key: str, value: str) -> int:
            try:
                return int(value)
            except ValueError:
                raise ChaosSpecError(
                    f"{point}: {key}= expects an integer, got {value!r}"
                ) from None

        def _float(key: str, value: str) -> float:
            try:
                return float(value)
            except ValueError:
                raise ChaosSpecError(
                    f"{point}: {key}= expects a number, got {value!r}"
                ) from None

        for param in fields[1:]:
            if not param:
                continue
            key, sep, value = param.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "kill":
                if sep:
                    raise ChaosSpecError(f"{point}: kill takes no value")
                kwargs["action"] = "kill"
            elif key == "raise":
                kwargs["action"] = "raise"
                kwargs["error"] = value or "InjectedFaultError"
            elif key == "delay":
                kwargs["action"] = "delay"
                kwargs["delay_seconds"] = _float(key, value)
            elif key == "truncate":
                kwargs["action"] = "truncate"
                kwargs["keep_bytes"] = _int(key, value) if value else 0
            elif key == "nth":
                kwargs["nth"] = _int(key, value)
            elif key == "p":
                kwargs["p"] = _float(key, value)
            elif key == "seed":
                kwargs["seed"] = _int(key, value)
            elif key == "times":
                kwargs["times"] = _int(key, value)
            else:
                raise ChaosSpecError(
                    f"{point}: unknown chaos param {key!r} in {text!r}"
                )
        return cls(point=point, **kwargs)


class _RuleState:
    """Per-process runtime state of one rule (hit/fire counters + RNG)."""

    __slots__ = ("hits", "fires", "rng")

    def __init__(self, rule: FailpointRule) -> None:
        self.hits = 0
        self.fires = 0
        seed = rule.seed
        if seed is None:
            # Decorrelate unseeded p-rules across points, deterministically.
            seed = zlib.crc32(rule.point.encode("utf-8"))
        self.rng = random.Random(seed)


@dataclass
class ChaosPlan:
    """A full chaos schedule: rules plus their runtime state."""

    rules: list[FailpointRule] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._states = [_RuleState(rule) for rule in self.rules]
        self._by_point: dict[str, list[int]] = {}
        for index, rule in enumerate(self.rules):
            self._by_point.setdefault(rule.point, []).append(index)

    # -- construction ---------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "ChaosPlan":
        """Parse a comma-separated spec string into a plan."""
        rules = [
            FailpointRule.parse(part)
            for part in spec.split(",")
            if part.strip()
        ]
        if not rules:
            raise ChaosSpecError(f"chaos spec {spec!r} contains no rules")
        return cls(rules)

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        max_rules: int = 3,
        points: Sequence[str] | None = None,
    ) -> "ChaosPlan":
        """A randomized-but-reproducible schedule for soak testing.

        Draws 1..``max_rules`` rules over ``points`` (default: the full
        catalog), mixing triggers (``nth`` early hits, low-``p``) and
        actions.  ``kill`` is only drawn for the worker-side ``pool.task``
        point and ``truncate`` only for points that honour it, so every
        generated schedule is recoverable-or-typed by construction.
        """
        rng = random.Random(seed)
        pool = sorted(points if points is not None else _CATALOG)
        count = rng.randint(1, max(1, max_rules))
        rules = []
        for _ in range(count):
            point = rng.choice(pool)
            trigger: dict = (
                {"nth": rng.randint(1, 4)}
                if rng.random() < 0.6
                else {"p": round(rng.uniform(0.05, 0.4), 3), "seed": rng.randint(0, 2**31)}
            )
            actions = ["raise", "delay"]
            if point == "pool.task":
                actions.append("kill")
            if point in ("journal.append", "binio.write"):
                actions.append("truncate")
            action = rng.choice(actions)
            kwargs: dict = dict(trigger)
            kwargs["times"] = rng.randint(1, 3)
            if action == "raise":
                kwargs["error"] = rng.choice(
                    ["InjectedFaultError", "IOError", "OSError", "TimeoutError"]
                )
            elif action == "delay":
                kwargs["delay_seconds"] = round(rng.uniform(0.001, 0.02), 4)
            elif action == "truncate":
                kwargs["keep_bytes"] = rng.randint(0, 8)
            rules.append(FailpointRule(point=point, action=action, **kwargs))
        return cls(rules)

    # -- spec round-trip ------------------------------------------------
    def to_spec(self) -> str:
        return ",".join(rule.to_spec() for rule in self.rules)

    def describe(self) -> str:
        return self.to_spec() or "<empty>"

    # -- bookkeeping ----------------------------------------------------
    def fire_counts(self) -> dict[str, int]:
        """``{point: fires}`` for every rule that fired in this process."""
        counts: dict[str, int] = {}
        for rule, state in zip(self.rules, self._states):
            if state.fires:
                counts[rule.point] = counts.get(rule.point, 0) + state.fires
        return counts

    # -- evaluation -----------------------------------------------------
    def hit(self, point: str) -> FailpointAction | None:
        """Evaluate one failpoint hit; may raise, sleep, kill, or direct."""
        indices = self._by_point.get(point)
        if not indices:
            return None
        directive: FailpointAction | None = None
        for index in indices:
            rule = self.rules[index]
            state = self._states[index]
            state.hits += 1
            if rule.nth is not None:
                fire = state.hits == rule.nth
            elif rule.p is not None:
                fire = state.rng.random() < rule.p
            else:
                fire = True
            if not fire or (rule.times and state.fires >= rule.times):
                continue
            state.fires += 1
            from repro.obs import get_registry

            get_registry().inc("chaos.fires", point=point, action=rule.action)
            if rule.action == "raise":
                raise ERROR_TYPES[rule.error](
                    f"chaos failpoint {point} "
                    f"(fire {state.fires}, hit {state.hits})"
                )
            if rule.action == "delay":
                time.sleep(rule.delay_seconds)
            elif rule.action == "kill":
                generation = _process_generation()
                if rule.times and generation >= rule.times:
                    continue
                os._exit(KILL_EXIT_CODE)
            elif rule.action == "truncate":
                directive = FailpointAction(
                    point=point, kind="truncate", keep_bytes=rule.keep_bytes
                )
        return directive


def _process_generation() -> int:
    """This process's spawn generation (0 in the main process).

    Read at kill-evaluation time so it works under both ``fork`` (the
    worker inherits the environment set just before forking) and
    ``spawn`` (the fresh interpreter re-reads the environment).
    """
    raw = os.environ.get(GENERATION_ENV, "").strip()
    try:
        return int(raw) if raw else 0
    except ValueError:
        return 0


# ---------------------------------------------------------------------------
# Global installation
# ---------------------------------------------------------------------------

_PLAN: ChaosPlan | None = None


def is_active() -> bool:
    """Whether a chaos plan is currently installed in this process."""
    return _PLAN is not None


def active_plan() -> ChaosPlan | None:
    """The installed plan (tests and the soak harness inspect it)."""
    return _PLAN


def failpoint(name: str, **_context) -> FailpointAction | None:
    """Evaluate the failpoint ``name``; the no-chaos fast path is one load.

    May raise a typed error, sleep, or kill the process according to the
    active plan; returns a :class:`FailpointAction` for cooperative
    actions (truncate) and ``None`` otherwise.  ``**_context`` is accepted
    (and ignored) so call sites can annotate hits for readability.
    """
    plan = _PLAN
    if plan is None:
        return None
    return plan.hit(name)


def install_plan(plan: ChaosPlan, *, export_env: bool = True) -> ChaosPlan:
    """Install ``plan`` process-globally; mirrors the spec into the env.

    ``export_env=True`` (default) writes the plan's spec to ``REPRO_CHAOS``
    so worker processes spawned while the plan is active inherit it.
    """
    global _PLAN
    _PLAN = plan
    if export_env:
        os.environ[CHAOS_ENV] = plan.to_spec()
    return plan


def uninstall_plan() -> None:
    """Remove the installed plan and clear ``REPRO_CHAOS``."""
    global _PLAN
    _PLAN = None
    os.environ.pop(CHAOS_ENV, None)


def ensure_installed_from_env() -> ChaosPlan | None:
    """Install a plan from ``REPRO_CHAOS`` if one is set and none is active.

    Called by pool workers on startup (see
    :func:`repro.analysis.parallel._worker_init`), so a chaos schedule
    follows the run into ``spawn``-mode workers exactly like the result
    cache does.  A malformed spec raises :class:`ChaosSpecError` — a
    chaos run with a typo'd spec must not silently run failure-free.
    """
    if _PLAN is not None:
        return _PLAN
    spec = os.environ.get(CHAOS_ENV, "").strip()
    if not spec:
        return None
    return install_plan(ChaosPlan.parse(spec), export_env=False)


@contextmanager
def chaos_scope(plan: ChaosPlan | str | None) -> Iterator[ChaosPlan | None]:
    """Install a plan (or spec string) for the duration of a ``with`` block.

    Restores the previously installed plan and the previous ``REPRO_CHAOS``
    value on exit, including on error — chaos must never leak out of the
    scope that asked for it.  ``plan=None`` disables chaos inside the block.
    """
    global _PLAN
    if isinstance(plan, str):
        plan = ChaosPlan.parse(plan)
    saved_plan = _PLAN
    saved_env = os.environ.get(CHAOS_ENV)
    try:
        if plan is None:
            _PLAN = None
            os.environ.pop(CHAOS_ENV, None)
        else:
            install_plan(plan)
        yield plan
    finally:
        _PLAN = saved_plan
        if saved_env is None:
            os.environ.pop(CHAOS_ENV, None)
        else:
            os.environ[CHAOS_ENV] = saved_env
