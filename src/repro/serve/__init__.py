"""Placement-as-a-service: the async batching front door (``repro.serve``).

The layers below this package — vectorized :mod:`repro.memory.batch_sim`,
the content-keyed :class:`~repro.analysis.cache.ResultCache`, persistent
:mod:`repro.analysis.pool` workers, streaming ``.rtb`` traces and the
:mod:`repro.obs` metrics registry — are building blocks for serving heavy
placement/simulation traffic.  This package is the front door:

* :mod:`repro.serve.server` — a long-running :mod:`asyncio` HTTP+JSON
  service exposing trace-upload, optimize, simulate and job-status
  endpoints;
* :mod:`repro.serve.admission` — token-bucket + bounded-queue admission
  control with typed 429/503 rejections;
* :mod:`repro.serve.batching` — a micro-batching scheduler coalescing
  compatible simulate requests into single vectorized passes;
* :mod:`repro.serve.client` — the blocking stdlib client used by tests,
  the CI smoke/load gates, and example drivers;
* :mod:`repro.serve.protocol` — the wire schema shared by all of the
  above.

See ``docs/SERVING.md`` for the endpoint reference and operational knobs.
"""

from repro.serve.protocol import (
    BadRequest,
    NotFound,
    Overloaded,
    RateLimited,
    ServeError,
)

__all__ = [
    "BadRequest",
    "NotFound",
    "Overloaded",
    "RateLimited",
    "ServeError",
]
