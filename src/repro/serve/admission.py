"""Token-bucket + bounded-queue admission control for the placement server.

Two independent gates protect the compute backend, checked in order:

1. **Rate** (:class:`TokenBucket`) — a classic token bucket (``rate``
   tokens/second, ``burst`` capacity).  An empty bucket rejects with
   :class:`~repro.serve.protocol.RateLimited` (HTTP 429): the client is
   sending faster than the service is provisioned for and should back
   off.  ``rate=None`` disables the gate.
2. **Queue depth** — a hard cap on admitted-but-unfinished compute
   requests.  A full queue rejects with
   :class:`~repro.serve.protocol.Overloaded` (HTTP 503): the backend is
   saturated and queueing further would only convert overload into
   unbounded latency.  This is the "shed, never hang" guarantee the CI
   load gate asserts.

Every decision is counted in :mod:`repro.obs` (``serve.admission.admitted``
and ``serve.admission.rejected{code=429|503}``, queue depth as the gauge
``serve.queue.depth``), so shedding behaviour is observable from the
``/v1/metrics`` endpoint without log scraping.

The controller is thread-safe: admissions happen on the event loop, but
releases arrive from executor threads when compute finishes.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.obs import get_registry
from repro.serve.protocol import Overloaded, RateLimited

__all__ = ["AdmissionController", "AdmissionTicket", "TokenBucket"]


class TokenBucket:
    """Monotonic-clock token bucket; ``rate=None`` means unlimited."""

    def __init__(
        self,
        rate: float | None,
        burst: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        self.rate = rate
        self.burst = float(burst if burst is not None else (rate or 0) or 1.0)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        if self.rate is None:
            return True
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (without refilling)."""
        return self._tokens if self.rate is not None else float("inf")


class AdmissionTicket:
    """Handle for one admitted request; ``release()`` frees its queue slot.

    Usable as a context manager; releasing twice is a no-op, so error
    paths can release defensively.
    """

    __slots__ = ("_controller", "_released")

    def __init__(self, controller: "AdmissionController") -> None:
        self._controller = controller
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class AdmissionController:
    """Front gate for compute endpoints: rate limit, then queue bound."""

    def __init__(
        self,
        *,
        rate: float | None = None,
        burst: float | None = None,
        max_queue: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.bucket = TokenBucket(rate, burst, clock=clock)
        self.max_queue = max_queue
        self.depth = 0
        self._lock = threading.Lock()
        self._draining = False

    def drain(self) -> None:
        """Reject all further admissions (server shutdown)."""
        with self._lock:
            self._draining = True

    def admit(self, endpoint: str) -> AdmissionTicket:
        """Admit one compute request or raise a typed rejection.

        Raises :class:`RateLimited` (429) when the token bucket is empty
        and :class:`Overloaded` (503) when the queue is full or the
        server is draining.  On success returns the ticket whose
        ``release()`` frees the queue slot.
        """
        registry = get_registry()
        with self._lock:
            if self._draining:
                registry.inc(
                    "serve.admission.rejected", code=503, endpoint=endpoint
                )
                raise Overloaded("server is shutting down")
            if not self.bucket.try_acquire():
                registry.inc(
                    "serve.admission.rejected", code=429, endpoint=endpoint
                )
                raise RateLimited(
                    f"request rate exceeds {self.bucket.rate:g}/s "
                    f"(burst {self.bucket.burst:g}); retry with backoff"
                )
            if self.depth >= self.max_queue:
                registry.inc(
                    "serve.admission.rejected", code=503, endpoint=endpoint
                )
                raise Overloaded(
                    f"compute queue full ({self.depth}/{self.max_queue}); "
                    "shedding load"
                )
            self.depth += 1
            registry.inc("serve.admission.admitted", endpoint=endpoint)
            registry.gauge("serve.queue.depth", self.depth)
        return AdmissionTicket(self)

    def _release(self) -> None:
        with self._lock:
            self.depth = max(0, self.depth - 1)
            get_registry().gauge("serve.queue.depth", self.depth)
