"""Wire schema shared by the placement server and its client.

Everything that crosses the HTTP boundary is JSON; this module owns the
conversions between the JSON payloads and the library's domain objects
(:class:`~repro.dwm.config.DWMConfig`,
:class:`~repro.core.placement.Placement`,
:class:`~repro.core.problem.PlacementResult`,
:class:`~repro.memory.result.SimulationResult`) plus the typed error
hierarchy both sides raise.  Keeping the schema in one importable place
means the server and client cannot drift apart silently.

Error model
-----------
:class:`ServeError` carries an HTTP ``status`` and a stable machine
``code``.  The admission-control rejections are the load-bearing ones:

* :class:`RateLimited` — HTTP 429, ``rate_limited``: the token bucket ran
  dry; retry after backoff.
* :class:`Overloaded` — HTTP 503, ``overloaded``: the bounded compute
  queue is full (or the server is shutting down); shed, don't wait.

Both are *typed and immediate* — an overloaded server answers in
microseconds instead of hanging clients on a queue it cannot drain.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.placement import Placement
from repro.core.problem import PlacementResult
from repro.dwm.config import DWMConfig, PortPolicy
from repro.errors import ReproError
from repro.memory.result import SimulationResult

#: Bump when a payload layout changes incompatibly.
PROTOCOL_VERSION = 1


# ---------------------------------------------------------------------------
# Typed errors (shared by server responses and client exceptions)
# ---------------------------------------------------------------------------


class ServeError(ReproError):
    """Base service error: HTTP ``status`` plus a stable ``code``."""

    status = 500
    code = "internal"

    def __init__(self, message: str, *, status: int | None = None,
                 code: str | None = None) -> None:
        super().__init__(message)
        if status is not None:
            self.status = status
        if code is not None:
            self.code = code


class BadRequest(ServeError):
    """Malformed request body, unknown field values, oversized payload."""

    status = 400
    code = "bad_request"


class NotFound(ServeError):
    """Unknown trace id, job id, or route."""

    status = 404
    code = "not_found"


class RateLimited(ServeError):
    """Admission token bucket empty — typed 429, never a hang."""

    status = 429
    code = "rate_limited"


class Overloaded(ServeError):
    """Bounded compute queue full or server draining — typed 503."""

    status = 503
    code = "overloaded"


#: code → exception class, for the client to re-raise what the server threw.
ERROR_CODES: dict[str, type[ServeError]] = {
    cls.code: cls
    for cls in (BadRequest, NotFound, RateLimited, Overloaded, ServeError)
}


def error_payload(exc: ServeError) -> dict:
    """JSON body of an error response."""
    return {"error": {"code": exc.code, "message": str(exc)}}


#: status → default error code when the body doesn't carry one (e.g. a
#: failed-job status payload, whose "error" is a bare message string).
_STATUS_CODES = {400: "bad_request", 404: "not_found",
                 429: "rate_limited", 503: "overloaded"}


def raise_for_payload(status: int, payload: dict) -> None:
    """Client side: re-raise the typed error encoded in an error body."""
    error = payload.get("error")
    if isinstance(error, dict):
        code = error.get("code", "internal")
        message = error.get("message", f"HTTP {status}")
    else:
        code = _STATUS_CODES.get(status, "internal")
        message = str(error) if error else f"HTTP {status}"
    cls = ERROR_CODES.get(code, ServeError)
    raise cls(message, status=status, code=code)


# ---------------------------------------------------------------------------
# Geometry
# ---------------------------------------------------------------------------


def config_to_payload(config: DWMConfig) -> dict:
    """JSON form of a geometry (uniform-port description)."""
    return {
        "words_per_dbc": config.words_per_dbc,
        "num_dbcs": config.num_dbcs,
        "num_ports": len(config.port_offsets),
        "policy": config.port_policy.value,
    }


def config_from_payload(
    payload: dict | None,
    *,
    num_items: int,
) -> DWMConfig:
    """Build the requested geometry; defaults mirror the library defaults.

    With no payload (or only some keys) the array is sized to fit
    ``num_items`` exactly as :func:`repro.core.api.build_problem` would.
    """
    payload = dict(payload or {})
    try:
        words_per_dbc = int(payload.pop("words_per_dbc", 64))
        num_ports = int(payload.pop("num_ports", 1))
        policy = PortPolicy.parse(payload.pop("policy", PortPolicy.LAZY))
        num_dbcs = payload.pop("num_dbcs", None)
        if payload:
            raise BadRequest(
                f"unknown config field(s): {sorted(payload)}"
            )
        if num_dbcs is not None:
            return DWMConfig.with_uniform_ports(
                words_per_dbc=words_per_dbc,
                num_dbcs=int(num_dbcs),
                num_ports=num_ports,
                port_policy=policy,
            )
        return DWMConfig.for_items(
            num_items,
            words_per_dbc=words_per_dbc,
            num_ports=num_ports,
            port_policy=policy,
        )
    except BadRequest:
        raise
    except (TypeError, ValueError, ReproError) as exc:
        raise BadRequest(f"invalid config: {exc}") from exc


def config_key(config: DWMConfig) -> str:
    """Canonical batching/caching key of a geometry (covers port layout)."""
    return json.dumps(
        {
            "words_per_dbc": config.words_per_dbc,
            "num_dbcs": config.num_dbcs,
            "bits_per_word": config.bits_per_word,
            "port_offsets": list(config.port_offsets),
            "policy": config.port_policy.value,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


# ---------------------------------------------------------------------------
# Placements and results
# ---------------------------------------------------------------------------


def placement_to_payload(placement: Placement) -> dict:
    """``{item: [dbc, offset]}`` JSON form."""
    return {item: list(slot) for item, slot in placement.as_dict().items()}


def placement_from_payload(payload: dict) -> Placement:
    """Rebuild a placement from its JSON form."""
    try:
        return Placement(
            {
                str(item): (int(slot[0]), int(slot[1]))
                for item, slot in payload.items()
            }
        )
    except (AttributeError, TypeError, ValueError, IndexError, KeyError) as exc:
        raise BadRequest(f"invalid placement payload: {exc}") from exc
    except ReproError as exc:
        raise BadRequest(f"invalid placement: {exc}") from exc


def result_to_payload(result: PlacementResult) -> dict:
    """JSON form of an optimize result."""
    return {
        "method": result.method,
        "total_shifts": result.total_shifts,
        "runtime_seconds": result.runtime_seconds,
        "placement": placement_to_payload(result.placement),
        "details": result.details,
    }


def sim_result_to_payload(result: SimulationResult) -> dict:
    """JSON form of a simulate result."""
    return {
        "trace_name": result.trace_name,
        "config": result.config_description,
        "shifts": result.shifts,
        "reads": result.reads,
        "writes": result.writes,
        "per_dbc_shifts": list(result.per_dbc_shifts),
        "max_access_shifts": result.max_access_shifts,
        "details": result.details,
    }


def simulate_key(
    trace_fingerprint: str,
    config: DWMConfig,
    placement_payload: dict,
) -> str:
    """Content hash of one simulate request (hex sha256).

    Keys the generic :meth:`~repro.analysis.cache.ResultCache.get`/``put``
    layer so warm simulate traffic is served without any compute, the same
    way :func:`~repro.analysis.cache.placement_key` fronts optimize runs.
    """
    document = {
        "kind": "simulate",
        "schema": PROTOCOL_VERSION,
        "trace": trace_fingerprint,
        "config": config_key(config),
        "placement": {
            str(item): [int(slot[0]), int(slot[1])]
            for item, slot in sorted(placement_payload.items())
        },
    }
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
