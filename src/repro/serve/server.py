"""Long-running asyncio HTTP+JSON placement service.

One process, one event loop, three tiers:

* **Front door** — a hand-rolled HTTP/1.1 layer over
  ``asyncio.start_server`` (stdlib only, keep-alive, bounded bodies).
  Endpoints: trace upload (JSONL payload or binary ``.rtb``), optimize,
  simulate, job status, health, metrics, shutdown; see ``docs/SERVING.md``.
* **Admission + coalescing** — every compute request passes the
  token-bucket/bounded-queue :class:`~repro.serve.admission.AdmissionController`
  (typed 429/503 rejections, never queueing beyond the bound), then the
  content-keyed :class:`~repro.analysis.cache.ResultCache` is consulted so
  warm traffic is answered without touching a worker, and cold simulate
  requests are coalesced by the :class:`~repro.serve.batching.MicroBatcher`
  into single vectorized passes.
* **Compute** — cold work runs in a small thread executor; optimize jobs
  are dispatched from there to the persistent
  :class:`~repro.analysis.pool.WorkerPool` (``pool_workers > 0``), falling
  back to in-process execution along the ``map`` degradation chain when
  the pool is unreachable.  The staged
  :func:`~repro.core.api.resolve_placement` /
  :func:`~repro.core.api.plan_placement` /
  :func:`~repro.core.api.execute_plan` split means uploaded traces are
  resolved exactly once and shared across every request that names them.

Shutdown reuses the toolkit-wide guarantees: ``repro serve`` installs
:func:`repro.robust.install_sigterm_handler`, so SIGTERM lands in the same
KeyboardInterrupt path as Ctrl-C — admission drains (typed 503s, no
hangs), worker pools and shared-memory segments are torn down, and the CLI
exits 130 with no orphan processes or stray segments (asserted by the
chaos-style teardown checks in ``tests/test_serve.py`` and
``scripts/service_load_check.py``).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.obs import get_registry
from repro.robust import record_degradation
from repro.serve.admission import AdmissionController
from repro.serve.batching import MicroBatcher
from repro.serve.protocol import (
    BadRequest,
    NotFound,
    Overloaded,
    ServeError,
    config_from_payload,
    config_key,
    error_payload,
    placement_from_payload,
    result_to_payload,
    sim_result_to_payload,
    simulate_key,
)
from repro.trace.model import Access, AccessKind, AccessTrace

__all__ = ["PlacementServer", "ServerSettings"]

#: HTTP reason phrases for the statuses the service emits.
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Compute endpoints these latency histograms are kept for.
_TRACKED_ENDPOINTS = (
    "traces",
    "optimize",
    "simulate",
    "jobs",
    "metrics",
    "healthz",
    "shutdown",
)


@dataclass
class ServerSettings:
    """Operational knobs of one :class:`PlacementServer` instance."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Persistent pool size for optimize jobs; 0 = compute in-process.
    pool_workers: int = 0
    #: Token-bucket rate (requests/second); ``None`` disables rate limiting.
    rate: float | None = None
    burst: float | None = None
    #: Bound on admitted-but-unfinished compute requests (the 503 gate).
    max_queue: int = 64
    #: Micro-batching window for simulate coalescing, seconds.
    batch_window: float = 0.005
    max_batch: int = 64
    #: Uploaded-trace registry bound (typed 503 beyond it).
    max_traces: int = 1024
    #: Completed-job history bound (oldest finished jobs evicted).
    max_jobs: int = 1024
    max_body_bytes: int = 64 * 1024 * 1024
    idle_timeout: float = 60.0
    #: Directory for spooled ``.rtb`` uploads (default: temp dir).
    spool_dir: str | None = None
    #: JSONL server log path (default: no file log).
    log_path: str | None = None


@dataclass
class _TraceRecord:
    trace_id: str
    trace: object  # AccessTrace | StreamingTrace
    kind: str  # "jsonl" | "rtb"
    name: str
    num_accesses: int
    num_items: int


@dataclass
class _Job:
    job_id: str
    endpoint: str
    trace_id: str
    method: str
    state: str = "queued"  # queued | running | done | failed | shed
    error: str | None = None
    cached: bool = False
    result_payload: dict | None = None
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    def finish(self, state: str, *, error: str | None = None) -> None:
        self.state = state
        self.error = error
        get_registry().inc("serve.jobs", state=state)
        self.done_event.set()

    def status_payload(self) -> dict:
        payload = {
            "job_id": self.job_id,
            "state": self.state,
            "endpoint": self.endpoint,
            "trace_id": self.trace_id,
            "method": self.method,
            "cached": self.cached,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.result_payload is not None:
            payload["result"] = self.result_payload
        return payload


@dataclass
class _Request:
    method: str
    path: str
    headers: dict
    body: bytes


def _optimize_local(trace, config, method: str, kwargs: dict):
    """Staged in-process optimize (no cache hooks — the server fronts it)."""
    from repro.core.api import (
        execute_plan,
        optimize_placement,
        plan_placement,
        resolve_placement,
    )

    if not isinstance(trace, AccessTrace):
        # Streaming traces go through the sampling path of the monolith.
        return optimize_placement(trace, config, method=method, **kwargs)
    problem = resolve_placement(trace, config)
    plan = plan_placement(problem, method, **kwargs)
    return execute_plan(problem, plan)


def _pool_optimize(payload):
    """Worker-side optimize task (module-level, picklable)."""
    trace, config, method, kwargs = payload
    return _optimize_local(trace, config, method, kwargs)


class PlacementServer:
    """The placement-as-a-service front door.  See the module docstring.

    Lifecycle: construct, then either :meth:`run` (blocking; installs
    itself on a fresh event loop — the CLI path) or drive
    :meth:`wait_until_listening` / :meth:`request_shutdown` from another
    thread (the test-harness path).
    """

    def __init__(self, cache=None, **settings) -> None:
        self.settings = ServerSettings(**settings)
        self.cache = cache
        self.port: int | None = None
        self._traces: dict[str, _TraceRecord] = {}
        self._jobs: dict[str, _Job] = {}
        self._connections: set = set()
        self._job_ids = itertools.count(1)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._listening = threading.Event()
        self._stopped = threading.Event()
        self._closing = False
        self._torn_down = False
        self._log_handle = None
        self._spool: Path | None = None
        self._spool_is_temp = False
        self.admission = AdmissionController(
            rate=self.settings.rate,
            burst=self.settings.burst,
            max_queue=self.settings.max_queue,
        )
        self._batcher: MicroBatcher | None = None
        # Two threads: one drains compute, one keeps cache lookups and
        # shutdown bookkeeping off the hot path.  Heavy parallelism lives
        # in the worker pool, not here.
        self._executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------
    def _log(self, event: str, **fields) -> None:
        if self._log_handle is None:
            return
        entry = {"ts": round(time.time(), 3), "event": event}
        entry.update(fields)
        try:
            self._log_handle.write(json.dumps(entry, sort_keys=True) + "\n")
            self._log_handle.flush()
        except OSError:  # pragma: no cover - log disk full
            pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and initialise the service tiers."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._batcher = MicroBatcher(
            self._run_simulate_batch,
            window_seconds=self.settings.batch_window,
            max_batch=self.settings.max_batch,
        )
        if self.settings.log_path:
            self._log_handle = open(
                self.settings.log_path, "a", encoding="utf-8"
            )
        if self.settings.spool_dir:
            self._spool = Path(self.settings.spool_dir)
            self._spool.mkdir(parents=True, exist_ok=True)
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.settings.host,
            port=self.settings.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        get_registry().gauge("serve.listening", 1)
        self._log(
            "listening",
            host=self.settings.host,
            port=self.port,
            pool_workers=self.settings.pool_workers,
        )
        self._listening.set()

    async def serve_until_shutdown(self) -> None:
        """Block until a shutdown is requested, then close gracefully."""
        assert self._shutdown_event is not None
        await self._shutdown_event.wait()
        await self.aclose()

    def run(self) -> None:
        """Blocking entry point: start, serve, tear down.

        A ``KeyboardInterrupt`` (which SIGTERM is routed into by
        :func:`repro.robust.install_sigterm_handler`) propagates to the
        caller *after* the synchronous teardown in ``finally`` — worker
        pools closed, shared memory unlinked, queued jobs shed — so the
        CLI's interrupt handler only has idempotent work left.
        """
        try:
            asyncio.run(self._main())
        finally:
            self._teardown_sync()
            self._stopped.set()

    async def _main(self) -> None:
        await self.start()
        await self.serve_until_shutdown()

    def wait_until_listening(self, timeout: float = 10.0) -> int:
        """Cross-thread: wait for the bound port (raises on timeout)."""
        if not self._listening.wait(timeout):
            raise TimeoutError("server did not start listening in time")
        assert self.port is not None
        return self.port

    def request_shutdown(self) -> None:
        """Thread-safe graceful-shutdown trigger."""
        self._closing = True
        self.admission.drain()
        loop = self._loop
        if loop is not None and self._shutdown_event is not None:
            try:
                loop.call_soon_threadsafe(self._shutdown_event.set)
            except RuntimeError:
                pass  # loop already closed: the server is already down

    def wait_until_stopped(self, timeout: float = 30.0) -> bool:
        """Cross-thread: wait for :meth:`run` to finish its teardown."""
        return self._stopped.wait(timeout)

    async def aclose(self) -> None:
        """Graceful close: drain admission, flush batches, shed the queue."""
        self._closing = True
        self.admission.drain()
        if self._server is not None:
            self._server.close()
        if self._batcher is not None:
            await self._batcher.close()
        # Give in-flight admitted work a bounded grace period, then force
        # the lingering connections shut so close cannot hang on an idle
        # keep-alive peer.
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 10.0
        while self.admission.depth > 0 and loop.time() < deadline:
            await asyncio.sleep(0.02)
        for writer in list(self._connections):
            try:
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        if self._server is not None:
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover
                pass
        for job in self._jobs.values():
            if job.state == "queued":
                job.finish("shed", error="server shut down before execution")
        get_registry().gauge("serve.listening", 0)
        self._log("closed")

    def _teardown_sync(self) -> None:
        """Idempotent hard teardown shared by every exit path.

        Mirrors the CLI interrupt handler (pool shutdown + shm unlink) so
        ``repro serve`` keeps the no-orphans/no-leaks guarantee even when
        SIGTERM lands mid-batch; the CLI handler re-runs the same calls
        harmlessly afterwards.
        """
        if self._torn_down:
            return
        self._torn_down = True
        self._closing = True
        self.admission.drain()
        self._executor.shutdown(wait=False, cancel_futures=True)
        from repro.analysis.pool import shutdown_pools
        from repro.memory import shm

        shutdown_pools()
        shm.unlink_all()
        for job in self._jobs.values():
            if job.state in ("queued", "running"):
                job.state = "shed"
                job.error = "server shut down before completion"
        self._log("teardown")
        if self._log_handle is not None:
            try:
                self._log_handle.close()
            except OSError:  # pragma: no cover
                pass
            self._log_handle = None
        if self._spool_is_temp and self._spool is not None:
            import shutil

            shutil.rmtree(self._spool, ignore_errors=True)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _read_request(self, reader) -> _Request | None:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise BadRequest("malformed request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                return None
            if len(headers) > 64 or len(raw) > 16 * 1024:
                raise BadRequest("oversized request headers")
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise BadRequest("invalid content-length") from None
        if length < 0:
            raise BadRequest("invalid content-length")
        if length > self.settings.max_body_bytes:
            raise ServeError(
                f"request body of {length} bytes exceeds the "
                f"{self.settings.max_body_bytes}-byte limit",
                status=413,
                code="too_large",
            )
        body = await reader.readexactly(length) if length else b""
        return _Request(method.upper(), target, headers, body)

    @staticmethod
    def _render_response(status: int, payload: dict, keep_alive: bool) -> bytes:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "Server: repro-serve\r\n"
            "\r\n"
        )
        return head.encode("latin-1") + body

    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        timeout=self.settings.idle_timeout,
                    )
                except asyncio.TimeoutError:
                    break
                except ServeError as exc:
                    writer.write(
                        self._render_response(
                            exc.status, error_payload(exc), False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = (
                    request.headers.get("connection", "keep-alive").lower()
                    != "close"
                    and not self._closing
                )
                status, payload = await self._dispatch(request)
                if self._closing:
                    # A shutdown request (possibly this one) landed while
                    # we were handling: close after the response.
                    keep_alive = False
                writer.write(
                    self._render_response(status, payload, keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(self, request: _Request) -> tuple[int, dict]:
        registry = get_registry()
        endpoint = self._endpoint_of(request.path)
        registry.inc("serve.requests", endpoint=endpoint, method=request.method)
        start = time.perf_counter()
        try:
            status, payload = await self._route(request)
        except ServeError as exc:
            status, payload = exc.status, error_payload(exc)
        except ReproError as exc:
            wrapped = BadRequest(str(exc))
            status, payload = wrapped.status, error_payload(wrapped)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._log("internal-error", error=f"{type(exc).__name__}: {exc}")
            wrapped = ServeError(f"{type(exc).__name__}: {exc}")
            status, payload = wrapped.status, error_payload(wrapped)
        elapsed = time.perf_counter() - start
        if endpoint in _TRACKED_ENDPOINTS:
            registry.observe(
                "serve.latency.seconds", elapsed, endpoint=endpoint
            )
        registry.inc("serve.responses", status=status)
        self._log(
            "request",
            method=request.method,
            path=request.path,
            status=status,
            seconds=round(elapsed, 6),
        )
        return status, payload

    @staticmethod
    def _endpoint_of(path: str) -> str:
        parts = [part for part in path.split("?")[0].split("/") if part]
        if not parts:
            return "root"
        if parts[0] == "v1" and len(parts) > 1:
            return parts[1]
        return parts[0]

    async def _route(self, request: _Request) -> tuple[int, dict]:
        parts = [p for p in request.path.split("?")[0].split("/") if p]
        method = request.method
        if parts == ["healthz"] and method == "GET":
            return 200, self._health_payload()
        if parts == ["v1", "metrics"] and method == "GET":
            return 200, get_registry().snapshot()
        if parts == ["v1", "traces"] and method == "POST":
            return await self._handle_upload(request)
        if len(parts) == 3 and parts[:2] == ["v1", "traces"] and method == "GET":
            return 200, self._trace_info(parts[2])
        if parts == ["v1", "optimize"] and method == "POST":
            return await self._handle_optimize(request)
        if parts == ["v1", "simulate"] and method == "POST":
            return await self._handle_simulate(request)
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"] and method == "GET":
            return 200, self._job_status(parts[2])
        if parts == ["v1", "shutdown"] and method == "POST":
            self.request_shutdown()
            return 200, {"status": "shutting-down"}
        raise NotFound(f"no route for {method} {request.path}")

    # ------------------------------------------------------------------
    # Simple endpoints
    # ------------------------------------------------------------------
    def _health_payload(self) -> dict:
        return {
            "status": "draining" if self._closing else "ok",
            "traces": len(self._traces),
            "jobs": len(self._jobs),
            "queue_depth": self.admission.depth,
            "pool_workers": self.settings.pool_workers,
        }

    def _trace_record(self, trace_id: str | None) -> _TraceRecord:
        if not trace_id:
            raise BadRequest("missing trace_id")
        record = self._traces.get(trace_id)
        if record is None:
            raise NotFound(f"unknown trace {trace_id!r}")
        return record

    def _trace_info(self, trace_id: str) -> dict:
        record = self._trace_record(trace_id)
        return {
            "trace_id": record.trace_id,
            "name": record.name,
            "kind": record.kind,
            "num_accesses": record.num_accesses,
            "num_items": record.num_items,
        }

    def _job_status(self, job_id: str) -> dict:
        job = self._jobs.get(job_id)
        if job is None:
            raise NotFound(f"unknown job {job_id!r}")
        return job.status_payload()

    @staticmethod
    def _json_body(request: _Request) -> dict:
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # Trace upload
    # ------------------------------------------------------------------
    async def _handle_upload(self, request: _Request) -> tuple[int, dict]:
        content_type = request.headers.get("content-type", "application/json")
        if content_type.split(";")[0].strip() in (
            "application/octet-stream",
            "application/x-rtb",
        ):
            record, reused = await asyncio.get_running_loop().run_in_executor(
                self._executor, self._ingest_rtb, request
            )
        else:
            record, reused = self._ingest_jsonl(request)
        return 200, {
            "trace_id": record.trace_id,
            "name": record.name,
            "kind": record.kind,
            "num_accesses": record.num_accesses,
            "num_items": record.num_items,
            "reused": reused,
        }

    def _register(self, record: _TraceRecord) -> tuple[_TraceRecord, bool]:
        existing = self._traces.get(record.trace_id)
        if existing is not None:
            # Same content already uploaded: keep the existing object so
            # its resolved arrays (and cache keys) stay shared.
            get_registry().inc("serve.traces.reused")
            return existing, True
        if len(self._traces) >= self.settings.max_traces:
            raise Overloaded(
                f"trace registry full ({self.settings.max_traces} traces)"
            )
        self._traces[record.trace_id] = record
        get_registry().inc("serve.traces.uploaded", kind=record.kind)
        return record, False

    def _ingest_jsonl(self, request: _Request) -> tuple[_TraceRecord, bool]:
        payload = self._json_body(request)
        accesses_raw = payload.get("accesses")
        if not isinstance(accesses_raw, list) or not accesses_raw:
            raise BadRequest("upload needs a non-empty 'accesses' list")
        name = str(payload.get("name", "uploaded"))
        try:
            accesses = [
                Access(str(entry[0]), AccessKind.parse(entry[1]))
                for entry in accesses_raw
            ]
        except (IndexError, TypeError, ReproError, ValueError) as exc:
            raise BadRequest(f"invalid access entry: {exc}") from exc
        trace = AccessTrace(accesses, name=name)
        record = _TraceRecord(
            trace_id=trace.fingerprint(),
            trace=trace,
            kind="jsonl",
            name=name,
            num_accesses=len(trace),
            num_items=trace.num_items,
        )
        registered, reused = self._register(record)
        if not reused:
            # Resolve once at upload so every later request shares the
            # arrays (the enabling refactor's whole point).
            from repro.core.api import resolve_placement

            resolve_placement(trace)
        return registered, reused

    def _ingest_rtb(self, request: _Request) -> tuple[_TraceRecord, bool]:
        from repro.trace.binio import open_binary

        if not request.body:
            raise BadRequest("empty .rtb upload")
        if self._spool is None:
            import tempfile

            self._spool = Path(tempfile.mkdtemp(prefix="repro-serve-spool-"))
            self._spool_is_temp = True
        import hashlib

        digest = hashlib.sha256(request.body).hexdigest()
        path = self._spool / f"{digest}.rtb"
        if not path.exists():
            tmp = path.with_suffix(".rtb.part")
            tmp.write_bytes(request.body)
            os.replace(tmp, path)
        try:
            trace = open_binary(path)
        except ReproError as exc:
            try:
                os.remove(path)
            except OSError:
                pass
            raise BadRequest(f"invalid .rtb payload: {exc}") from exc
        record = _TraceRecord(
            trace_id=trace.fingerprint(),
            trace=trace,
            kind="rtb",
            name=trace.name,
            num_accesses=len(trace),
            num_items=trace.num_items,
        )
        return self._register(record)

    # ------------------------------------------------------------------
    # Optimize
    # ------------------------------------------------------------------
    async def _handle_optimize(self, request: _Request) -> tuple[int, dict]:
        body = self._json_body(request)
        record = self._trace_record(body.get("trace_id"))
        method = str(body.get("method", "heuristic"))
        wait = bool(body.get("wait", True))
        kwargs = body.get("kwargs") or {}
        if not isinstance(kwargs, dict):
            raise BadRequest("'kwargs' must be a JSON object")
        config = config_from_payload(
            body.get("config"), num_items=record.num_items
        )
        registry = get_registry()
        ticket = self.admission.admit("optimize")
        job = self._new_job("optimize", record.trace_id, method)
        try:
            cached = None
            if self.cache is not None:
                cached = self.cache.lookup_placement(
                    record.trace, config, method, kwargs
                )
            if cached is not None:
                registry.inc("serve.cache.hits", endpoint="optimize")
                job.cached = True
                job.result_payload = result_to_payload(cached)
                job.finish("done")
                ticket.release()
                return 200, job.status_payload()
            registry.inc("serve.cache.misses", endpoint="optimize")
        except BaseException:
            ticket.release()
            job.finish("failed", error="admission/cache stage failed")
            raise
        loop = asyncio.get_running_loop()

        async def _run_job() -> None:
            job.state = "running"
            try:
                result = await loop.run_in_executor(
                    self._executor,
                    self._compute_optimize_sync,
                    record,
                    config,
                    method,
                    kwargs,
                )
            except Exception as exc:  # noqa: BLE001 - reported via job state
                job.finish("failed", error=f"{type(exc).__name__}: {exc}")
            else:
                job.result_payload = result_to_payload(result)
                job.finish("done")
            finally:
                ticket.release()

        task = loop.create_task(_run_job())
        if not wait:
            return 202, job.status_payload()
        await task
        await job.done_event.wait()
        status = 200 if job.state == "done" else 500
        if job.state == "failed" and job.error and (
            "CapacityError" in job.error or "OptimizationError" in job.error
        ):
            status = 400
        return status, job.status_payload()

    def _new_job(self, endpoint: str, trace_id: str, method: str) -> _Job:
        job = _Job(
            job_id=f"job-{next(self._job_ids):06d}",
            endpoint=endpoint,
            trace_id=trace_id,
            method=method,
        )
        self._jobs[job.job_id] = job
        self._evict_jobs()
        return job

    def _evict_jobs(self) -> None:
        overflow = len(self._jobs) - self.settings.max_jobs
        if overflow <= 0:
            return
        for job_id in list(self._jobs):
            if overflow <= 0:
                break
            if self._jobs[job_id].state in ("done", "failed", "shed"):
                del self._jobs[job_id]
                overflow -= 1

    def _compute_optimize_sync(self, record, config, method, kwargs):
        """Cold-path optimize: pool dispatch with in-process fallback."""
        trace = record.trace
        if self.settings.pool_workers > 0:
            from repro.analysis.pool import (
                PoolCrashError,
                PoolDispatchError,
                get_pool,
            )

            try:
                pool = get_pool(self.settings.pool_workers)
                result = pool.run(
                    _pool_optimize,
                    [(trace, config, method, dict(kwargs))],
                    propagate=True,
                )[0]
            except (PoolDispatchError, PoolCrashError) as exc:
                record_degradation(
                    "map",
                    "pooled",
                    "serial",
                    f"{type(exc).__name__}: {exc}",
                    warn=False,
                )
                result = _optimize_local(trace, config, method, kwargs)
        else:
            result = _optimize_local(trace, config, method, kwargs)
        if self.cache is not None:
            self.cache.store_placement(trace, config, method, kwargs, result)
        return result

    # ------------------------------------------------------------------
    # Simulate
    # ------------------------------------------------------------------
    async def _handle_simulate(self, request: _Request) -> tuple[int, dict]:
        body = self._json_body(request)
        record = self._trace_record(body.get("trace_id"))
        placement_payload = body.get("placement")
        if not isinstance(placement_payload, dict) or not placement_payload:
            raise BadRequest("simulate needs a non-empty 'placement' object")
        config = config_from_payload(
            body.get("config"), num_items=record.num_items
        )
        placement = placement_from_payload(placement_payload)
        # Validate on the event loop so a bad rider gets its typed 400
        # before joining (and poisoning) a batch.
        placement.validate(config, record.trace.items)
        registry = get_registry()
        ticket = self.admission.admit("simulate")
        try:
            key = simulate_key(
                record.trace.fingerprint(), config, placement_payload
            )
            if self.cache is not None:
                hit = self.cache.get(key)
                if hit is not None and isinstance(hit.get("sim"), dict):
                    registry.inc("serve.cache.hits", endpoint="simulate")
                    payload = dict(hit["sim"])
                    details = dict(payload.get("details") or {})
                    details["cache"] = "hit"
                    payload["details"] = details
                    payload["batched"] = 0
                    return 200, payload
            registry.inc("serve.cache.misses", endpoint="simulate")
            batch_key = f"{record.trace_id}|{config_key(config)}"
            assert self._batcher is not None
            result, batch_size = await self._batcher.submit(
                batch_key, (record, config, placement, key)
            )
            payload = sim_result_to_payload(result)
            payload["batched"] = batch_size
            return 200, payload
        finally:
            ticket.release()

    async def _run_simulate_batch(self, key: str, payloads) -> list:
        loop = asyncio.get_running_loop()
        results = await loop.run_in_executor(
            self._executor, self._simulate_batch_sync, list(payloads)
        )
        return results

    def _simulate_batch_sync(self, payloads) -> list:
        """One coalesced pass: shared resolution, one scan per placement."""
        record, config = payloads[0][0], payloads[0][1]
        trace = record.trace
        batch_size = len(payloads)
        outputs = []
        if isinstance(trace, AccessTrace):
            from repro.memory.batch_sim import resolve_trace, simulate_vectorized

            resolved = resolve_trace(trace)
            for _, _, placement, cache_key in payloads:
                result = simulate_vectorized(
                    trace,
                    config,
                    placement,
                    resolved=resolved,
                    validate=False,
                )
                self._store_sim(cache_key, result)
                outputs.append((result, batch_size))
        else:
            from repro.memory.stream_sim import simulate_streaming

            for _, _, placement, cache_key in payloads:
                result = simulate_streaming(
                    trace, config, placement, validate=False
                )
                self._store_sim(cache_key, result)
                outputs.append((result, batch_size))
        return outputs

    def _store_sim(self, cache_key: str, result) -> None:
        if self.cache is None:
            return
        self.cache.put(
            cache_key,
            {"schema": 1, "sim": sim_result_to_payload(result)},
        )
        get_registry().inc("serve.cache.stores", endpoint="simulate")


def announce_payload(server: PlacementServer) -> dict:
    """The one-line JSON announcement the CLI prints once listening."""
    return {
        "event": "listening",
        "host": server.settings.host,
        "port": server.port,
        "pool_workers": server.settings.pool_workers,
        "endpoints": [
            "/healthz",
            "/v1/metrics",
            "/v1/traces",
            "/v1/optimize",
            "/v1/simulate",
            "/v1/jobs/<id>",
            "/v1/shutdown",
        ],
    }
