"""Blocking stdlib client for the placement service.

Built on :mod:`http.client` only, so scripts and CI jobs can talk to a
``repro serve`` instance without any third-party dependency.  Server-side
errors are re-raised as the same typed exceptions the server threw
(:class:`~repro.serve.protocol.RateLimited`,
:class:`~repro.serve.protocol.Overloaded`, ...), so callers can implement
backoff with ``except RateLimited`` instead of matching status integers.

One :class:`ServeClient` opens a fresh connection per call — the service
is keep-alive capable, but a per-call connection keeps the client safe to
share across threads (the load-check script hammers one client object from
sixteen threads).
"""

from __future__ import annotations

import http.client
import json
import socket
import time

from repro.serve.protocol import ServeError, raise_for_payload

__all__ = ["ServeClient", "wait_for_server"]


class ServeClient:
    """Typed HTTP client for one ``repro serve`` endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        *,
        body: bytes | None = None,
        content_type: str = "application/json",
    ) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Connection": "close"}
            if body is not None:
                headers["Content-Type"] = content_type
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError as exc:
                raise ServeError(
                    f"non-JSON response (HTTP {response.status}): "
                    f"{raw[:200]!r}"
                ) from exc
            if response.status >= 400:
                raise_for_payload(response.status, payload)
            return payload
        finally:
            conn.close()

    def _post_json(self, path: str, document: dict) -> dict:
        return self._request(
            "POST", path, body=json.dumps(document).encode("utf-8")
        )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def upload_trace(self, name: str, accesses) -> dict:
        """Upload an in-memory trace: ``accesses`` is ``[(item, "R"|"W")]``."""
        entries = [[str(item), str(kind)] for item, kind in accesses]
        return self._post_json(
            "/v1/traces", {"name": name, "accesses": entries}
        )

    def upload_rtb(self, data: bytes) -> dict:
        """Upload a binary ``.rtb`` trace payload."""
        return self._request(
            "POST",
            "/v1/traces",
            body=bytes(data),
            content_type="application/octet-stream",
        )

    def upload_rtb_file(self, path) -> dict:
        with open(path, "rb") as handle:
            return self.upload_rtb(handle.read())

    def trace_info(self, trace_id: str) -> dict:
        return self._request("GET", f"/v1/traces/{trace_id}")

    def optimize(
        self,
        trace_id: str,
        *,
        method: str = "heuristic",
        config: dict | None = None,
        kwargs: dict | None = None,
        wait: bool = True,
    ) -> dict:
        document: dict = {"trace_id": trace_id, "method": method, "wait": wait}
        if config is not None:
            document["config"] = config
        if kwargs:
            document["kwargs"] = kwargs
        return self._post_json("/v1/optimize", document)

    def simulate(
        self,
        trace_id: str,
        placement: dict,
        *,
        config: dict | None = None,
    ) -> dict:
        document: dict = {"trace_id": trace_id, "placement": placement}
        if config is not None:
            document["config"] = config
        return self._post_json("/v1/simulate", document)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def wait_for_job(
        self,
        job_id: str,
        *,
        timeout: float = 60.0,
        poll_seconds: float = 0.05,
    ) -> dict:
        """Poll a job until it leaves the queued/running states."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status.get("state") not in ("queued", "running"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status.get('state')} "
                    f"after {timeout:g}s"
                )
            time.sleep(poll_seconds)

    def shutdown(self) -> dict:
        return self._post_json("/v1/shutdown", {})


def wait_for_server(
    host: str,
    port: int,
    *,
    timeout: float = 15.0,
    poll_seconds: float = 0.05,
) -> ServeClient:
    """Block until ``/healthz`` answers; returns a ready client."""
    client = ServeClient(host, port)
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            client.health()
            return client
        except (OSError, socket.timeout, ServeError) as exc:
            last_error = exc
            time.sleep(poll_seconds)
    raise TimeoutError(
        f"no server on {host}:{port} after {timeout:g}s "
        f"(last error: {last_error})"
    )
