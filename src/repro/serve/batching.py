"""Micro-batching scheduler: coalesce compatible requests into one pass.

Simulate requests that share a (trace, geometry) pair differ only in their
placement, and the vectorized engine amortises trace resolution across any
number of placements (:class:`~repro.memory.batch_sim.BatchSimulator`).
The :class:`MicroBatcher` exploits that: the first request for a
compatibility key opens a small time window (``window_seconds``); every
compatible request arriving inside it joins the batch; the whole group
then executes as **one** backend pass and each waiter gets its own result.

Under light load the window adds at most a few milliseconds of latency;
under heavy load batches fill to ``max_batch`` and flush immediately, so
throughput scales with batch size instead of request count.

Degradation (the ``serve`` chain in :mod:`repro.robust`): when a batched
pass fails with a *recoverable* infrastructure error, the batch falls back
to per-request execution (``batched -> single``, recorded via
:func:`~repro.robust.record_degradation`) so one poisoned pass cannot fail
every rider; requests that still fail get their own typed error.  Batch
results are bit-identical to single-request execution by construction —
the backend runs the same vectorized scan either way — and the CI service
gates assert exactly that.

Metrics: ``serve.batches``, ``serve.batch.size`` (histogram), and
``serve.batch.degraded`` via the robust layer.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Sequence

from repro.obs import get_registry
from repro.robust import is_recoverable, record_degradation

__all__ = ["MicroBatcher"]

#: run_batch(key, payloads) -> list of per-payload results (same order).
BatchRunner = Callable[[str, Sequence[object]], Awaitable[list]]


class _Group:
    __slots__ = ("payloads", "futures", "timer")

    def __init__(self) -> None:
        self.payloads: list[object] = []
        self.futures: list[asyncio.Future] = []
        self.timer: asyncio.Task | None = None


class MicroBatcher:
    """Group submissions by compatibility key; flush on window or size."""

    def __init__(
        self,
        run_batch: BatchRunner,
        *,
        window_seconds: float = 0.005,
        max_batch: int = 64,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._run_batch = run_batch
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self._groups: dict[str, _Group] = {}
        self._closed = False

    async def submit(self, key: str, payload: object):
        """Join (or open) the batch for ``key``; await this payload's result."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        loop = asyncio.get_running_loop()
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _Group()
            group.timer = loop.create_task(self._window_flush(key))
        future: asyncio.Future = loop.create_future()
        group.payloads.append(payload)
        group.futures.append(future)
        if len(group.payloads) >= self.max_batch:
            self._detach_and_flush(key)
        return await future

    async def _window_flush(self, key: str) -> None:
        try:
            await asyncio.sleep(self.window_seconds)
        except asyncio.CancelledError:
            return
        self._detach_and_flush(key, cancel_timer=False)

    def _detach_and_flush(self, key: str, *, cancel_timer: bool = True) -> None:
        group = self._groups.pop(key, None)
        if group is None:
            return
        if cancel_timer and group.timer is not None:
            group.timer.cancel()
        asyncio.get_running_loop().create_task(self._execute(key, group))

    async def _execute(self, key: str, group: _Group) -> None:
        registry = get_registry()
        registry.inc("serve.batches")
        registry.observe("serve.batch.size", len(group.payloads))
        try:
            results = await self._run_batch(key, group.payloads)
            if len(results) != len(group.futures):  # pragma: no cover
                raise RuntimeError(
                    f"batch runner returned {len(results)} results "
                    f"for {len(group.futures)} payloads"
                )
        except BaseException as exc:
            if len(group.payloads) > 1 and is_recoverable(exc):
                # One rider's infrastructure failure must not take down
                # the whole batch: degrade to per-request execution.
                record_degradation(
                    "serve",
                    "batched",
                    "single",
                    f"{type(exc).__name__}: {exc}",
                    warn=False,
                )
                await self._execute_singly(key, group)
                return
            for future in group.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        for future, result in zip(group.futures, results):
            if not future.done():
                future.set_result(result)

    async def _execute_singly(self, key: str, group: _Group) -> None:
        for payload, future in zip(group.payloads, group.futures):
            try:
                (result,) = await self._run_batch(key, [payload])
            except BaseException as exc:
                if not future.done():
                    future.set_exception(exc)
            else:
                if not future.done():
                    future.set_result(result)

    async def close(self) -> None:
        """Flush every open group and stop accepting submissions."""
        self._closed = True
        for key in list(self._groups):
            self._detach_and_flush(key)
        # Let the flush tasks run; submitters still hold the futures.
        await asyncio.sleep(0)
