"""Speculative pre-shifting: hide shift latency behind idle time.

A DWM controller that knows (or predicts) the next offset a DBC will serve
can start shifting *before* the demand access arrives; a correct prediction
turns demand shifts into background work that overlaps computation.  The
standard proposal in the racetrack literature pairs a small per-DBC
next-offset predictor with speculative shifting during idle cycles.

Model (deliberately conservative):

* a **first-order Markov predictor** per DBC maps the last offset served to
  the most frequently observed successor (learned online — no oracle);
* after each demand access the controller speculatively shifts to the
  predicted next offset's alignment;
* a correct prediction makes the next demand access's shifts **free in
  latency** (they already happened); a wrong one leaves the head where the
  speculation put it, and the demand access pays the (possibly larger)
  distance from there;
* *every* speculative shift still costs **energy** — the model accounts
  latency-critical (demand) shifts and speculative shifts separately so the
  latency/energy trade is explicit (experiment E17).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.dwm.config import PortPolicy
from repro.errors import OptimizationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dwm <- core)
    from repro.core.placement import Placement
    from repro.core.problem import PlacementProblem


class NextOffsetPredictor:
    """Per-DBC first-order Markov predictor over offsets (online counts)."""

    def __init__(self) -> None:
        self._counts: dict[tuple[int, int], dict[int, int]] = defaultdict(dict)
        self._last: dict[int, int] = {}

    def predict(
        self,
        dbc: int,
        confidence: float = 0.6,
        min_observations: int = 2,
    ) -> int | None:
        """Most likely next offset for ``dbc``, gated by confidence.

        Returns None before any history, or when the best successor has
        fewer than ``min_observations`` sightings or less than
        ``confidence`` of the transition row's mass — speculating on a weak
        signal moves the head the wrong way more often than it helps.
        """
        last = self._last.get(dbc)
        if last is None:
            return None
        successors = self._counts.get((dbc, last))
        if not successors:
            return None
        offset, count = max(
            successors.items(), key=lambda kv: (kv[1], -kv[0])
        )
        total = sum(successors.values())
        if count < min_observations or count < confidence * total:
            return None
        return offset

    def observe(self, dbc: int, offset: int) -> None:
        """Record a demand access (updates the transition table)."""
        last = self._last.get(dbc)
        if last is not None:
            row = self._counts[(dbc, last)]
            row[offset] = row.get(offset, 0) + 1
        self._last[dbc] = offset


@dataclass(frozen=True)
class PreshiftResult:
    """Latency/energy accounting of a pre-shifting run."""

    demand_shifts: int
    speculative_shifts: int
    baseline_demand_shifts: int
    predictions: int
    correct_predictions: int

    @property
    def total_energy_shifts(self) -> int:
        """All shift work performed (demand + speculative)."""
        return self.demand_shifts + self.speculative_shifts

    @property
    def latency_reduction_percent(self) -> float:
        if not self.baseline_demand_shifts:
            return 0.0
        return 100.0 * (
            self.baseline_demand_shifts - self.demand_shifts
        ) / self.baseline_demand_shifts

    @property
    def energy_overhead_percent(self) -> float:
        if not self.baseline_demand_shifts:
            return 0.0
        return 100.0 * (
            self.total_energy_shifts - self.baseline_demand_shifts
        ) / self.baseline_demand_shifts

    @property
    def prediction_accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return self.correct_predictions / self.predictions


def simulate_preshift(
    problem: "PlacementProblem",
    placement: "Placement",
) -> PreshiftResult:
    """Run the trace with the speculative pre-shifting controller.

    Requires the lazy policy (eager controllers re-home the head anyway).
    """
    config = problem.config
    if config.port_policy is not PortPolicy.LAZY:
        raise OptimizationError("pre-shifting requires the lazy shift policy")
    placement.validate(config, problem.items)
    ports = config.port_offsets

    def target_for(offset: int, head: int) -> tuple[int, int]:
        best_cost = None
        best_target = 0
        for port in ports:
            target = offset - port
            cost = abs(target - head)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_target = target
        assert best_cost is not None
        return best_cost, best_target

    predictor = NextOffsetPredictor()
    heads: dict[int, int] = {}
    baseline_heads: dict[int, int] = {}
    pending_prediction: dict[int, int] = {}  # dbc -> predicted offset
    demand_shifts = 0
    speculative_shifts = 0
    baseline_demand = 0
    predictions = 0
    correct = 0
    for access in trace_iter(problem):
        slot = placement[access.item]
        dbc, offset = slot.dbc, slot.offset
        # Baseline (no speculation) demand cost, for the comparison column.
        base_head = baseline_heads.get(dbc, 0)
        base_cost, base_target = target_for(offset, base_head)
        baseline_demand += base_cost
        baseline_heads[dbc] = base_target
        # Speculative controller.
        head = heads.get(dbc, 0)
        cost, target = target_for(offset, head)
        demand_shifts += cost
        heads[dbc] = target
        predicted = pending_prediction.pop(dbc, None)
        if predicted is not None:
            predictions += 1
            if predicted == offset:
                correct += 1
        predictor.observe(dbc, offset)
        next_offset = predictor.predict(dbc)
        if next_offset is not None and next_offset != offset:
            speculative_cost, speculative_target = target_for(
                next_offset, heads[dbc]
            )
            speculative_shifts += speculative_cost
            heads[dbc] = speculative_target
            pending_prediction[dbc] = next_offset
    return PreshiftResult(
        demand_shifts=demand_shifts,
        speculative_shifts=speculative_shifts,
        baseline_demand_shifts=baseline_demand,
        predictions=predictions,
        correct_predictions=correct,
    )


def trace_iter(problem: PlacementProblem):
    """The problem's trace, as an iterator (seam for tests)."""
    return iter(problem.trace)
