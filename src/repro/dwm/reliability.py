"""Shift-reliability model for DWM arrays.

Racetrack shifting is imperfect: with per-shift error probability ``p`` a
domain train can stop misaligned (position errors), corrupting every
subsequent access of that DBC until detected.  The racetrack literature
treats the *number of shift operations* as the error-exposure budget, which
makes shift-minimizing placement double as a reliability optimization — a
secondary benefit this module quantifies.

The model is intentionally analytic (no Monte-Carlo): given exact per-DBC
shift counts from the simulator, it reports expected position errors, the
probability of an error-free run, and the mean shifts between failures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

#: Per-shift misalignment probability reported for scaled racetrack devices.
DEFAULT_SHIFT_ERROR_RATE = 1e-5


@dataclass(frozen=True)
class ReliabilityReport:
    """Shift-error exposure of one run."""

    total_shifts: int
    shift_error_rate: float
    per_dbc_shifts: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.shift_error_rate < 1.0:
            raise ConfigError(
                f"shift_error_rate must be in [0, 1), got {self.shift_error_rate}"
            )
        if self.total_shifts < 0:
            raise ConfigError("total_shifts must be >= 0")

    @property
    def expected_position_errors(self) -> float:
        """Expected misalignment events over the run."""
        return self.total_shifts * self.shift_error_rate

    @property
    def error_free_probability(self) -> float:
        """P(no misalignment anywhere) = (1 − p)^shifts."""
        if self.total_shifts == 0:
            return 1.0
        return math.exp(self.total_shifts * math.log1p(-self.shift_error_rate))

    @property
    def mean_shifts_between_failures(self) -> float:
        """1/p — device property, placement-independent."""
        if self.shift_error_rate == 0:
            return float("inf")
        return 1.0 / self.shift_error_rate

    def per_dbc_error_free_probability(self) -> tuple[float, ...]:
        """P(no misalignment) per DBC."""
        return tuple(
            math.exp(shifts * math.log1p(-self.shift_error_rate))
            if shifts
            else 1.0
            for shifts in self.per_dbc_shifts
        )

    def exposure_reduction_vs(self, baseline: "ReliabilityReport") -> float:
        """Fractional reduction in expected errors relative to a baseline."""
        if baseline.expected_position_errors == 0:
            return 0.0
        return 1.0 - (
            self.expected_position_errors / baseline.expected_position_errors
        )


def reliability_report(
    total_shifts: int,
    per_dbc_shifts: tuple[int, ...] = (),
    shift_error_rate: float = DEFAULT_SHIFT_ERROR_RATE,
) -> ReliabilityReport:
    """Build a :class:`ReliabilityReport` from simulator shift counts."""
    return ReliabilityReport(
        total_shifts=total_shifts,
        shift_error_rate=shift_error_rate,
        per_dbc_shifts=tuple(per_dbc_shifts),
    )
