"""Energy and latency models for DWM and SRAM scratchpads.

The published evaluation would have taken per-operation constants from a
device characterisation tool (NVSim / DESTINY).  We substitute constants from
the public racetrack-memory literature (e.g. the TapeCache / DWM-SPM papers):
what matters for reproducing the paper's *normalized* results is the ratio
between shift, read, and write costs, which these defaults preserve —
shifting is cheap per step but dominates because many steps occur per access,
while an SRAM of equal capacity has higher static power and area.

All energies are in picojoules (pJ), times in nanoseconds (ns), leakage in
milliwatts (mW).  The models are deliberately linear in the event counters
produced by the simulator, matching how such papers derive their energy and
performance figures from shift/read/write counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class DWMEnergyParams:
    """Per-operation constants for a DWM scratchpad bank.

    Defaults follow published racetrack characterisations (word-granularity,
    32-bit words): a single-domain shift of a 32-tape cluster costs well
    under half a read, and writes cost more than reads due to domain
    nucleation.  SRAM defaults (below) reflect an iso-capacity SPM macro,
    whose larger cell array costs more per access and leaks an order of
    magnitude more — the paper's motivating comparison.
    """

    shift_energy_pj: float = 0.45
    read_energy_pj: float = 1.3
    write_energy_pj: float = 1.9
    shift_latency_ns: float = 0.5
    read_latency_ns: float = 1.0
    write_latency_ns: float = 1.5
    leakage_mw: float = 0.2

    def __post_init__(self) -> None:
        for name in (
            "shift_energy_pj", "read_energy_pj", "write_energy_pj",
            "shift_latency_ns", "read_latency_ns", "write_latency_ns",
            "leakage_mw",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")


@dataclass(frozen=True)
class SRAMEnergyParams:
    """Per-operation constants for an iso-capacity SRAM scratchpad.

    SRAM has no shifts; its reads/writes are fast but the cell array leaks
    far more than a DWM macro of the same capacity (the headline motivation
    for DWM scratchpads in embedded systems).
    """

    read_energy_pj: float = 3.5
    write_energy_pj: float = 3.5
    read_latency_ns: float = 0.8
    write_latency_ns: float = 0.8
    leakage_mw: float = 2.5

    def __post_init__(self) -> None:
        for name in (
            "read_energy_pj", "write_energy_pj",
            "read_latency_ns", "write_latency_ns", "leakage_mw",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy (pJ) and latency (ns) of a simulated run, by component."""

    shift_energy_pj: float
    read_energy_pj: float
    write_energy_pj: float
    leakage_energy_pj: float
    latency_ns: float
    shift_latency_ns: float

    @property
    def dynamic_energy_pj(self) -> float:
        """Energy excluding leakage."""
        return self.shift_energy_pj + self.read_energy_pj + self.write_energy_pj

    @property
    def total_energy_pj(self) -> float:
        """Dynamic plus leakage energy."""
        return self.dynamic_energy_pj + self.leakage_energy_pj

    @property
    def shift_energy_share(self) -> float:
        """Fraction of dynamic energy spent on shifting (0..1)."""
        dynamic = self.dynamic_energy_pj
        if dynamic == 0:
            return 0.0
        return self.shift_energy_pj / dynamic

    @property
    def shift_latency_share(self) -> float:
        """Fraction of access latency spent on shifting (0..1)."""
        if self.latency_ns == 0:
            return 0.0
        return self.shift_latency_ns / self.latency_ns


class DWMEnergyModel:
    """Turns (shifts, reads, writes) counters into energy and latency."""

    def __init__(self, params: DWMEnergyParams | None = None) -> None:
        self.params = params or DWMEnergyParams()

    def evaluate(self, shifts: int, reads: int, writes: int) -> EnergyBreakdown:
        """Energy/latency of a run with the given event counts.

        Latency assumes a single-banked, serialised access stream: every
        shift and access occupies the bank (the conservative model the
        placement papers use when they report performance improvement).
        """
        p = self.params
        shift_lat = shifts * p.shift_latency_ns
        latency = (
            shift_lat
            + reads * p.read_latency_ns
            + writes * p.write_latency_ns
        )
        leakage_pj = p.leakage_mw * latency  # 1 mW * 1 ns = 1e-12 J = 1 pJ
        return EnergyBreakdown(
            shift_energy_pj=shifts * p.shift_energy_pj,
            read_energy_pj=reads * p.read_energy_pj,
            write_energy_pj=writes * p.write_energy_pj,
            leakage_energy_pj=leakage_pj,
            latency_ns=latency,
            shift_latency_ns=shift_lat,
        )


class SRAMEnergyModel:
    """Iso-capacity SRAM comparator (no shifts)."""

    def __init__(self, params: SRAMEnergyParams | None = None) -> None:
        self.params = params or SRAMEnergyParams()

    def evaluate(self, reads: int, writes: int) -> EnergyBreakdown:
        """Energy/latency of a run with the given access counts."""
        p = self.params
        latency = reads * p.read_latency_ns + writes * p.write_latency_ns
        leakage_pj = p.leakage_mw * latency  # 1 mW * 1 ns = 1e-12 J = 1 pJ
        return EnergyBreakdown(
            shift_energy_pj=0.0,
            read_energy_pj=reads * p.read_energy_pj,
            write_energy_pj=writes * p.write_energy_pj,
            leakage_energy_pj=leakage_pj,
            latency_ns=latency,
            shift_latency_ns=0.0,
        )
