"""A DWM array: a bank of independent domain block clusters.

The array is the device exposed to the memory subsystem.  Each DBC keeps its
own head state, so accesses to different DBCs never cost shifts against each
other — the property the placement *grouping* phase exploits.

Like :mod:`repro.dwm.dbc`, two fidelity levels exist:

* :class:`DWMArray` — full functional model (stores word values).
* :class:`DWMArrayModel` — counters-only model used on simulation hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dwm.config import DWMConfig
from repro.dwm.dbc import DBC, AccessResult, HeadModel
from repro.errors import SimulationError


@dataclass
class ArrayStats:
    """Aggregate operation counters for a DWM array."""

    shifts: int = 0
    reads: int = 0
    writes: int = 0
    per_dbc_shifts: list[int] = field(default_factory=list)

    @property
    def accesses(self) -> int:
        """Total number of word accesses (reads + writes)."""
        return self.reads + self.writes

    @property
    def shifts_per_access(self) -> float:
        """Average shift operations per access (0.0 for an empty run)."""
        if not self.accesses:
            return 0.0
        return self.shifts / self.accesses


class DWMArrayModel:
    """Counters-only DWM array (one :class:`HeadModel` per DBC)."""

    def __init__(self, config: DWMConfig) -> None:
        self.config = config
        self._dbcs = [HeadModel(config) for _ in range(config.num_dbcs)]

    def access(self, dbc_index: int, offset: int, is_write: bool = False) -> AccessResult:
        """Access word ``offset`` of DBC ``dbc_index``."""
        return self._dbc(dbc_index).access(offset, is_write=is_write)

    def _dbc(self, dbc_index: int) -> HeadModel:
        if not 0 <= dbc_index < self.config.num_dbcs:
            raise SimulationError(
                f"DBC index {dbc_index} outside 0..{self.config.num_dbcs - 1}"
            )
        return self._dbcs[dbc_index]

    def head(self, dbc_index: int) -> int:
        """Current head state (shift state in word units) of a DBC."""
        return self._dbc(dbc_index).head

    def stats(self) -> ArrayStats:
        """Aggregate counters across all DBCs."""
        per_dbc = [dbc.shifts for dbc in self._dbcs]
        return ArrayStats(
            shifts=sum(per_dbc),
            reads=sum(dbc.reads for dbc in self._dbcs),
            writes=sum(dbc.writes for dbc in self._dbcs),
            per_dbc_shifts=per_dbc,
        )

    def reset(self) -> None:
        """Return all heads to rest and clear counters."""
        for dbc in self._dbcs:
            dbc.reset()


class DWMArray:
    """Full functional DWM array storing word values."""

    def __init__(self, config: DWMConfig) -> None:
        self.config = config
        self._dbcs = [DBC(config) for _ in range(config.num_dbcs)]

    def _dbc(self, dbc_index: int) -> DBC:
        if not 0 <= dbc_index < self.config.num_dbcs:
            raise SimulationError(
                f"DBC index {dbc_index} outside 0..{self.config.num_dbcs - 1}"
            )
        return self._dbcs[dbc_index]

    def read(self, dbc_index: int, offset: int) -> AccessResult:
        """Read the word at (``dbc_index``, ``offset``)."""
        return self._dbc(dbc_index).read(offset)

    def write(self, dbc_index: int, offset: int, value: int) -> AccessResult:
        """Write ``value`` at (``dbc_index``, ``offset``)."""
        return self._dbc(dbc_index).write(offset, value)

    def peek(self, dbc_index: int, offset: int) -> int:
        """Inspect a stored word without modelling device operations."""
        return self._dbc(dbc_index).peek(offset)

    def stats(self) -> ArrayStats:
        """Aggregate counters across all DBCs."""
        per_dbc = [dbc.shifts for dbc in self._dbcs]
        return ArrayStats(
            shifts=sum(per_dbc),
            reads=sum(dbc.reads for dbc in self._dbcs),
            writes=sum(dbc.writes for dbc in self._dbcs),
            per_dbc_shifts=per_dbc,
        )
