"""Device configuration for domain wall memory (DWM / racetrack) arrays.

The geometry follows the standard scratchpad organisation used by the DAC'15
data-placement literature:

* A **tape** (racetrack nanowire) holds a train of magnetic domains, each
  storing one bit.  A fixed set of **access ports** can read/write the domain
  currently aligned under them; every other domain must be *shifted* past a
  port first.
* A **domain block cluster (DBC)** groups ``bits_per_word`` tapes that shift
  in lockstep, so the cluster stores ``words_per_dbc`` words and exposes a
  single logical *head position*.  Accessing the word at offset ``o`` while
  the head is at ``h`` costs ``|o - h|`` shift operations (the cheapest port
  is used when several exist).
* A **DWM array** is a set of independent DBCs; each keeps its own head, so
  consecutive accesses to different DBCs do not interfere.

:class:`DWMConfig` captures this geometry plus the shift policy; timing and
energy constants live in :mod:`repro.dwm.energy`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError


class PortPolicy(enum.Enum):
    """How the shift controller positions the tape between accesses.

    * ``LAZY`` — leave the tape where the last access put it (head state
      persists; the standard assumption of the placement literature).
    * ``EAGER`` — return the tape to its rest alignment after every access
      (a.k.a. *return-to-zero*): each access to offset ``o`` costs
      ``2 * min_p |o - p|`` shifts but leaves no state behind.
    """

    LAZY = "lazy"
    EAGER = "eager"

    @classmethod
    def parse(cls, value: "PortPolicy | str") -> "PortPolicy":
        """Coerce a string such as ``"lazy"`` into a :class:`PortPolicy`."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            valid = ", ".join(p.value for p in cls)
            raise ConfigError(
                f"unknown port policy {value!r}; expected one of: {valid}"
            ) from exc


def uniform_port_offsets(words_per_dbc: int, num_ports: int) -> tuple[int, ...]:
    """Spread ``num_ports`` access ports evenly along a DBC.

    Ports are placed at the centres of ``num_ports`` equal segments, which is
    the usual assumption for multi-port racetrack macros: for ``L = 64`` and
    two ports this yields offsets ``(16, 48)``; a single port sits at the
    middle of the tape (offset ``L // 2``) so the worst-case shift distance is
    halved relative to an end-mounted port.
    """
    if words_per_dbc <= 0:
        raise ConfigError(f"words_per_dbc must be positive, got {words_per_dbc}")
    if num_ports <= 0:
        raise ConfigError(f"num_ports must be positive, got {num_ports}")
    if num_ports > words_per_dbc:
        raise ConfigError(
            f"cannot place {num_ports} ports on a DBC of {words_per_dbc} words"
        )
    segment = words_per_dbc / num_ports
    offsets = tuple(
        min(words_per_dbc - 1, int(segment * i + segment / 2))
        for i in range(num_ports)
    )
    if len(set(offsets)) != len(offsets):
        raise ConfigError(
            f"port layout collision for L={words_per_dbc}, P={num_ports}"
        )
    return offsets


@dataclass(frozen=True)
class DWMConfig:
    """Geometry and policy of a DWM scratchpad array.

    Parameters
    ----------
    words_per_dbc:
        Number of word offsets per domain block cluster (``L``).
    num_dbcs:
        Number of independent DBCs in the array.
    bits_per_word:
        Word width; one tape per bit, shifted in lockstep.
    port_offsets:
        Offsets (within ``0..L-1``) of the access ports of every DBC.  Use
        :meth:`with_uniform_ports` unless a custom layout is needed.
    port_policy:
        Shift policy between accesses (:class:`PortPolicy`).
    overhead_domains:
        Extra (data-free) domains at each end of the physical tape so shifting
        never pushes data off the wire.  Purely physical; it does not change
        shift costs but sizes the device model in :mod:`repro.dwm.tape`.
    """

    words_per_dbc: int = 64
    num_dbcs: int = 16
    bits_per_word: int = 32
    port_offsets: tuple[int, ...] = field(default=None)  # type: ignore[assignment]
    port_policy: PortPolicy = PortPolicy.LAZY
    overhead_domains: int = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.words_per_dbc <= 0:
            raise ConfigError(
                f"words_per_dbc must be positive, got {self.words_per_dbc}"
            )
        if self.num_dbcs <= 0:
            raise ConfigError(f"num_dbcs must be positive, got {self.num_dbcs}")
        if self.bits_per_word <= 0:
            raise ConfigError(
                f"bits_per_word must be positive, got {self.bits_per_word}"
            )
        if self.port_offsets is None:
            object.__setattr__(
                self, "port_offsets", uniform_port_offsets(self.words_per_dbc, 1)
            )
        ports = tuple(sorted(int(p) for p in self.port_offsets))
        if not ports:
            raise ConfigError("a DBC needs at least one access port")
        if len(set(ports)) != len(ports):
            raise ConfigError(f"duplicate port offsets: {self.port_offsets}")
        for p in ports:
            if not 0 <= p < self.words_per_dbc:
                raise ConfigError(
                    f"port offset {p} outside DBC range 0..{self.words_per_dbc - 1}"
                )
        object.__setattr__(self, "port_offsets", ports)
        object.__setattr__(self, "port_policy", PortPolicy.parse(self.port_policy))
        if self.overhead_domains is None:
            # Enough slack for the full shift range in either direction.
            object.__setattr__(self, "overhead_domains", self.words_per_dbc - 1)
        if self.overhead_domains < 0:
            raise ConfigError(
                f"overhead_domains must be >= 0, got {self.overhead_domains}"
            )

    # ------------------------------------------------------------------
    # Constructors / derived quantities
    # ------------------------------------------------------------------
    @classmethod
    def with_uniform_ports(
        cls,
        words_per_dbc: int = 64,
        num_dbcs: int = 16,
        num_ports: int = 1,
        bits_per_word: int = 32,
        port_policy: PortPolicy | str = PortPolicy.LAZY,
    ) -> "DWMConfig":
        """Build a config with ``num_ports`` evenly spaced ports per DBC."""
        return cls(
            words_per_dbc=words_per_dbc,
            num_dbcs=num_dbcs,
            bits_per_word=bits_per_word,
            port_offsets=uniform_port_offsets(words_per_dbc, num_ports),
            port_policy=PortPolicy.parse(port_policy),
        )

    @classmethod
    def for_items(
        cls,
        num_items: int,
        words_per_dbc: int = 64,
        num_ports: int = 1,
        bits_per_word: int = 32,
        port_policy: PortPolicy | str = PortPolicy.LAZY,
    ) -> "DWMConfig":
        """Smallest array (in DBC count) that can hold ``num_items`` words."""
        if num_items <= 0:
            raise ConfigError(f"num_items must be positive, got {num_items}")
        num_dbcs = max(1, math.ceil(num_items / words_per_dbc))
        return cls.with_uniform_ports(
            words_per_dbc=words_per_dbc,
            num_dbcs=num_dbcs,
            num_ports=num_ports,
            bits_per_word=bits_per_word,
            port_policy=port_policy,
        )

    @property
    def num_ports(self) -> int:
        """Number of access ports per DBC."""
        return len(self.port_offsets)

    @property
    def capacity_words(self) -> int:
        """Total number of words the array can store."""
        return self.words_per_dbc * self.num_dbcs

    @property
    def capacity_bits(self) -> int:
        """Total number of data bits the array can store."""
        return self.capacity_words * self.bits_per_word

    @property
    def physical_domains_per_tape(self) -> int:
        """Domains on a physical tape including overhead padding."""
        return self.words_per_dbc + 2 * self.overhead_domains

    @property
    def max_shift_distance(self) -> int:
        """Worst-case shifts for a single access (lazy policy)."""
        worst = 0
        for offset in range(self.words_per_dbc):
            best = min(abs(offset - p) for p in self.port_offsets)
            worst = max(worst, best)
        # Head may start at the far end from a previous access.
        return self.words_per_dbc - 1

    def nearest_port(self, offset: int) -> int:
        """Port offset closest to ``offset`` (ties break toward lower port)."""
        if not 0 <= offset < self.words_per_dbc:
            raise ConfigError(
                f"offset {offset} outside DBC range 0..{self.words_per_dbc - 1}"
            )
        return min(self.port_offsets, key=lambda p: (abs(offset - p), p))

    def resized(self, **changes) -> "DWMConfig":
        """Return a copy with the given fields replaced.

        Port offsets are re-derived uniformly when ``words_per_dbc`` changes
        and no explicit ``port_offsets`` is supplied, so sweeps over tape
        length keep a consistent port layout.
        """
        if "words_per_dbc" in changes and "port_offsets" not in changes:
            changes["port_offsets"] = uniform_port_offsets(
                changes["words_per_dbc"], self.num_ports
            )
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable summary of the geometry."""
        return (
            f"DWM[{self.num_dbcs} DBCs x {self.words_per_dbc} words x "
            f"{self.bits_per_word}b, ports={list(self.port_offsets)}, "
            f"policy={self.port_policy.value}]"
        )
