"""Port-position co-design: choose where to put the access ports.

The sensitivity experiment (E5) uses evenly spaced ports, but port positions
are themselves a design degree of freedom: for a given workload the best
offsets are the weighted medians of where the placed data is actually
accessed (the 1-D k-medians optimum minimizes total approach distance).
Placement and port positions depend on each other, so
:func:`co_design_ports` alternates the two until a fixed point — a small
design-space tool layered on the library.
"""

from __future__ import annotations

from repro.dwm.config import DWMConfig
from repro.errors import ConfigError, OptimizationError


def weighted_k_medians(
    weights_by_offset: dict[int, int],
    num_ports: int,
    num_offsets: int,
) -> tuple[int, ...]:
    """Optimal 1-D k-medians of an offset histogram (exact DP).

    Minimizes ``Σ_o weight(o) · min_p |o − p|`` over port sets of size
    ``num_ports``; O(k · n²) dynamic program over contiguous segments, which
    is exact because in 1-D each port serves a contiguous offset range.
    """
    if num_ports <= 0:
        raise OptimizationError(f"num_ports must be positive, got {num_ports}")
    if num_ports >= num_offsets:
        return tuple(range(min(num_ports, num_offsets)))
    offsets = list(range(num_offsets))
    weights = [weights_by_offset.get(offset, 0) for offset in offsets]

    def segment_cost_and_median(start: int, end: int) -> tuple[int, int]:
        """Best single-port cost for offsets[start..end] and its median."""
        total = sum(weights[start : end + 1])
        if total == 0:
            median = (start + end) // 2
            return 0, median
        half = total / 2
        cumulative = 0
        median = start
        for offset in range(start, end + 1):
            cumulative += weights[offset]
            if cumulative >= half:
                median = offset
                break
        cost = sum(
            weights[offset] * abs(offset - median)
            for offset in range(start, end + 1)
        )
        return cost, median

    n = num_offsets
    INF = float("inf")
    # best[k][i] = min cost of covering offsets[0..i] with k ports.
    best = [[INF] * n for _ in range(num_ports + 1)]
    choice: dict[tuple[int, int], tuple[int, int]] = {}
    for i in range(n):
        cost, median = segment_cost_and_median(0, i)
        best[1][i] = cost
        choice[(1, i)] = (0, median)
    for k in range(2, num_ports + 1):
        for i in range(n):
            for split in range(max(1, k - 1), i + 1):
                cost, median = segment_cost_and_median(split, i)
                candidate = best[k - 1][split - 1] + cost
                if candidate < best[k][i]:
                    best[k][i] = candidate
                    choice[(k, i)] = (split, median)
    # Recover medians.
    medians: list[int] = []
    k, i = num_ports, n - 1
    while k >= 1:
        split, median = choice[(k, i)]
        medians.append(median)
        i = split - 1
        k -= 1
        if i < 0:
            break
    medians.reverse()
    # Deduplicate (possible when empty segments collapse).
    unique: list[int] = []
    for median in medians:
        while median in unique:
            median += 1
            if median >= num_offsets:
                median = next(
                    o for o in range(num_offsets) if o not in unique
                )
        unique.append(median)
    return tuple(sorted(unique))


def access_histogram(problem, placement) -> dict[int, dict[int, int]]:
    """Per-DBC histogram of access counts by offset under a placement."""
    histogram: dict[int, dict[int, int]] = {}
    frequencies = problem.trace.frequencies()
    for item, slot in placement.items():
        per_dbc = histogram.setdefault(slot.dbc, {})
        per_dbc[slot.offset] = per_dbc.get(slot.offset, 0) + frequencies.get(item, 0)
    return histogram


def co_design_ports(
    trace,
    num_ports: int = 1,
    words_per_dbc: int = 64,
    rounds: int = 3,
) -> tuple[DWMConfig, "object"]:
    """Alternate placement and port-position optimization to a fixed point.

    Returns ``(config, placement_result)`` with the final port layout and
    the placement optimized for it.  All DBCs share one port layout (as in
    real macros, where the port wiring is identical per cluster); the
    aggregated cross-DBC access histogram drives the k-medians step.
    """
    from repro.core.api import build_problem, optimize_placement

    if rounds < 1:
        raise OptimizationError(f"rounds must be >= 1, got {rounds}")
    config = DWMConfig.for_items(
        trace.num_items, words_per_dbc=words_per_dbc, num_ports=num_ports
    )
    best_result = optimize_placement(trace, config, method="heuristic")
    best_config = config
    for _ in range(rounds):
        problem = build_problem(trace, best_config)
        histogram = access_histogram(problem, best_result.placement)
        merged: dict[int, int] = {}
        for per_dbc in histogram.values():
            for offset, weight in per_dbc.items():
                merged[offset] = merged.get(offset, 0) + weight
        ports = weighted_k_medians(merged, num_ports, best_config.words_per_dbc)
        try:
            candidate_config = DWMConfig(
                words_per_dbc=best_config.words_per_dbc,
                num_dbcs=best_config.num_dbcs,
                port_offsets=ports,
                port_policy=best_config.port_policy,
            )
        except ConfigError:  # pragma: no cover - k-medians yields valid ports
            break
        candidate = optimize_placement(trace, candidate_config, method="heuristic")
        if candidate.total_shifts < best_result.total_shifts:
            best_result = candidate
            best_config = candidate_config
        else:
            break
    return best_config, best_result
