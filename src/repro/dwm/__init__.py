"""Device substrate: domain wall memory (racetrack) model.

Public surface:

* :class:`~repro.dwm.config.DWMConfig` / :class:`~repro.dwm.config.PortPolicy`
  — array geometry and shift policy.
* :class:`~repro.dwm.tape.Tape` — domain-level nanowire model.
* :class:`~repro.dwm.dbc.DBC` / :class:`~repro.dwm.dbc.HeadModel` — word-level
  cluster models (full and counters-only).
* :class:`~repro.dwm.array.DWMArray` / :class:`~repro.dwm.array.DWMArrayModel`
  — the bank exposed to the memory subsystem.
* :class:`~repro.dwm.energy.DWMEnergyModel` /
  :class:`~repro.dwm.energy.SRAMEnergyModel` — linear energy/latency models.
"""

from repro.dwm.array import ArrayStats, DWMArray, DWMArrayModel
from repro.dwm.config import DWMConfig, PortPolicy, uniform_port_offsets
from repro.dwm.dbc import DBC, AccessResult, HeadModel, port_access_cost
from repro.dwm.faults import (
    FaultEvent,
    FaultInjectionReport,
    FaultModel,
    injection_seed,
    run_injection,
)
from repro.dwm.energy import (
    DWMEnergyModel,
    DWMEnergyParams,
    EnergyBreakdown,
    SRAMEnergyModel,
    SRAMEnergyParams,
)
from repro.dwm.ports import (
    access_histogram,
    co_design_ports,
    weighted_k_medians,
)
from repro.dwm.preshift import (
    NextOffsetPredictor,
    PreshiftResult,
    simulate_preshift,
)
from repro.dwm.reliability import (
    DEFAULT_SHIFT_ERROR_RATE,
    ReliabilityReport,
    reliability_report,
)
from repro.dwm.tape import Tape, TapeStats

__all__ = [
    "ArrayStats",
    "AccessResult",
    "DBC",
    "DWMArray",
    "DWMArrayModel",
    "DWMConfig",
    "DWMEnergyModel",
    "DWMEnergyParams",
    "EnergyBreakdown",
    "FaultEvent",
    "FaultInjectionReport",
    "FaultModel",
    "HeadModel",
    "PortPolicy",
    "SRAMEnergyModel",
    "SRAMEnergyParams",
    "DEFAULT_SHIFT_ERROR_RATE",
    "NextOffsetPredictor",
    "PreshiftResult",
    "ReliabilityReport",
    "simulate_preshift",
    "Tape",
    "TapeStats",
    "access_histogram",
    "co_design_ports",
    "injection_seed",
    "port_access_cost",
    "run_injection",
    "reliability_report",
    "uniform_port_offsets",
    "weighted_k_medians",
]
