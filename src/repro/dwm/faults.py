"""Monte-Carlo shift-fault injection for DWM simulations.

The analytic model in :mod:`repro.dwm.reliability` treats every shift as an
independent error-exposure event and reports *expected* counts.  This module
samples an actual fault realisation: a seeded, deterministic schedule of
shift faults is drawn over the simulator's shift stream, replayed against
the per-access (DBC, cost) sequence, and accounted for through a detection
and correction model:

* **Misalignment faults** — a shift over- or under-moves the domain train by
  one word, leaving the DBC's head off by ±1 until realigned.
* **Pinning faults** (stuck domains) — the train sticks for the remainder of
  one access's shift burst, leaving a multi-word misalignment.
* **Exposure** — every access served by a misaligned DBC reads/writes the
  wrong word; the injector counts these corrupted accesses.
* **Detection** — the controller verifies head position every
  ``check_interval`` accesses per DBC (e.g. via ECC/position sentinels).
* **Correction** — a detected misalignment is repaired by shifting the train
  back (``|misalignment|`` shifts) plus a fixed
  ``realignment_overhead_shifts`` calibration cost.

Determinism contract: the fault schedule is a pure function of
``(model.seed, trace fingerprint, config geometry)`` and the per-access
shift-cost stream.  The scalar and vectorized engines produce bit-identical
cost streams, so injection over either engine yields the *identical*
schedule, exposure, and correction costs (tested in
``tests/test_faults.py``).

Because faults are sampled per *shift*, shift-minimizing placement directly
shrinks the fault budget — the secondary reliability benefit experiment E20
quantifies against the analytic expectation.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Sequence

from repro.dwm.config import DWMConfig
from repro.dwm.reliability import ReliabilityReport
from repro.errors import ConfigError
from repro.obs import get_registry, trace_span
from repro.trace.model import AccessTrace

#: Fault kinds drawn by the injector.
OVERSHIFT = "overshift"
UNDERSHIFT = "undershift"
PINNING = "pinning"


@dataclass(frozen=True)
class FaultModel:
    """Parameters of the Monte-Carlo shift-fault process.

    ``shift_error_rate`` is the per-shift fault probability; a drawn fault
    is an over-shift, under-shift or pinning event according to the three
    fractions (which must sum to 1).  ``check_interval`` is the number of
    accesses a DBC serves between controller position checks, and
    ``realignment_overhead_shifts`` the fixed calibration cost charged on
    top of the corrective shifts for every detected misalignment.
    """

    shift_error_rate: float = 1e-4
    overshift_fraction: float = 0.45
    undershift_fraction: float = 0.45
    pinning_fraction: float = 0.10
    check_interval: int = 64
    realignment_overhead_shifts: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.shift_error_rate < 1.0:
            raise ConfigError(
                f"shift_error_rate must be in [0, 1), got {self.shift_error_rate}"
            )
        fractions = (
            self.overshift_fraction,
            self.undershift_fraction,
            self.pinning_fraction,
        )
        if any(fraction < 0.0 for fraction in fractions):
            raise ConfigError(f"fault fractions must be >= 0, got {fractions}")
        if not math.isclose(sum(fractions), 1.0, rel_tol=0.0, abs_tol=1e-9):
            raise ConfigError(
                f"fault fractions must sum to 1, got {sum(fractions)}"
            )
        if self.check_interval < 1:
            raise ConfigError(
                f"check_interval must be >= 1, got {self.check_interval}"
            )
        if self.realignment_overhead_shifts < 0:
            raise ConfigError(
                "realignment_overhead_shifts must be >= 0, got "
                f"{self.realignment_overhead_shifts}"
            )


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault.

    ``shift_index`` is the global index of the faulty shift in trace order;
    ``magnitude`` is the signed misalignment delta in words (+1 over-shift,
    -1 under-shift, -k for a pinning event that froze k shift steps).
    """

    shift_index: int
    access_index: int
    dbc: int
    kind: str
    magnitude: int


@dataclass(frozen=True)
class FaultInjectionReport:
    """Outcome of one Monte-Carlo fault-injection run."""

    model: FaultModel
    total_shifts: int
    total_accesses: int
    events: tuple[FaultEvent, ...]
    corrupted_accesses: int
    position_checks: int
    realignments: int
    realignment_shifts: int
    max_abs_misalignment: int
    residual_misaligned_dbcs: int
    per_dbc_faults: tuple[int, ...]

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    @property
    def injected_faults(self) -> int:
        return len(self.events)

    def count(self, kind: str) -> int:
        """Number of injected faults of one kind."""
        return sum(1 for event in self.events if event.kind == kind)

    @property
    def exposure_fraction(self) -> float:
        """Fraction of accesses served while the DBC was misaligned."""
        if not self.total_accesses:
            return 0.0
        return self.corrupted_accesses / self.total_accesses

    # ------------------------------------------------------------------
    # Analytic comparison
    # ------------------------------------------------------------------
    @property
    def expected_faults(self) -> float:
        """Analytic expectation: ``total_shifts * shift_error_rate``."""
        return self.total_shifts * self.model.shift_error_rate

    @property
    def fault_count_sigma(self) -> float:
        """Binomial standard deviation of the fault count."""
        p = self.model.shift_error_rate
        return math.sqrt(self.total_shifts * p * (1.0 - p))

    def within_sigma(self, k: float = 3.0) -> bool:
        """True when the sampled fault count is within ``k`` sigma of the
        analytic expectation (always true for a zero-variance process)."""
        sigma = self.fault_count_sigma
        deviation = abs(self.injected_faults - self.expected_faults)
        if sigma == 0.0:
            return deviation == 0.0
        return deviation <= k * sigma

    def analytic(self, per_dbc_shifts: Sequence[int] = ()) -> ReliabilityReport:
        """The analytic report for the same shift stream and error rate."""
        return ReliabilityReport(
            total_shifts=self.total_shifts,
            shift_error_rate=self.model.shift_error_rate,
            per_dbc_shifts=tuple(per_dbc_shifts),
        )

    def as_details(self) -> dict:
        """Counter dict merged into ``SimulationResult.details['faults']``."""
        return {
            "seed": self.model.seed,
            "shift_error_rate": self.model.shift_error_rate,
            "check_interval": self.model.check_interval,
            "injected": self.injected_faults,
            "overshift": self.count(OVERSHIFT),
            "undershift": self.count(UNDERSHIFT),
            "pinning": self.count(PINNING),
            "corrupted_accesses": self.corrupted_accesses,
            "exposure_fraction": self.exposure_fraction,
            "position_checks": self.position_checks,
            "realignments": self.realignments,
            "realignment_shifts": self.realignment_shifts,
            "max_abs_misalignment": self.max_abs_misalignment,
            "residual_misaligned_dbcs": self.residual_misaligned_dbcs,
            "expected_faults": self.expected_faults,
            "fault_count_sigma": self.fault_count_sigma,
        }


def injection_seed(model: FaultModel, trace: AccessTrace, config: DWMConfig) -> int:
    """Derive the RNG seed from (model seed, trace content, geometry).

    Hashing the trace *fingerprint* (not its name) and the config geometry
    means the same logical experiment always draws the same schedule, while
    any change to the access stream, the geometry, or the model parameters
    decorrelates the draw.
    """
    digest = hashlib.sha256()
    digest.update(trace.fingerprint().encode("utf-8"))
    digest.update(config.describe().encode("utf-8"))
    digest.update(
        repr(
            (
                model.seed,
                model.shift_error_rate,
                model.overshift_fraction,
                model.undershift_fraction,
                model.pinning_fraction,
            )
        ).encode("utf-8")
    )
    return int.from_bytes(digest.digest()[:8], "big")


def _fault_positions(rng: random.Random, total_shifts: int, rate: float) -> list[int]:
    """Global shift indices of fault events, via geometric gap sampling.

    Equivalent to an independent Bernoulli(rate) draw per shift, but costs
    O(faults) instead of O(shifts).
    """
    if rate <= 0.0 or total_shifts <= 0:
        return []
    log_survive = math.log1p(-rate)
    positions: list[int] = []
    index = -1
    while True:
        gap = int(math.log1p(-rng.random()) / log_survive) + 1
        index += gap
        if index >= total_shifts:
            return positions
        positions.append(index)


def _fault_kind(rng: random.Random, model: FaultModel) -> str:
    draw = rng.random()
    if draw < model.overshift_fraction:
        return OVERSHIFT
    if draw < model.overshift_fraction + model.undershift_fraction:
        return UNDERSHIFT
    return PINNING


def run_injection(
    dbc_seq: Sequence[int],
    cost_seq: Sequence[int],
    num_dbcs: int,
    model: FaultModel,
    seed: int,
) -> FaultInjectionReport:
    """Inject faults into a per-access (DBC, shift-cost) stream.

    Pure function of its arguments: any simulation engine that produces the
    same cost stream (they are bit-identical by construction) yields the
    same report.  ``seed`` should come from :func:`injection_seed`.
    """
    if len(dbc_seq) != len(cost_seq):
        raise ConfigError(
            f"dbc/cost streams disagree: {len(dbc_seq)} vs {len(cost_seq)}"
        )
    with trace_span("fault_injection", accesses=len(dbc_seq)):
        report = _run_injection(dbc_seq, cost_seq, num_dbcs, model, seed)
    registry = get_registry()
    registry.inc("faults.runs")
    for kind in (OVERSHIFT, UNDERSHIFT, PINNING):
        count = report.count(kind)
        if count:
            registry.inc("faults.injected", count, kind=kind)
    if report.corrupted_accesses:
        registry.inc("faults.corrupted_accesses", report.corrupted_accesses)
    if report.realignments:
        registry.inc("faults.realignments", report.realignments)
        registry.inc("faults.realignment_shifts", report.realignment_shifts)
    return report


def _run_injection(
    dbc_seq: Sequence[int],
    cost_seq: Sequence[int],
    num_dbcs: int,
    model: FaultModel,
    seed: int,
) -> FaultInjectionReport:
    """Uninstrumented injection body (see :func:`run_injection`)."""
    rng = random.Random(seed)
    total_shifts = int(sum(int(cost) for cost in cost_seq))
    positions = _fault_positions(rng, total_shifts, model.shift_error_rate)
    kinds = [_fault_kind(rng, model) for _ in positions]

    misalignment = [0] * num_dbcs
    accesses_since_check = [0] * num_dbcs
    per_dbc_faults = [0] * num_dbcs
    events: list[FaultEvent] = []
    corrupted = 0
    checks = 0
    realignments = 0
    realignment_shifts = 0
    max_abs = 0
    fault_ptr = 0
    num_faults = len(positions)
    shift_base = 0
    for access_index in range(len(dbc_seq)):
        dbc = int(dbc_seq[access_index])
        cost = int(cost_seq[access_index])
        shift_end = shift_base + cost
        while fault_ptr < num_faults and positions[fault_ptr] < shift_end:
            position = positions[fault_ptr]
            kind = kinds[fault_ptr]
            fault_ptr += 1
            if kind == PINNING:
                # The train sticks for the rest of this access's burst.
                magnitude = -(shift_end - position)
            elif kind == OVERSHIFT:
                magnitude = 1
            else:
                magnitude = -1
            misalignment[dbc] += magnitude
            per_dbc_faults[dbc] += 1
            if abs(misalignment[dbc]) > max_abs:
                max_abs = abs(misalignment[dbc])
            events.append(
                FaultEvent(
                    shift_index=position,
                    access_index=access_index,
                    dbc=dbc,
                    kind=kind,
                    magnitude=magnitude,
                )
            )
        shift_base = shift_end
        # The word transfer happens after this access's shifts: any standing
        # misalignment (including one introduced just now) corrupts it.
        if misalignment[dbc] != 0:
            corrupted += 1
        accesses_since_check[dbc] += 1
        if accesses_since_check[dbc] >= model.check_interval:
            accesses_since_check[dbc] = 0
            checks += 1
            if misalignment[dbc] != 0:
                realignments += 1
                realignment_shifts += (
                    abs(misalignment[dbc]) + model.realignment_overhead_shifts
                )
                misalignment[dbc] = 0
    return FaultInjectionReport(
        model=model,
        total_shifts=total_shifts,
        total_accesses=len(dbc_seq),
        events=tuple(events),
        corrupted_accesses=corrupted,
        position_checks=checks,
        realignments=realignments,
        realignment_shifts=realignment_shifts,
        max_abs_misalignment=max_abs,
        residual_misaligned_dbcs=sum(1 for m in misalignment if m != 0),
        per_dbc_faults=tuple(per_dbc_faults),
    )
