"""Domain block cluster (DBC): word-granularity unit of a DWM scratchpad.

A DBC groups ``bits_per_word`` tapes that shift in lockstep, so the cluster
stores ``words_per_dbc`` words and has a *single* head state shared by all its
tapes.  All shift-cost reasoning in the placement literature happens at this
granularity; the :class:`DBC` here both counts shifts (the quantity the paper
minimizes) and stores real word values (so functional correctness of the
device model is testable).

Two implementations are provided:

* :class:`DBC` — full model backed by :class:`repro.dwm.tape.Tape` objects,
  storing bits and enforcing overhead-domain limits.
* :class:`HeadModel` — a counters-only model that tracks just the head state
  and shift counts.  It is what the fast simulator and the analytical cost
  evaluator use; tests assert it always agrees with :class:`DBC`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dwm.config import DWMConfig, PortPolicy
from repro.dwm.tape import Tape
from repro.errors import ConfigError, SimulationError


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a single word access on a DBC."""

    shifts: int
    port: int
    value: int | None = None  # populated on reads by the full model


def port_access_cost(
    offset: int,
    head: int,
    port_offsets: tuple[int, ...],
) -> tuple[int, int, int]:
    """Cheapest way to bring ``offset`` under some port given head state.

    The *head* is expressed in word coordinates: it is the offset currently
    aligned with the reference port position 0 of the shift state, i.e. the
    cumulative shift applied so far.  Aligning offset ``o`` under port ``p``
    requires shift state ``o - p``; the cost from the current state ``head``
    is ``|(o - p) - head|``.

    Returns ``(cost, chosen_port, new_head)``; ties break toward the
    lower-numbered port for determinism.
    """
    best: tuple[int, int, int] | None = None
    for port in port_offsets:
        target = offset - port
        cost = abs(target - head)
        if best is None or cost < best[0]:
            best = (cost, port, target)
    assert best is not None
    return best


class HeadModel:
    """Counters-only DBC model: head state + shift accounting.

    This is the model used on the hot path of simulation and optimization.
    ``head`` is the current shift state in word units (0 = rest alignment).
    """

    __slots__ = ("words_per_dbc", "port_offsets", "policy", "head", "shifts",
                 "reads", "writes", "max_abs_head")

    def __init__(self, config: DWMConfig) -> None:
        self.words_per_dbc = config.words_per_dbc
        self.port_offsets = config.port_offsets
        self.policy = config.port_policy
        self.head = 0
        self.shifts = 0
        self.reads = 0
        self.writes = 0
        self.max_abs_head = 0

    def access(self, offset: int, is_write: bool = False) -> AccessResult:
        """Access the word at ``offset``; returns the shift cost incurred."""
        if not 0 <= offset < self.words_per_dbc:
            raise SimulationError(
                f"offset {offset} outside DBC range 0..{self.words_per_dbc - 1}"
            )
        cost, port, new_head = port_access_cost(
            offset, self.head, self.port_offsets
        )
        total = cost
        if self.policy is PortPolicy.EAGER:
            # Return to rest alignment after the access.
            total += abs(new_head)
            self.head = 0
        else:
            self.head = new_head
        self.max_abs_head = max(self.max_abs_head, abs(new_head))
        self.shifts += total
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        return AccessResult(shifts=total, port=port)

    def reset(self) -> None:
        """Return head to rest and clear counters."""
        self.head = 0
        self.shifts = 0
        self.reads = 0
        self.writes = 0
        self.max_abs_head = 0


class DBC:
    """Full DBC model with lockstep tapes storing real word values."""

    def __init__(self, config: DWMConfig) -> None:
        if config.overhead_domains < config.words_per_dbc - 1:
            # A lazy head can drift by up to L-1 in either direction; the
            # physical tape must have enough padding for that.
            raise ConfigError(
                "overhead_domains must be >= words_per_dbc - 1 for lockstep "
                f"operation (got {config.overhead_domains} < "
                f"{config.words_per_dbc - 1})"
            )
        self.config = config
        self._tapes = [
            Tape(config.words_per_dbc, config.overhead_domains)
            for _ in range(config.bits_per_word)
        ]
        self._model = HeadModel(config)

    # ------------------------------------------------------------------
    # Properties mirrored from the head model
    # ------------------------------------------------------------------
    @property
    def head(self) -> int:
        """Current shift state in word units."""
        return self._model.head

    @property
    def shifts(self) -> int:
        """Total unit shifts performed so far (per-word, not per-tape)."""
        return self._model.shifts

    @property
    def reads(self) -> int:
        return self._model.reads

    @property
    def writes(self) -> int:
        return self._model.writes

    # ------------------------------------------------------------------
    # Word accesses
    # ------------------------------------------------------------------
    def _mask(self) -> int:
        return (1 << self.config.bits_per_word) - 1

    def read(self, offset: int) -> AccessResult:
        """Read the word at ``offset``, shifting as needed."""
        # Alignment at access time must be computed *before* the head model
        # updates (under EAGER policy the model returns the head to rest).
        _cost, port, access_head = port_access_cost(
            offset, self._model.head, self.config.port_offsets
        )
        result = self._model.access(offset, is_write=False)
        self._align_tapes(access_head)
        value = 0
        port_pos = self._port_physical(port)
        for bit_index, tape in enumerate(self._tapes):
            value |= tape.read(port_pos) << bit_index
        self._apply_shift_to_tapes()  # no-op for LAZY; rest-return for EAGER
        return AccessResult(shifts=result.shifts, port=port, value=value)

    def write(self, offset: int, value: int) -> AccessResult:
        """Write ``value`` into the word at ``offset``, shifting as needed."""
        value &= self._mask()
        _cost, port, access_head = port_access_cost(
            offset, self._model.head, self.config.port_offsets
        )
        result = self._model.access(offset, is_write=True)
        self._align_tapes(access_head)
        port_pos = self._port_physical(port)
        for bit_index, tape in enumerate(self._tapes):
            tape.write(port_pos, (value >> bit_index) & 1)
        self._apply_shift_to_tapes()
        return AccessResult(shifts=result.shifts, port=port, value=None)

    def peek(self, offset: int) -> int:
        """Read a stored word without modelling device operations."""
        value = 0
        for bit_index, tape in enumerate(self._tapes):
            value |= tape.peek(offset) << bit_index
        return value

    def load_words(self, values) -> None:
        """Bulk-initialise stored words (no operation cost charged)."""
        values = list(values)
        if len(values) > self.config.words_per_dbc:
            raise SimulationError(
                f"{len(values)} words exceed DBC capacity "
                f"{self.config.words_per_dbc}"
            )
        for bit_index, tape in enumerate(self._tapes):
            bits = [0] * self.config.words_per_dbc
            for offset, value in enumerate(values):
                bits[offset] = (int(value) >> bit_index) & 1
            tape.load(bits)

    # ------------------------------------------------------------------
    # Internal tape synchronisation
    # ------------------------------------------------------------------
    def _port_physical(self, port_offset: int) -> int:
        """Physical position of a port.

        The :class:`~repro.dwm.tape.Tape` model indexes physical positions so
        that data domain ``i`` rests at position ``i`` (overhead padding only
        bounds the legal ``shift_state`` range), so a port at word offset
        ``p`` sits at physical position ``p``.
        """
        return port_offset

    def _align_tapes(self, head: int) -> None:
        """Shift every tape so its state matches ``head`` (word units).

        Head state ``h`` means word ``o`` aligns under port ``p`` when
        ``h == o - p``; physically the train must move by ``-h`` (data index
        under physical position ``overhead + p`` must be ``p + h``).
        """
        target_physical_state = -head
        for tape in self._tapes:
            tape.shift(target_physical_state - tape.shift_state)

    def _apply_shift_to_tapes(self) -> None:
        """Bring tape shift states in line with the head model."""
        self._align_tapes(self._model.head)

    def tape_shift_consistency(self) -> bool:
        """True if all tapes are in lockstep (verification helper)."""
        states = {tape.shift_state for tape in self._tapes}
        return len(states) <= 1
