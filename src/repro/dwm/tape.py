"""Domain-level model of a single racetrack nanowire (tape).

This is the lowest-fidelity layer of the device substrate: it stores actual
bit values in a train of magnetic domains and implements the physical shift
semantics, including the *overhead domains* at each end of the wire that keep
data from being pushed off the track.  The word-granularity shift-cost model
used by the placement algorithms is layered on top in :mod:`repro.dwm.dbc`;
the two are cross-checked by tests.

Coordinate system
-----------------
A tape holds ``data_len`` data domains flanked by ``overhead`` padding domains
on each side.  ``shift_state`` records the cumulative displacement of the
domain train relative to its rest alignment: after ``shift(+k)`` the domain
that rests at logical index ``i`` sits under the physical position ``i + k``.
A read/write *through a port at physical position p* therefore touches the
logical domain ``p - shift_state``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, SimulationError


@dataclass
class TapeStats:
    """Operation counters for a single tape."""

    shifts: int = 0
    shift_ops: int = 0  # number of shift *commands* (each may move many steps)
    reads: int = 0
    writes: int = 0

    def merged(self, other: "TapeStats") -> "TapeStats":
        """Return the element-wise sum of two counters."""
        return TapeStats(
            shifts=self.shifts + other.shifts,
            shift_ops=self.shift_ops + other.shift_ops,
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
        )


class Tape:
    """A single racetrack nanowire storing one bit per domain.

    Parameters
    ----------
    data_len:
        Number of data-carrying domains (word offsets at this bit position).
    overhead:
        Padding domains at *each* end; the shift range is limited to
        ``[-overhead, +overhead]``.
    """

    def __init__(self, data_len: int, overhead: int | None = None) -> None:
        if data_len <= 0:
            raise ConfigError(f"data_len must be positive, got {data_len}")
        if overhead is None:
            overhead = data_len - 1
        if overhead < 0:
            raise ConfigError(f"overhead must be >= 0, got {overhead}")
        self.data_len = data_len
        self.overhead = overhead
        self._bits = [0] * data_len
        self.shift_state = 0
        self.stats = TapeStats()

    # ------------------------------------------------------------------
    # Physical operations
    # ------------------------------------------------------------------
    def shift(self, steps: int) -> int:
        """Shift the domain train by ``steps`` (positive = toward higher
        physical positions).  Returns the number of unit shifts performed.

        Raises :class:`SimulationError` if the shift would push data domains
        past the overhead region (data loss on real hardware).
        """
        new_state = self.shift_state + steps
        if abs(new_state) > self.overhead:
            raise SimulationError(
                f"shift to state {new_state} exceeds overhead {self.overhead}"
            )
        self.shift_state = new_state
        magnitude = abs(steps)
        self.stats.shifts += magnitude
        if magnitude:
            self.stats.shift_ops += 1
        return magnitude

    def aligned_index(self, port_position: int) -> int:
        """Logical data index currently aligned under ``port_position``."""
        index = port_position - self.shift_state
        if not 0 <= index < self.data_len:
            raise SimulationError(
                f"port at {port_position} aligned with non-data domain "
                f"{index} (shift_state={self.shift_state})"
            )
        return index

    def read(self, port_position: int) -> int:
        """Read the bit under the port at ``port_position`` (no shifting)."""
        index = self.aligned_index(port_position)
        self.stats.reads += 1
        return self._bits[index]

    def write(self, port_position: int, bit: int) -> None:
        """Write ``bit`` (0/1) into the domain under ``port_position``."""
        if bit not in (0, 1):
            raise SimulationError(f"bit value must be 0 or 1, got {bit!r}")
        index = self.aligned_index(port_position)
        self.stats.writes += 1
        self._bits[index] = bit

    # ------------------------------------------------------------------
    # Combined access helpers
    # ------------------------------------------------------------------
    def shift_to_align(self, logical_index: int, port_position: int) -> int:
        """Shift so that data domain ``logical_index`` sits under the port.

        Returns the number of unit shifts performed.
        """
        if not 0 <= logical_index < self.data_len:
            raise SimulationError(
                f"logical index {logical_index} outside 0..{self.data_len - 1}"
            )
        target_state = port_position - logical_index
        return self.shift(target_state - self.shift_state)

    def peek(self, logical_index: int) -> int:
        """Inspect a data bit without modelling any device operation.

        Debug/verification helper: does not count as a read and needs no
        alignment.
        """
        return self._bits[logical_index]

    def load(self, bits) -> None:
        """Initialise the full data region (no operation cost is charged)."""
        bits = list(bits)
        if len(bits) != self.data_len:
            raise SimulationError(
                f"expected {self.data_len} bits, got {len(bits)}"
            )
        for bit in bits:
            if bit not in (0, 1):
                raise SimulationError(f"bit value must be 0 or 1, got {bit!r}")
        self._bits = bits

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Tape(data_len={self.data_len}, overhead={self.overhead}, "
            f"shift_state={self.shift_state})"
        )
