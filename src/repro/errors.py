"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so callers
can catch a single base class at API boundaries.  Sub-classes are grouped by
subsystem:

* :class:`ConfigError` — invalid device or simulation configuration.
* :class:`TraceError` — malformed access traces or trace files.
* :class:`PlacementError` — invalid data placements (overlaps, capacity,
  unknown items).
* :class:`CapacityError` — a placement problem does not fit in the configured
  memory.
* :class:`SimulationError` — runtime failures of the trace-driven simulator.
* :class:`OptimizationError` — failures inside placement algorithms.
* :class:`ArtifactError` — a persisted artifact (binary trace, cache shard,
  checkpoint journal) is corrupt, torn, or unreadable.
* :class:`InjectedFaultError` — a failure deliberately raised by the chaos
  failpoint framework (:mod:`repro.chaos`).

The split between *semantic* and *infrastructure* failures drives the
graceful-degradation layer (:mod:`repro.robust`): infrastructure failures
(I/O errors, memory pressure, dead workers, injected faults) may be
recovered by falling back along a degradation chain, while semantic errors
(bad config, invalid placement, inconsistent simulator state) must
propagate — recomputing would reproduce them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """An invalid device or model configuration was supplied."""


class TraceError(ReproError, ValueError):
    """An access trace (or trace file) is malformed."""


class PlacementError(ReproError, ValueError):
    """A data placement is structurally invalid.

    Raised for overlapping slots, out-of-range offsets, unknown items, or
    missing placements for items referenced by a trace.
    """


class CapacityError(PlacementError):
    """The items of a problem exceed the capacity of the configured memory."""


class SimulationError(ReproError, RuntimeError):
    """The trace-driven simulator encountered an inconsistent state."""


class OptimizationError(ReproError, RuntimeError):
    """A placement algorithm failed or was asked for an unsupported mode."""


class ArtifactError(ReproError, RuntimeError):
    """A persisted artifact is corrupt, torn, or unreadable.

    Base class for the on-disk failure taxonomy consumed by ``repro fsck``
    (:mod:`repro.fsck`): every subclass names the artifact kind and, where
    known, how much of it is salvageable.
    """


class TraceFormatError(TraceError, ArtifactError):
    """A binary trace file (``.rtb``) violates its on-disk format.

    Unifies the previously ad-hoc corruption errors of
    :mod:`repro.trace.binio` — bad magic, unsupported version, short
    reads, truncated record/meta regions — under one type carrying
    forensics for ``repro fsck``:

    * ``byte_offset`` — where in the file the format breaks down
      (``None`` when unknown);
    * ``salvageable_records`` — how many leading records are intact and
      recoverable by the salvage path (``None`` when not yet computed).
    """

    def __init__(
        self,
        message: str,
        *,
        path=None,
        byte_offset: int | None = None,
        salvageable_records: int | None = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.byte_offset = byte_offset
        self.salvageable_records = salvageable_records


class CacheArtifactError(ArtifactError):
    """A result-cache shard is corrupt (normally quarantined, not raised)."""


class JournalArtifactError(ArtifactError):
    """A checkpoint journal is torn beyond the tolerated trailing records."""


class InjectedFaultError(ReproError, RuntimeError):
    """Default error raised by a firing chaos failpoint.

    Deliberately part of the public taxonomy: a chaos soak asserts that
    every aborted run died with a *typed* error, and this is the type an
    unannotated ``raise`` action produces.
    """
