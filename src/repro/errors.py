"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so callers
can catch a single base class at API boundaries.  Sub-classes are grouped by
subsystem:

* :class:`ConfigError` — invalid device or simulation configuration.
* :class:`TraceError` — malformed access traces or trace files.
* :class:`PlacementError` — invalid data placements (overlaps, capacity,
  unknown items).
* :class:`CapacityError` — a placement problem does not fit in the configured
  memory.
* :class:`SimulationError` — runtime failures of the trace-driven simulator.
* :class:`OptimizationError` — failures inside placement algorithms.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """An invalid device or model configuration was supplied."""


class TraceError(ReproError, ValueError):
    """An access trace (or trace file) is malformed."""


class PlacementError(ReproError, ValueError):
    """A data placement is structurally invalid.

    Raised for overlapping slots, out-of-range offsets, unknown items, or
    missing placements for items referenced by a trace.
    """


class CapacityError(PlacementError):
    """The items of a problem exceed the capacity of the configured memory."""


class SimulationError(ReproError, RuntimeError):
    """The trace-driven simulator encountered an inconsistent state."""


class OptimizationError(ReproError, RuntimeError):
    """A placement algorithm failed or was asked for an unsupported mode."""
