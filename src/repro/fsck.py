"""Verify and repair persisted artifacts (``repro fsck``).

Three artifact families survive a run: packed binary traces (``.rtb``),
result-cache shards, and checkpoint journals.  All three are written
crash-safely (atomic writes, append-with-flush), but external corruption
— a died-mid-``pack`` process, a truncating filesystem, bit rot, a chaos
soak — still produces torn files.  This module is the offline
doctor: :func:`fsck_path` classifies an artifact, reports exactly what is
wrong (reusing the byte-offset forensics carried by
:class:`~repro.errors.TraceFormatError`), and optionally repairs it.

Repair semantics per family:

* **Binary traces** — salvage the longest valid record prefix.  Three
  torn shapes exist (records are written first, meta second, the header
  is patched last — see :mod:`repro.trace.binio`):

  1. *All-zero header*: ``pack()`` died before patching.  The record
     count is unknown (trailing zero bytes are valid records), item names
     are gone — unrecoverable, reported as such.
  2. *Valid header, file truncated inside the records*: the meta block —
     and with it every item name — is lost.  The intact leading records
     are rewritten with placeholder names (``item00000``, …); access
     *structure* survives even though names do not.
  3. *Valid header, truncated inside the meta block*: all records are
     intact.  The item-name prefix is recovered from the partial JSON;
     because items are indexed in first-touch order, the longest record
     prefix referencing only recovered names is exact — real names, real
     kinds, byte-identical to the same prefix of the original.

  Salvaged output is re-packed (fresh fingerprint, valid by
  construction) to ``<name>.salvaged.rtb`` — or over the original with
  ``repair=True`` — with ``metadata["salvaged"]`` recording provenance.

* **Cache shards** — a shard that fails to parse is quarantined
  (``*.corrupt``), exactly as a live lookup would; stray ``*.tmp`` files
  (none should survive :func:`repro.util.atomic_write`) are removed.
  Quarantined entries need no further repair: the cache recomputes.

* **Checkpoint journals** — torn trailing bytes after the last fully
  valid line are truncated away (the same salvage a ``resume=True`` open
  performs), preserving every intact record.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import TraceFormatError
from repro.trace.binio import (
    _ITEM_MASK,
    _WRITE_BIT,
    BINARY_SUFFIX,
    HEADER_SIZE,
    MAGIC,
    _HEADER_STRUCT,
    pack,
)
from repro.util import TMP_SUFFIX

__all__ = [
    "FsckReport",
    "fsck_cache",
    "fsck_journal",
    "fsck_path",
    "fsck_rtb",
]


@dataclass
class FsckReport:
    """Outcome of checking (and maybe repairing) one artifact.

    ``status`` is one of ``"ok"`` (intact), ``"repaired"`` (damage found
    and fixed/salvaged), ``"salvageable"`` (damage found, ``repair`` was
    off), or ``"unrecoverable"`` (nothing usable remains).
    """

    path: str
    kind: str
    status: str
    detail: str = ""
    salvaged_records: int = 0
    salvaged_path: str | None = None
    actions: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "repaired")

    def to_json(self) -> dict:
        payload = {
            "path": self.path,
            "kind": self.kind,
            "status": self.status,
            "detail": self.detail,
            "actions": list(self.actions),
        }
        if self.salvaged_records:
            payload["salvaged_records"] = self.salvaged_records
        if self.salvaged_path:
            payload["salvaged_path"] = self.salvaged_path
        return payload

    def render(self) -> str:
        line = f"{self.path}: {self.kind} {self.status}"
        if self.detail:
            line += f" — {self.detail}"
        for action in self.actions:
            line += f"\n  * {action}"
        return line


# ---------------------------------------------------------------------------
# Binary traces
# ---------------------------------------------------------------------------

def _recover_item_prefix(raw_meta: bytes) -> list[str]:
    """Longest recoverable prefix of the ``items`` array in torn JSON.

    The meta block is ``{"name": ..., "metadata": ..., "items": [...]}``;
    a truncation mid-array leaves a parseable prefix of complete string
    elements.  Parsing the fragment with :func:`json.JSONDecoder.raw_decode`
    element by element recovers every fully written name.
    """
    try:
        text = raw_meta.decode("utf-8", errors="ignore")
    except Exception:  # pragma: no cover - decode with ignore cannot fail
        return []
    marker = '"items"'
    start = text.find(marker)
    if start < 0:
        return []
    bracket = text.find("[", start)
    if bracket < 0:
        return []
    decoder = json.JSONDecoder()
    items: list[str] = []
    position = bracket + 1
    while True:
        while position < len(text) and text[position] in ", \t\r\n":
            position += 1
        if position >= len(text) or text[position] == "]":
            break
        try:
            value, end = decoder.raw_decode(text, position)
        except ValueError:
            break
        if not isinstance(value, str):
            break
        items.append(value)
        position = end
    return items


def _iter_records(data: bytes):
    """Decode raw record words into ``(item_index, kind)`` pairs."""
    for offset in range(0, len(data) - len(data) % 4, 4):
        word = int.from_bytes(data[offset : offset + 4], "little")
        yield word & _ITEM_MASK, "W" if word & _WRITE_BIT else "R"


def fsck_rtb(path: str | Path, *, repair: bool = False) -> FsckReport:
    """Check one binary trace; salvage the longest valid prefix if torn.

    Without ``repair`` the salvaged trace is written next to the original
    as ``<name>.salvaged.rtb`` (the damaged original is evidence and is
    left untouched); with ``repair`` the original is replaced.
    """
    path = Path(path)
    report = FsckReport(path=str(path), kind="rtb", status="ok")
    from repro.trace.binio import open_binary

    try:
        trace = open_binary(path)
        # Force a full record decode so torn record bytes surface too.
        trace.read_write_counts()
        report.detail = (
            f"{len(trace)} accesses, {trace.num_items} items, "
            f"fingerprint {trace.fingerprint()[:12]}…"
        )
        return report
    except TraceFormatError as exc:
        report.status = "salvageable"
        report.detail = str(exc)
        format_error = exc
    except Exception as exc:  # noqa: BLE001 - any read failure is damage
        report.status = "salvageable"
        report.detail = f"{type(exc).__name__}: {exc}"
        format_error = None

    try:
        raw = path.read_bytes()
    except OSError as exc:
        report.status = "unrecoverable"
        report.actions.append(f"cannot read file: {exc}")
        return report
    size = len(raw)

    if size < HEADER_SIZE or raw[:HEADER_SIZE] == b"\x00" * HEADER_SIZE:
        # Shape 1: pack() never patched the header.  Record count and item
        # names are both unknown — zero words are themselves valid records,
        # so even the record boundary is ambiguous.  Nothing to salvage.
        report.status = "unrecoverable"
        report.actions.append(
            "header missing or all-zero (pack() died before finishing); "
            "records are indistinguishable from padding — re-pack from "
            "the source trace"
        )
        return report

    try:
        magic, version, _flags, num_accesses, num_items, records_offset, \
            meta_offset, meta_size, _fp = _HEADER_STRUCT.unpack(
                raw[: _HEADER_STRUCT.size]
            )
    except Exception:  # pragma: no cover - HEADER_SIZE bytes always unpack
        report.status = "unrecoverable"
        return report
    if magic != MAGIC or version != 1 or records_offset != HEADER_SIZE:
        report.status = "unrecoverable"
        report.actions.append(
            "header is present but invalid (bad magic/version/layout); "
            "not salvageable without the original format"
        )
        return report

    records_end = records_offset + 4 * num_accesses
    record_bytes = raw[records_offset : min(records_end, size)]
    available = len(record_bytes) // 4

    if records_end > size:
        # Shape 2: truncated inside the records; the meta block (item
        # names) is gone.  Salvage structure under placeholder names.
        items = [f"item{i:05d}" for i in range(num_items)]
        salvage_count = available
        note = (
            f"meta block lost; {salvage_count} of {num_accesses} records "
            f"salvaged under placeholder item names"
        )
    else:
        # Shape 3: records intact, truncated inside the meta block.
        # Recover the item-name prefix; items are first-touch ordered, so
        # the record prefix referencing only recovered names is exact.
        raw_meta = raw[meta_offset : min(meta_offset + meta_size, size)]
        recovered = _recover_item_prefix(raw_meta)
        if len(recovered) >= num_items:
            recovered = recovered[:num_items]
            items = recovered
            salvage_count = available
            note = f"meta tail lost but all {num_items} item names recovered"
        elif recovered:
            items = recovered
            known = len(recovered)
            salvage_count = 0
            for index, (item_index, _kind) in enumerate(
                _iter_records(record_bytes)
            ):
                if item_index >= known:
                    break
                salvage_count = index + 1
            note = (
                f"{known} of {num_items} item names recovered; "
                f"{salvage_count} of {num_accesses} records reference "
                f"only those and are salvaged exactly"
            )
        else:
            items = [f"item{i:05d}" for i in range(num_items)]
            salvage_count = available
            note = (
                f"no item names recovered; {salvage_count} records "
                f"salvaged under placeholder item names"
            )

    if salvage_count == 0:
        report.status = "unrecoverable"
        report.actions.append(note)
        report.actions.append("no leading records are salvageable")
        return report

    salvaged = []
    for index, (item_index, kind) in enumerate(_iter_records(record_bytes)):
        if index >= salvage_count:
            break
        if item_index >= len(items):  # pragma: no cover - defensive
            break
        salvaged.append((items[item_index], kind))

    target = path if repair else path.with_suffix(f".salvaged{BINARY_SUFFIX}")
    written = pack(
        salvaged,
        target,
        name=f"{path.stem}|salvaged",
        metadata={
            "salvaged": True,
            "salvaged_from": str(path),
            "original_records": int(num_accesses),
            "salvaged_records": int(len(salvaged)),
        },
    )
    # Verify-only runs still get the side-car salvage file (it is cheap
    # and non-destructive), but the artifact itself stays damaged, so the
    # status — and the exit code — says "salvageable" until --repair.
    report.status = "repaired" if repair else "salvageable"
    report.salvaged_records = written
    report.salvaged_path = str(target)
    report.actions.append(note)
    report.actions.append(
        f"wrote {written} salvaged records to {target}"
        + (" (replaced original)" if repair else "")
    )
    return report


# ---------------------------------------------------------------------------
# Cache directories
# ---------------------------------------------------------------------------

def fsck_cache(root: str | Path, *, repair: bool = False) -> FsckReport:
    """Check a result-cache directory: parse shards, sweep strays.

    Corrupt shards are quarantined (with ``repair=True``) exactly as a
    live lookup would — renamed ``*.corrupt`` so the key recomputes; stray
    temp files are removed.  Without ``repair`` problems are only listed.
    """
    root = Path(root)
    report = FsckReport(path=str(root), kind="cache", status="ok")
    if not root.is_dir():
        report.status = "unrecoverable"
        report.detail = "not a directory"
        return report
    good = 0
    bad = 0
    for shard in sorted(root.glob("??/*.json")):
        try:
            with open(shard, "r", encoding="utf-8") as handle:
                json.load(handle)
            good += 1
        except ValueError:
            bad += 1
            if repair:
                try:
                    shard.replace(shard.with_suffix(".corrupt"))
                    report.actions.append(f"quarantined {shard.name}")
                except OSError as exc:
                    report.actions.append(
                        f"cannot quarantine {shard.name}: {exc}"
                    )
            else:
                report.actions.append(f"corrupt shard {shard.name}")
        except OSError as exc:
            bad += 1
            report.actions.append(f"unreadable shard {shard.name}: {exc}")
    strays = sorted(root.glob(f"**/*{TMP_SUFFIX}"))
    for stray in strays:
        if repair:
            try:
                stray.unlink()
                report.actions.append(f"removed stray temp {stray.name}")
            except OSError as exc:
                report.actions.append(f"cannot remove {stray.name}: {exc}")
        else:
            report.actions.append(f"stray temp file {stray.name}")
    quarantined = sum(1 for _ in root.glob("??/*.corrupt"))
    report.detail = (
        f"{good} shard(s) ok, {bad} corrupt/unreadable, "
        f"{len(strays)} stray temp(s), {quarantined} quarantined"
    )
    if bad or strays:
        report.status = "repaired" if repair else "salvageable"
    return report


# ---------------------------------------------------------------------------
# Checkpoint journals
# ---------------------------------------------------------------------------

def fsck_journal(path: str | Path, *, repair: bool = False) -> FsckReport:
    """Check one checkpoint journal; truncate a torn tail if asked.

    Reuses :func:`repro.analysis.checkpoint.scan_journal` — the same
    byte-offset salvage a ``resume=True`` open performs.
    """
    from repro.analysis.checkpoint import scan_journal

    path = Path(path)
    report = FsckReport(path=str(path), kind="journal", status="ok")
    if not path.is_file():
        report.status = "unrecoverable"
        report.detail = "no such file"
        return report
    entries, good_offset, corrupt = scan_journal(path)
    size = path.stat().st_size
    torn = size - good_offset
    report.detail = (
        f"{len(entries)} entries, {corrupt} corrupt line(s), "
        f"{torn} torn trailing byte(s)"
    )
    report.salvaged_records = len(entries)
    if torn <= 0:
        if corrupt:
            report.status = "salvageable"
            report.actions.append(
                f"{corrupt} corrupt interior line(s) are skipped on load; "
                "entries after them are intact"
            )
        return report
    if repair:
        with open(path, "r+b") as handle:
            handle.truncate(good_offset)
        report.status = "repaired"
        report.actions.append(
            f"truncated {torn} torn byte(s); journal now ends on a "
            "record boundary"
        )
    else:
        report.status = "salvageable"
        report.actions.append(
            f"{torn} torn byte(s) after the last valid record "
            "(resume would truncate them; --repair does it now)"
        )
    return report


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

def fsck_path(path: str | Path, *, repair: bool = False) -> FsckReport:
    """Classify ``path`` by shape and run the matching checker.

    ``.rtb`` files go to :func:`fsck_rtb`, directories to
    :func:`fsck_cache`, anything else line-oriented to
    :func:`fsck_journal`.
    """
    path = Path(path)
    if path.is_dir():
        return fsck_cache(path, repair=repair)
    if path.suffix == BINARY_SUFFIX or path.name.endswith(
        f".salvaged{BINARY_SUFFIX}"
    ):
        return fsck_rtb(path, repair=repair)
    return fsck_journal(path, repair=repair)
