"""repro — reproduction of "Optimizing Data Placement for Reducing Shift
Operations on Domain Wall Memories" (Chen, Sha, Zhuge, Dai, Jiang — DAC 2015).

The package builds, from scratch, everything the paper's evaluation needs:

* :mod:`repro.dwm` — racetrack/DWM device model (tapes, DBCs, ports, shift
  controller semantics, energy/latency models).
* :mod:`repro.trace` — access-trace substrate: trace model, statistics,
  synthetic generators, and instrumented benchmark kernels standing in for
  the paper's DSPstone/MiBench traces.
* :mod:`repro.memory` — trace-driven DWM scratchpad simulator plus an SRAM
  comparator.
* :mod:`repro.core` — the paper's contribution: shift-minimizing data
  placement (baselines, the grouping+ordering heuristic, exact search for
  small instances, local search, spectral comparator).
* :mod:`repro.analysis` — metrics, report rendering, and the experiment
  harness that regenerates every evaluation artifact (E1–E10).

Quickstart
----------
>>> from repro import optimize_placement, simulate_placement
>>> from repro.trace import kernels
>>> trace = kernels.fir_trace()
>>> result = optimize_placement(trace, method="heuristic")
>>> baseline = optimize_placement(trace, method="declaration")
>>> result.total_shifts < baseline.total_shifts
True
"""

from repro.core import (
    ALGORITHMS,
    Placement,
    PlacementProblem,
    PlacementResult,
    Slot,
    build_problem,
    compare_methods,
    evaluate_placement,
    heuristic_placement,
    optimize_placement,
)
from repro.dwm import DWMConfig, DWMEnergyModel, PortPolicy, SRAMEnergyModel
from repro.errors import (
    CapacityError,
    ConfigError,
    OptimizationError,
    PlacementError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.memory import (
    ScratchpadMemory,
    SimulationResult,
    SRAMScratchpad,
    simulate_placement,
)
from repro.trace import AccessTrace, benchmark_suite

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AccessTrace",
    "CapacityError",
    "ConfigError",
    "DWMConfig",
    "DWMEnergyModel",
    "OptimizationError",
    "Placement",
    "PlacementError",
    "PlacementProblem",
    "PlacementResult",
    "PortPolicy",
    "ReproError",
    "SRAMEnergyModel",
    "SRAMScratchpad",
    "ScratchpadMemory",
    "SimulationError",
    "SimulationResult",
    "Slot",
    "TraceError",
    "benchmark_suite",
    "build_problem",
    "compare_methods",
    "evaluate_placement",
    "heuristic_placement",
    "optimize_placement",
    "simulate_placement",
    "__version__",
]
