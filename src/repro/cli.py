"""Command-line interface for the repro toolkit.

Subcommands mirror the library workflow:

* ``repro trace generate`` — produce a trace from a benchmark kernel or a
  synthetic generator and write it to ``.jsonl``/``.trc``.
* ``repro trace info`` — print the statistics row (the E1 columns) of a
  trace file.
* ``repro trace pack`` — convert a text trace to the memory-mapped binary
  format (``.rtb``) consumed by the out-of-core streaming engine.
* ``repro place`` — optimize a placement for a trace file and emit it as
  JSON (consumable by an SPM allocator / linker script).
* ``repro simulate`` — run a trace against a placement on the device model
  and print the shift/latency/energy report.
* ``repro experiments`` — regenerate evaluation artifacts (E1–E14).
* ``repro cache`` — inspect or clear the persistent placement-result cache.
* ``repro bench`` — normalize benchmark artifacts into run manifests and
  diff two of them with the regression gate (``repro bench compare``).
* ``repro obs`` — dump the live observability state (metric snapshot,
  span trees) or pretty-print a saved run manifest.

All geometry flags default to the library defaults (64-word DBCs, one
centred port, lazy shifting).  The heavy subcommands (``experiments``,
``dse``) accept ``--jobs N`` to fan work out over a process pool (also via
the ``REPRO_JOBS`` env var) and use the persistent result cache by default
(``--no-cache`` to disable, ``--cache-dir`` / ``REPRO_CACHE_DIR`` to
relocate it).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.analysis.cache import ResultCache, cache_scope
from repro.util import atomic_write_text
from repro.analysis.experiments import EXPERIMENTS, run_experiments
from repro.analysis.report import format_table
from repro.core.api import ALGORITHMS, optimize_placement
from repro.core.placement import Placement, Slot
from repro.dwm.config import DWMConfig
from repro.dwm.energy import DWMEnergyModel
from repro.errors import ReproError
from repro.memory.spm import ScratchpadMemory
from repro.trace import io as trace_io
from repro.trace.kernels import KERNELS
from repro.trace.stats import compute_stats, shift_locality_score
from repro.trace.synthetic import GENERATORS


def _config_from_args(args, num_items: int) -> DWMConfig:
    """Build the array geometry requested on the command line."""
    if args.num_dbcs is not None:
        return DWMConfig.with_uniform_ports(
            words_per_dbc=args.words_per_dbc,
            num_dbcs=args.num_dbcs,
            num_ports=args.ports,
            port_policy=args.policy,
        )
    return DWMConfig.for_items(
        num_items,
        words_per_dbc=args.words_per_dbc,
        num_ports=args.ports,
        port_policy=args.policy,
    )


def _add_perf_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the heavy subcommands (experiments, dse)."""
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: REPRO_JOBS env var, else serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent placement-result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache location (default: REPRO_CACHE_DIR or ~/.cache/repro-dwm)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="kill and retry any single task exceeding this wall-clock budget",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry attempts per failed/timed-out task (default: 0)",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="journal completed tasks to FILE (JSONL) as they finish",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="restore completed tasks from --checkpoint instead of rerunning",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a run manifest (metric snapshot + span trees) to PATH",
    )


def _journal_from_args(args):
    """Open the checkpoint journal requested by --checkpoint/--resume."""
    from repro.analysis.checkpoint import CheckpointJournal

    if args.resume and not args.checkpoint:
        raise ReproError("--resume requires --checkpoint FILE")
    if not args.checkpoint:
        return None
    journal = CheckpointJournal(args.checkpoint, resume=args.resume)
    if args.resume and journal.restored:
        print(
            f"resuming from {args.checkpoint}: "
            f"{journal.restored} completed task(s) restored"
            + (f", {journal.corrupt_lines} corrupt line(s) skipped"
               if journal.corrupt_lines else ""),
            file=sys.stderr,
        )
    return journal


def _write_metrics_manifest(args, kind: str, run_id: str) -> None:
    """Honour ``--metrics-out``: persist the run's observability snapshot."""
    if not getattr(args, "metrics_out", None):
        return
    import time

    from repro.obs import collect_manifest, write_manifest

    manifest = collect_manifest(kind, run_id, created_unix=time.time())
    write_manifest(manifest, args.metrics_out)
    print(f"wrote metrics manifest to {args.metrics_out}", file=sys.stderr)


def _report_failures(outputs, label: str) -> int:
    """Print any TaskFailure slots; returns how many there were."""
    from repro.analysis.parallel import TaskFailure

    failures = [o for o in outputs if isinstance(o, TaskFailure)]
    for failure in failures:
        print(
            f"error: {label} task #{failure.index} failed "
            f"({failure.kind} after {failure.attempts} attempt(s)): "
            f"{failure.error}",
            file=sys.stderr,
        )
    return len(failures)


def _add_geometry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--words-per-dbc", type=int, default=64, metavar="L",
        help="words per domain block cluster (default: 64)",
    )
    parser.add_argument(
        "--ports", type=int, default=1, metavar="P",
        help="access ports per DBC, evenly spaced (default: 1)",
    )
    parser.add_argument(
        "--num-dbcs", type=int, default=None, metavar="N",
        help="DBC count (default: smallest that fits the trace)",
    )
    parser.add_argument(
        "--policy", choices=("lazy", "eager"), default="lazy",
        help="shift policy between accesses (default: lazy)",
    )


def _load_trace_arg(path: str | Path):
    """Load a trace file of any supported format.

    ``.rtb`` opens as an out-of-core :class:`repro.trace.binio.StreamingTrace`
    (nothing materialised); ``.jsonl``/``.trc`` load in memory.
    """
    from repro.trace import binio

    if Path(path).suffix == binio.BINARY_SUFFIX:
        return binio.open_binary(path)
    return trace_io.load(path)


# ---------------------------------------------------------------------------
# trace generate / trace info / trace pack
# ---------------------------------------------------------------------------

def cmd_trace_generate(args) -> int:
    source = args.source
    if source in KERNELS:
        trace = KERNELS[source](seed=args.seed) if args.seed is not None else KERNELS[source]()
    elif source in GENERATORS:
        if source in ("loop_nest", "pingpong", "stencil"):
            trace = GENERATORS[source](seed=args.seed or 0)
        else:
            trace = GENERATORS[source](
                args.items, args.accesses, seed=args.seed or 0
            )
    else:
        known = sorted(KERNELS) + sorted(GENERATORS)
        print(f"error: unknown source {source!r}; choose from: {', '.join(known)}",
              file=sys.stderr)
        return 2
    # Kernel metadata may hold non-serialisable results; IO drops those.
    trace_io.save(trace, args.output)
    print(f"wrote {len(trace)} accesses ({trace.num_items} items) to {args.output}")
    return 0


def cmd_trace_pack(args) -> int:
    """Convert a text trace into the binary streaming format."""
    from repro.trace import binio

    header = trace_io.peek_header(args.trace)
    count = binio.pack(
        trace_io.iter_accesses(args.trace),
        args.output,
        name=args.name or header["name"],
        metadata=header["metadata"],
    )
    size = Path(args.output).stat().st_size
    print(
        f"packed {count} accesses into {args.output} "
        f"({size / 1024:.1f} KiB, {4} bytes/access + header/meta)"
    )
    return 0


def cmd_trace_info(args) -> int:
    trace = _load_trace_arg(args.trace)
    from repro.trace.binio import StreamingTrace

    if isinstance(trace, StreamingTrace):
        # Header/meta only plus one bounded-memory pass for the R/W split;
        # the affinity statistics would materialise the trace.
        reads, writes = trace.read_write_counts()
        total = len(trace)
        rows = [
            ("name", trace.name),
            ("accesses", total),
            ("items", trace.num_items),
            ("reads", reads),
            ("writes", writes),
            ("write fraction", f"{writes / total:.3f}" if total else "n/a"),
            ("fingerprint", trace.fingerprint()[:16] + "…"),
            ("file size (KiB)", f"{trace.path.stat().st_size / 1024:.1f}"),
        ]
        print(
            format_table(
                ("metric", "value"), rows, title=f"binary trace {args.trace}"
            )
        )
        return 0
    stats = compute_stats(trace)
    rows = [
        ("name", stats.name),
        ("accesses", stats.num_accesses),
        ("items", stats.num_items),
        ("reads", stats.reads),
        ("writes", stats.writes),
        ("write fraction", f"{stats.write_fraction:.3f}"),
        ("mean reuse distance", f"{stats.mean_reuse_distance:.2f}"),
        ("unique affinity pairs", stats.unique_pairs),
        ("hottest item", f"{stats.top_item} ({stats.max_item_frequency})"),
        ("locality score", f"{shift_locality_score(trace):.3f}"),
    ]
    print(format_table(("metric", "value"), rows, title=f"trace {args.trace}"))
    return 0


# ---------------------------------------------------------------------------
# place
# ---------------------------------------------------------------------------

def cmd_place(args) -> int:
    trace = _load_trace_arg(args.trace)
    config = _config_from_args(args, trace.num_items)
    if args.export_ilp:
        from repro.core.ilp import build_minla_ilp
        from repro.trace.stats import affinity_graph
        from repro.trace.binio import StreamingTrace

        if isinstance(trace, StreamingTrace):
            raise ReproError(
                "--export-ilp needs an in-memory trace; pass the original "
                ".jsonl/.trc file (the affinity graph materialises every "
                "access)"
            )

        model = build_minla_ilp(list(trace.items), affinity_graph(trace))
        atomic_write_text(args.export_ilp, model.to_lp_format())
        print(f"wrote ILP ({len(model.variables)} vars, "
              f"{len(model.constraints)} constraints) to {args.export_ilp}",
              file=sys.stderr)
    result = optimize_placement(trace, config, method=args.method)
    baseline = optimize_placement(trace, config, method="declaration")
    payload = {
        "trace": trace.name,
        "method": args.method,
        "config": {
            "words_per_dbc": config.words_per_dbc,
            "num_dbcs": config.num_dbcs,
            "port_offsets": list(config.port_offsets),
            "port_policy": config.port_policy.value,
        },
        "total_shifts": result.total_shifts,
        "baseline_shifts": baseline.total_shifts,
        "placement": {
            item: {"dbc": slot.dbc, "offset": slot.offset}
            for item, slot in sorted(result.placement.items())
        },
    }
    text = json.dumps(payload, indent=2)
    if args.output:
        atomic_write_text(args.output, text + "\n")
        print(f"wrote placement to {args.output}")
    else:
        print(text)
    reduction = (
        100.0 * (baseline.total_shifts - result.total_shifts)
        / baseline.total_shifts
        if baseline.total_shifts
        else 0.0
    )
    print(
        f"# {args.method}: {result.total_shifts} shifts "
        f"({reduction:+.1f}% vs declaration), "
        f"{result.runtime_seconds * 1e3:.1f} ms",
        file=sys.stderr,
    )
    return 0


# ---------------------------------------------------------------------------
# simulate
# ---------------------------------------------------------------------------

def load_placement_json(path: str | Path) -> tuple[Placement, DWMConfig]:
    """Read a placement JSON produced by ``repro place``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    config_dict = payload["config"]
    config = DWMConfig(
        words_per_dbc=config_dict["words_per_dbc"],
        num_dbcs=config_dict["num_dbcs"],
        port_offsets=tuple(config_dict["port_offsets"]),
        port_policy=config_dict.get("port_policy", "lazy"),
    )
    placement = Placement(
        {
            item: Slot(slot["dbc"], slot["offset"])
            for item, slot in payload["placement"].items()
        }
    )
    return placement, config


def cmd_simulate(args) -> int:
    trace = _load_trace_arg(args.trace)
    placement, config = load_placement_json(args.placement)
    spm = ScratchpadMemory(config, placement)
    sim = spm.simulate(
        trace,
        engine=args.engine,
        chunk_size=args.chunk_size,
        jobs=args.jobs,
    )
    breakdown = sim.energy(DWMEnergyModel())
    rows = [
        ("config", config.describe()),
        ("engine", sim.details.get("engine", args.engine)),
        ("accesses", sim.accesses),
        ("shifts", sim.shifts),
        ("shifts/access", f"{sim.shifts_per_access:.3f}"),
        ("max shifts in one access", sim.max_access_shifts),
        ("latency (ns)", f"{breakdown.latency_ns:.1f}"),
        ("shift latency share", f"{breakdown.shift_latency_share:.1%}"),
        ("dynamic energy (pJ)", f"{breakdown.dynamic_energy_pj:.1f}"),
        ("total energy (pJ)", f"{breakdown.total_energy_pj:.1f}"),
    ]
    print(format_table(("metric", "value"), rows,
                       title=f"simulation of {trace.name}"))
    return 0


# ---------------------------------------------------------------------------
# experiments
# ---------------------------------------------------------------------------

def cmd_experiments(args) -> int:
    targets = args.ids or ["all"]
    if targets == ["all"]:
        targets = list(EXPERIMENTS)
    sections: list[str] = []
    journal = _journal_from_args(args)
    try:
        with cache_scope(enabled=not args.no_cache, root=args.cache_dir):
            outputs = run_experiments(
                targets,
                jobs=args.jobs,
                timeout=args.task_timeout,
                retries=args.retries,
                checkpoint=journal,
            )
    finally:
        if journal is not None:
            journal.close()
    failed = _report_failures(outputs, "experiment")
    from repro.analysis.parallel import TaskFailure

    outputs = [o for o in outputs if not isinstance(o, TaskFailure)]
    for output in outputs:
        print(output.rendered)
        print()
        sections.append(
            f"## {output.experiment_id.upper()} — {output.title}\n\n"
            f"```\n{output.rendered}\n```\n"
        )
    if args.output:
        report = (
            "# repro — experiment report\n\n"
            "Regenerated by `repro experiments`.\n\n" + "\n".join(sections)
        )
        atomic_write_text(args.output, report)
        print(f"wrote report to {args.output}", file=sys.stderr)
    _write_metrics_manifest(args, "experiments", ",".join(targets))
    return 1 if failed else 0


def cmd_dse(args) -> int:
    """Design-space exploration with Pareto filtering."""
    from repro.analysis.dse import explore, knee_point, pareto_front, render_front

    trace = trace_io.load(args.trace)
    lengths = [int(v) for v in args.lengths.split(",")]
    ports = [int(v) for v in args.port_counts.split(",")]
    journal = _journal_from_args(args)
    try:
        with cache_scope(enabled=not args.no_cache, root=args.cache_dir):
            points = explore(
                trace, lengths=lengths, ports=ports, method=args.method,
                jobs=args.jobs,
                timeout=args.task_timeout,
                retries=args.retries,
                checkpoint=journal,
            )
    finally:
        if journal is not None:
            journal.close()
    failed = _report_failures(points, "design point")
    from repro.analysis.parallel import TaskFailure

    points = [p for p in points if not isinstance(p, TaskFailure)]
    if not points:
        print("error: every design point failed", file=sys.stderr)
        return 1
    front = pareto_front(points)
    print(render_front(points, front))
    print(f"\nbalanced (knee) design: {knee_point(front).label}")
    _write_metrics_manifest(args, "dse", trace.name)
    return 1 if failed else 0


def cmd_cache(args) -> int:
    """Inspect or clear the persistent placement-result cache."""
    cache = ResultCache(args.cache_dir)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    entries = len(cache)
    rows = [
        ("location", str(cache.root)),
        ("entries", entries),
        ("corrupt (quarantined)", cache.corrupt_count()),
        ("size (KiB)", f"{cache.size_bytes() / 1024:.1f}"),
    ]
    print(format_table(("field", "value"), rows, title="placement-result cache"))
    return 0


def cmd_bench(args) -> int:
    """Normalize benchmark artifacts / run the regression comparison gate."""
    from repro.analysis.benchref import compare_files, normalize, source_from_path

    if args.bench_command == "normalize":
        try:
            payload = json.loads(Path(args.file).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ReproError(f"{args.file}: not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ReproError(f"{args.file}: expected a JSON object")
        if payload.get("manifest"):
            raise ReproError(f"{args.file}: already a run manifest")
        source = args.source or source_from_path(args.file)
        manifest = normalize(payload, source)
        text = manifest.to_json()
        if args.output:
            atomic_write_text(args.output, text + "\n")
            print(f"wrote manifest ({len(manifest.metrics)} metrics) "
                  f"to {args.output}", file=sys.stderr)
        else:
            print(text)
        return 0
    # compare
    overrides = {}
    for override in args.set or []:
        pattern, _, value = override.partition("=")
        if not pattern or not value:
            raise ReproError(
                f"--set expects METRIC_GLOB=PERCENT, got {override!r}"
            )
        try:
            overrides[pattern] = float(value) / 100.0
        except ValueError:
            raise ReproError(f"--set tolerance {value!r} is not a number")
    report = compare_files(
        args.baseline,
        args.candidate,
        default_tolerance=args.tolerance / 100.0,
        tolerances=overrides or None,
    )
    if args.json:
        print(json.dumps(
            {
                "baseline": args.baseline,
                "candidate": args.candidate,
                "ok": report.ok,
                "notes": report.notes,
                "regressions": [d.name for d in report.regressions],
                "deltas": [
                    {
                        "name": d.name,
                        "baseline": d.baseline,
                        "candidate": d.candidate,
                        "relative_change": d.relative_change,
                        "direction": d.direction,
                        "status": d.status,
                    }
                    for d in report.deltas
                ],
            },
            indent=2,
        ))
    else:
        print(report.render())
    if not report.ok:
        print(
            f"error: {len(report.regressions)} metric regression(s) vs "
            f"{args.baseline}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_obs(args) -> int:
    """Dump the live observability state or pretty-print a manifest file."""
    from repro.obs import (
        collect_manifest,
        get_tracer,
        read_manifest,
        render_spans,
    )

    if args.manifest:
        manifest = read_manifest(args.manifest)
        title = f"manifest {args.manifest}"
    else:
        manifest = collect_manifest("obs-dump", "live")
        title = "live observability snapshot"
    if args.json:
        print(manifest.to_json())
        return 0
    rows = [
        ("kind", manifest.kind),
        ("run id", manifest.run_id),
        ("schema version", manifest.schema_version),
        ("package version", manifest.package_version),
        ("git sha", manifest.git_sha),
        ("python", manifest.python_version),
        ("platform", manifest.platform),
        ("metrics", len(manifest.metrics)),
        ("spans", len(manifest.spans)),
    ]
    print(format_table(("field", "value"), rows, title=title))
    for name in sorted(manifest.metrics):
        print(f"  {name} = {manifest.metrics[name]}")
    if not args.manifest:
        spans = get_tracer().roots()
        if spans:
            print("\nspan trees:")
            print(render_spans(spans))
    return 0


def cmd_fuzz(args) -> int:
    """Run the differential conformance fuzzer across all cost engines."""
    from repro.obs import get_registry
    from repro.verify import run_fuzz

    report = run_fuzz(
        seed=args.seed,
        cases=args.cases,
        budget_seconds=args.budget_seconds,
        out=args.out,
        shrink=not args.no_shrink,
        brute_force_limit=args.brute_force_limit,
        progress=lambda message: print(f"  {message}"),
    )
    registry = get_registry()
    rows = [
        ("seed", report.seed),
        ("cases run", f"{report.cases_run}/{report.cases_requested}"),
        ("elapsed (s)", f"{report.elapsed_seconds:.1f}"),
        ("findings", len(report.findings)),
        ("cases/s", f"{report.cases_run / report.elapsed_seconds:.1f}"
         if report.elapsed_seconds else "n/a"),
        ("budget hit", "yes" if report.stopped_on_budget else "no"),
    ]
    print(format_table(("field", "value"), rows, title="conformance fuzz sweep"))
    if report.findings:
        print("\nviolations:")
        for finding in report.findings:
            print(f"  case {finding.index}: {', '.join(finding.kinds)}")
            print(f"    original: {finding.case.describe()}")
            print(f"    shrunk:   {finding.shrunk.describe()}")
        if report.artifact_paths:
            print("\nartifacts (JSON repro + regression snippet):")
            for path in report.artifact_paths:
                print(f"  {path}")
        print(
            "\npaste the artifact's `regression_test` into tests/ to pin "
            "the repro."
        )
        return 1
    checked = int(registry.counter_value("fuzz.cases"))
    print(f"\nall invariants held across {checked} case(s)")
    return 0


def cmd_kernels(args) -> int:
    """Report which compiled lazy-cost kernel backend is active and why."""
    from repro.core import kernels

    info = kernels.describe()
    if getattr(args, "json", False):
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    rows = [(key, str(value)) for key, value in sorted(info.items())]
    print(format_table(("field", "value"), rows, title="lazy-cost kernel backend"))
    return 0


def cmd_fsck(args) -> int:
    """Verify (and optionally repair) on-disk artifacts.

    Handles the three artifact families the toolkit persists: binary
    traces (``.rtb``), placement-cache directories, and checkpoint
    journals.  Exit code 0 means every artifact is healthy (or was
    repaired); 1 means at least one needs ``--repair`` or is beyond
    salvage.
    """
    from repro.fsck import fsck_path

    reports = [fsck_path(path, repair=args.repair) for path in args.paths]
    if args.json:
        print(json.dumps([r.to_json() for r in reports], indent=2,
                         sort_keys=True))
    else:
        for report in reports:
            print(report.render())
        if any(r.status == "salvageable" for r in reports) and not args.repair:
            print("# rerun with --repair to salvage", file=sys.stderr)
    return 0 if all(r.ok for r in reports) else 1


def cmd_chaos(args) -> int:
    """Chaos soak: randomized failpoint schedules over real workloads."""
    from repro.chaos.soak import run_soak

    def progress(message: str) -> None:
        print(message, file=sys.stderr)

    report = run_soak(
        seed=args.seed,
        schedules=args.schedules,
        workdir=args.workdir,
        out=args.out,
        progress=None if args.quiet else progress,
    )
    outcomes = ", ".join(
        f"{count} {name}" for name, count in sorted(report.outcome_counts().items())
    )
    repaired = sum(1 for entry in report.fsck if entry["ok"])
    print(
        f"chaos soak seed={report.seed}: {len(report.runs)} schedule(s) "
        f"({outcomes}); fsck repaired {repaired}/{len(report.fsck)} "
        f"artifact(s); {report.elapsed_seconds:.1f}s"
    )
    if report.degradations:
        for edge, count in sorted(report.degradations.items()):
            print(f"  degradation {edge}: {count}")
    if not report.ok:
        for run in report.runs:
            if not run.ok:
                print(
                    f"VIOLATION schedule {run.index}: {run.outcome} "
                    f"{run.error} leaks={run.leaks} spec={run.spec}",
                    file=sys.stderr,
                )
        for entry in report.fsck:
            if not entry["ok"]:
                print(
                    f"VIOLATION fsck {entry['artifact']}: {entry['status']} "
                    f"({entry['detail']})",
                    file=sys.stderr,
                )
        return 1
    return 0


def cmd_system(args) -> int:
    """Full-system comparison: all-DRAM vs SPM(oblivious) vs SPM(shift-aware)."""
    from repro.memory.hierarchy import system_comparison

    trace = trace_io.load(args.trace)
    capacity = max(
        args.words_per_dbc,
        int(trace.num_items * args.capacity_fraction),
    )
    num_dbcs = max(1, capacity // args.words_per_dbc)
    config = DWMConfig.with_uniform_ports(
        words_per_dbc=args.words_per_dbc,
        num_dbcs=num_dbcs,
        num_ports=args.ports,
    )
    results = system_comparison(trace, config)
    baseline = results["all_dram"]
    rows = [
        (
            label,
            result.total_cycles,
            f"{result.cycles_per_access:.2f}",
            f"{baseline.total_cycles / result.total_cycles:.2f}x",
            result.spm_accesses,
        )
        for label, result in results.items()
    ]
    print(
        format_table(
            ("configuration", "cycles", "cycles/access", "speedup", "SPM hits"),
            rows,
            title=(
                f"system study of {trace.name} "
                f"(SPM = {config.capacity_words} words)"
            ),
        )
    )
    return 0


def cmd_serve(args) -> int:
    """Run the long-lived placement/simulation service (docs/SERVING.md)."""
    import threading

    from repro.serve.server import PlacementServer, announce_payload

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    server = PlacementServer(
        cache=cache,
        host=args.host,
        port=args.port,
        pool_workers=args.pool_workers,
        rate=args.rate,
        burst=args.burst,
        max_queue=args.max_queue,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        spool_dir=args.spool_dir,
        log_path=args.log,
    )

    def _announce() -> None:
        try:
            server.wait_until_listening(timeout=30.0)
        except TimeoutError:  # pragma: no cover - startup failure path
            return
        # One machine-readable line so wrappers learn the bound port
        # (required when --port 0 asks the OS to pick a free one).
        print(json.dumps(announce_payload(server)), flush=True)

    threading.Thread(target=_announce, daemon=True).start()
    # Blocks until /v1/shutdown or a signal.  SIGTERM arrives here as
    # KeyboardInterrupt (handler installed in main()); the server tears
    # down pools/shm first, then main()'s interrupt path re-runs the same
    # idempotent cleanup and exits 130.
    server.run()
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DWM shift-minimizing data placement toolkit (DAC'15 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace_parser = sub.add_parser("trace", help="generate or inspect traces")
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)

    generate = trace_sub.add_parser("generate", help="produce a trace file")
    generate.add_argument("source", help="kernel or generator name")
    generate.add_argument("-o", "--output", required=True,
                          help="output path (.jsonl or .trc)")
    generate.add_argument("--items", type=int, default=32,
                          help="items for synthetic generators (default: 32)")
    generate.add_argument("--accesses", type=int, default=1000,
                          help="accesses for synthetic generators (default: 1000)")
    generate.add_argument("--seed", type=int, default=None)
    generate.set_defaults(func=cmd_trace_generate)

    info = trace_sub.add_parser("info", help="print trace statistics")
    info.add_argument("trace", help="trace file (.jsonl, .trc or .rtb)")
    info.set_defaults(func=cmd_trace_info)

    pack = trace_sub.add_parser(
        "pack",
        help="convert a text trace to the mmap binary format (.rtb) "
             "for out-of-core streaming simulation",
    )
    pack.add_argument("trace", help="input trace file (.jsonl or .trc)")
    pack.add_argument("output", help="output path (conventionally .rtb)")
    pack.add_argument("--name", default=None,
                      help="override the trace name recorded in the file")
    pack.set_defaults(func=cmd_trace_pack)

    place = sub.add_parser("place", help="optimize a placement for a trace")
    place.add_argument("trace",
                       help="trace file (.jsonl, .trc or .rtb; binary traces "
                            "are placed from a bounded-size sample)")
    place.add_argument("--method", default="heuristic",
                       choices=sorted(ALGORITHMS),
                       help="placement algorithm (default: heuristic)")
    place.add_argument("-o", "--output", default=None,
                       help="write placement JSON here (default: stdout)")
    place.add_argument("--export-ilp", default=None, metavar="FILE",
                       help="also export the single-DBC ILP in .lp format")
    _add_geometry_flags(place)
    place.set_defaults(func=cmd_place)

    simulate = sub.add_parser("simulate", help="simulate a trace on a placement")
    simulate.add_argument("trace", help="trace file (.jsonl, .trc or .rtb)")
    simulate.add_argument("placement", help="placement JSON from 'repro place'")
    simulate.add_argument(
        "--engine", default="auto",
        choices=("auto", "scalar", "vectorized", "streaming"),
        help="simulation engine (default: auto; .rtb traces stream)",
    )
    simulate.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="streaming window length in accesses "
             "(default: 262144; streaming engine only)",
    )
    simulate.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="scan streaming chunks in parallel on N pool workers",
    )
    simulate.set_defaults(func=cmd_simulate)

    experiments = sub.add_parser("experiments", help="regenerate evaluation artifacts")
    experiments.add_argument("ids", nargs="*",
                             help="experiment ids (e1..e21) or 'all'")
    experiments.add_argument("-o", "--output", default=None, metavar="FILE",
                             help="also write a markdown report")
    _add_perf_flags(experiments)
    experiments.set_defaults(func=cmd_experiments)

    dse = sub.add_parser(
        "dse", help="design-space exploration with Pareto filtering"
    )
    dse.add_argument("trace", help="trace file (.jsonl or .trc)")
    dse.add_argument("--lengths", default="16,32,64",
                     help="comma-separated DBC lengths (default: 16,32,64)")
    dse.add_argument("--port-counts", default="1,2,4",
                     help="comma-separated port counts (default: 1,2,4)")
    dse.add_argument("--method", default="heuristic",
                     choices=sorted(ALGORITHMS))
    _add_perf_flags(dse)
    dse.set_defaults(func=cmd_dse)

    cache = sub.add_parser(
        "cache", help="inspect or clear the placement-result cache"
    )
    cache.add_argument("cache_command", choices=("info", "clear"),
                       help="'info' prints location/size; 'clear' empties it")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache location (default: REPRO_CACHE_DIR "
                            "or ~/.cache/repro-dwm)")
    cache.set_defaults(func=cmd_cache)

    bench = sub.add_parser(
        "bench", help="normalize/compare benchmark artifacts (regression gate)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_normalize = bench_sub.add_parser(
        "normalize", help="convert a raw BENCH_*.json into a run manifest"
    )
    bench_normalize.add_argument("file", help="raw benchmark JSON artifact")
    bench_normalize.add_argument("-o", "--output", default=None,
                                 help="manifest path (default: stdout)")
    bench_normalize.add_argument("--source", default=None, metavar="ID",
                                 help="run id (default: from the filename)")
    bench_normalize.set_defaults(func=cmd_bench)

    bench_compare = bench_sub.add_parser(
        "compare",
        help="diff two benchmark artifacts; non-zero exit on regression",
    )
    bench_compare.add_argument("baseline",
                               help="baseline manifest or raw BENCH_*.json")
    bench_compare.add_argument("candidate",
                               help="candidate manifest or raw BENCH_*.json")
    bench_compare.add_argument(
        "--tolerance", type=float, default=10.0, metavar="PCT",
        help="relative tolerance (percent) for direction-gated metrics "
             "(default: 10; exactness metrics are always gated at 0)",
    )
    bench_compare.add_argument(
        "--set", action="append", default=None, metavar="GLOB=PCT",
        help="per-metric tolerance override (repeatable), e.g. "
             "--set 'cache.*_seconds=50'",
    )
    bench_compare.add_argument("--json", action="store_true",
                               help="emit the comparison as JSON")
    bench_compare.set_defaults(func=cmd_bench)

    obs = sub.add_parser(
        "obs", help="dump observability state or inspect a run manifest"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_dump = obs_sub.add_parser(
        "dump", help="print the metric snapshot / span trees / manifest"
    )
    obs_dump.add_argument("manifest", nargs="?", default=None,
                          help="manifest file (default: live process state)")
    obs_dump.add_argument("--json", action="store_true",
                          help="emit the manifest JSON instead of a table")
    obs_dump.set_defaults(func=cmd_obs)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential conformance fuzzer across the cost engines",
    )
    fuzz.add_argument("--seed", type=int, default=2015,
                      help="sweep seed; every case derives from it")
    fuzz.add_argument("--cases", type=int, default=200,
                      help="number of random cases to generate")
    fuzz.add_argument("--budget-seconds", type=float, default=None,
                      help="stop early after this much wall-clock time")
    fuzz.add_argument("--out", default=None, metavar="DIR",
                      help="directory for JSON repro artifacts")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report findings without minimizing them")
    fuzz.add_argument("--brute-force-limit", type=int, default=2000,
                      help="max injective assignments for the tiny-instance "
                           "optimum oracle")
    fuzz.set_defaults(func=cmd_fuzz)

    kernels = sub.add_parser(
        "kernels",
        help="show the active compiled lazy-cost kernel backend",
    )
    kernels.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON")
    kernels.set_defaults(func=cmd_kernels)

    system = sub.add_parser(
        "system", help="full-system study: all-DRAM vs SPM configurations"
    )
    system.add_argument("trace", help="trace file (.jsonl or .trc)")
    system.add_argument("--capacity-fraction", type=float, default=0.6,
                        help="SPM capacity as a fraction of the working set")
    system.add_argument("--words-per-dbc", type=int, default=16, metavar="L")
    system.add_argument("--ports", type=int, default=1, metavar="P")
    system.set_defaults(func=cmd_system)

    fsck = sub.add_parser(
        "fsck",
        help="verify/repair binary traces, cache dirs and checkpoint "
             "journals",
    )
    fsck.add_argument("paths", nargs="+", metavar="PATH",
                      help=".rtb file, cache directory, or journal file")
    fsck.add_argument("--repair", action="store_true",
                      help="salvage what the artifact still holds (torn "
                           "tails truncated, corrupt cache shards "
                           "quarantined, readable trace prefixes re-packed)")
    fsck.add_argument("--json", action="store_true",
                      help="emit machine-readable reports")
    fsck.set_defaults(func=cmd_fsck)

    chaos = sub.add_parser(
        "chaos", help="fault-injection tooling (see docs/CHAOS.md)"
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    soak = chaos_sub.add_parser(
        "soak",
        help="run workloads under randomized failpoint schedules and "
             "assert byte-identical results or typed clean aborts",
    )
    soak.add_argument("--seed", type=int, default=2015,
                      help="soak seed; every schedule derives from it")
    soak.add_argument("--schedules", type=int, default=25,
                      help="number of random failpoint schedules")
    soak.add_argument("--workdir", default=None, metavar="DIR",
                      help="keep run artifacts here (default: temp dir, "
                           "removed afterwards)")
    soak.add_argument("--out", default=None, metavar="FILE",
                      help="write the JSON soak report here")
    soak.add_argument("--quiet", action="store_true",
                      help="suppress per-schedule progress lines")
    soak.set_defaults(func=cmd_chaos)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived placement/simulation HTTP service "
             "(see docs/SERVING.md)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port; 0 picks a free one and announces "
                            "it on stdout (default: 0)")
    serve.add_argument("--pool-workers", type=int, default=0, metavar="N",
                       help="persistent worker-pool size for optimize jobs "
                            "(default: 0 = compute in-process)")
    serve.add_argument("--rate", type=float, default=None, metavar="R",
                       help="admission token-bucket rate, requests/second "
                            "(default: unlimited)")
    serve.add_argument("--burst", type=float, default=None, metavar="B",
                       help="token-bucket burst capacity (default: == rate)")
    serve.add_argument("--max-queue", type=int, default=64, metavar="N",
                       help="admitted-but-unfinished request bound; beyond "
                            "it requests shed with typed 503s (default: 64)")
    serve.add_argument("--batch-window", type=float, default=0.005,
                       metavar="SECONDS",
                       help="micro-batching window for coalescing compatible "
                            "simulate requests (default: 0.005)")
    serve.add_argument("--max-batch", type=int, default=64, metavar="N",
                       help="flush a batch immediately at this size "
                            "(default: 64)")
    serve.add_argument("--spool-dir", default=None, metavar="DIR",
                       help="directory for uploaded .rtb traces "
                            "(default: a temp dir, removed on shutdown)")
    serve.add_argument("--log", default=None, metavar="FILE",
                       help="append JSONL server events to FILE")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the content-keyed result cache")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache location (default: REPRO_CACHE_DIR or "
                            "~/.cache/repro-dwm)")
    serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro import robust
    from repro.chaos import ensure_installed_from_env

    # SIGTERM lands in the KeyboardInterrupt handler below, so a `kill`
    # (or a batch-scheduler timeout) gets the same journal-flush/pool/shm
    # teardown as Ctrl-C.  REPRO_CHAOS activates the failpoint plan for
    # this process and every pool worker it spawns.
    robust.install_sigterm_handler()
    try:
        ensure_installed_from_env()
        return args.func(args)
    except KeyboardInterrupt:
        # Flush any open checkpoint journals so an interrupted sweep can be
        # resumed with --resume, tear down the worker pools and any
        # shared-memory trace segments (no leaked /dev/shm blocks), then
        # exit with the conventional SIGINT code.
        from repro.analysis.checkpoint import flush_active_journals
        from repro.analysis.pool import shutdown_pools
        from repro.memory.shm import unlink_all

        flushed = flush_active_journals()
        shutdown_pools()
        unlinked = unlink_all()
        notes = []
        if flushed:
            notes.append(f"flushed {flushed} checkpoint journal(s)")
        if unlinked:
            notes.append(f"released {unlinked} shared-memory segment(s)")
        if notes:
            print(f"interrupted: {', '.join(notes)}", file=sys.stderr)
        else:
            print("interrupted", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream reader (e.g. ``| head``) closed early — not an error.
        # Detach stdout so the interpreter's shutdown flush can't re-raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except OSError as exc:
        # Covers FileNotFoundError as before, plus environmental failures
        # like ENOSPC (disk full): a typed one-line abort, not a traceback.
        # Atomic writes guarantee no partial artifact survives the failure.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
