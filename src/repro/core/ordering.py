"""Ordering phase: arrange a group's items along one DBC.

Given the items that share a DBC, the group's true shift cost (single port,
lazy policy) is the Minimum Linear Arrangement objective over the group's
**restricted affinity graph** — adjacency counts taken on the trace
*restricted to the group's items*, because only those accesses move this
DBC's head.  The ordering phase therefore:

1. restricts the trace to the group and rebuilds affinities,
2. grows a linear chain greedily (heaviest edge first, fragments merged at
   endpoints — the classic greedy-matching construction for MinLA/TSP-path),
3. anchors the chain so its access-weighted median sits on a port.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.placement import Placement, Slot
from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig
from repro.errors import OptimizationError
from repro.trace.model import AccessTrace
from repro.trace.stats import affinity_graph


def restricted_affinity(
    trace: AccessTrace, group: Sequence[str]
) -> dict[tuple[str, str], int]:
    """Affinity graph of the trace restricted to ``group``'s items."""
    return affinity_graph(trace.restricted_to(group))


def greedy_chain_order(
    items: Sequence[str],
    affinity: dict[tuple[str, str], int],
) -> list[str]:
    """Arrange ``items`` in a line by greedy heaviest-edge chain growing.

    Maintains path fragments; edges are processed by descending weight and
    accepted when they join two distinct fragment endpoints.  Remaining
    fragments (including affinity-free singletons) are concatenated by
    decreasing total access relevance so related runs stay together.
    """
    items = list(items)
    if len(set(items)) != len(items):
        raise OptimizationError("ordering input contains duplicate items")
    member = set(items)
    # Each item starts as its own fragment.
    fragment_of: dict[str, list[str]] = {item: [item] for item in items}
    edges = sorted(
        (
            (weight, left, right)
            for (left, right), weight in affinity.items()
            if left in member and right in member and left != right
        ),
        key=lambda entry: (-entry[0], entry[1], entry[2]),
    )
    for weight, left, right in edges:
        frag_left = fragment_of[left]
        frag_right = fragment_of[right]
        if frag_left is frag_right:
            continue  # would form a cycle
        # Only endpoints can be joined.
        if frag_left[0] != left and frag_left[-1] != left:
            continue
        if frag_right[0] != right and frag_right[-1] != right:
            continue
        if frag_left[-1] != left:
            frag_left.reverse()
        if frag_right[0] != right:
            frag_right.reverse()
        frag_left.extend(frag_right)
        for item in frag_right:
            fragment_of[item] = frag_left
    # Collect distinct fragments preserving first-appearance order.
    seen: set[int] = set()
    fragments: list[list[str]] = []
    for item in items:
        fragment = fragment_of[item]
        if id(fragment) not in seen:
            seen.add(id(fragment))
            fragments.append(fragment)
    order: list[str] = []
    for fragment in fragments:
        order.extend(fragment)
    return order


def weighted_median_index(
    order: Sequence[str], frequencies: dict[str, int]
) -> int:
    """Index of the access-weighted median element of ``order``.

    Anchoring this element on a port minimises the expected one-off approach
    distance, and under multi-port layouts keeps the hot centre of the chain
    in the cheapest region.
    """
    total = sum(frequencies.get(item, 0) for item in order)
    if total == 0:
        return len(order) // 2
    half = total / 2
    cumulative = 0
    for index, item in enumerate(order):
        cumulative += frequencies.get(item, 0)
        if cumulative >= half:
            return index
    return len(order) - 1


def anchored_offsets(
    order: Sequence[str],
    config: DWMConfig,
    frequencies: dict[str, int] | None = None,
) -> dict[str, int]:
    """Map each ordered item to a DBC offset, anchored on a port.

    The chain is placed contiguously with its weighted median as close to
    the first port as capacity allows.
    """
    length = config.words_per_dbc
    if len(order) > length:
        raise OptimizationError(
            f"group of {len(order)} items exceeds DBC capacity {length}"
        )
    frequencies = frequencies or {}
    median = weighted_median_index(order, frequencies)
    port = config.port_offsets[0]
    start = port - median
    start = max(0, min(length - len(order), start))
    return {item: start + index for index, item in enumerate(order)}


def proximity_offsets(
    group: Sequence[str],
    config: DWMConfig,
    frequencies: dict[str, int],
) -> dict[str, int]:
    """Hottest items at the offsets closest to a port (star-pattern layout).

    Optimal when one very hot item dominates transitions (accumulators,
    lookup tables): the hot centre sits on the port and satellites surround
    it by decreasing heat.
    """
    ranked = sorted(
        group, key=lambda item: (-frequencies.get(item, 0), item)
    )
    by_proximity = sorted(
        range(config.words_per_dbc),
        key=lambda offset: (
            min(abs(offset - port) for port in config.port_offsets),
            offset,
        ),
    )
    return {item: by_proximity[rank] for rank, item in enumerate(ranked)}


def restricted_sequence_cost(
    trace: AccessTrace,
    offsets: dict[str, int],
    config: DWMConfig,
) -> int:
    """Exact shift cost of one DBC given its restricted trace and offsets.

    Mirrors the single-DBC walk of the full evaluator; used to select the
    better of several candidate orders for the same group.
    """
    from repro.dwm.config import PortPolicy

    ports = config.port_offsets
    eager = config.port_policy is PortPolicy.EAGER
    head = 0
    total = 0
    for access in trace:
        offset = offsets.get(access.item)
        if offset is None:
            continue
        best_cost = None
        best_target = 0
        for port in ports:
            target = offset - port
            cost = abs(target - head)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_target = target
        if eager:
            total += 2 * min(abs(offset - port) for port in ports)
        else:
            total += best_cost
            head = best_target
    return total


def order_groups(
    problem: PlacementProblem,
    groups: Sequence[Sequence[str]],
) -> Placement:
    """Run the ordering phase on every group and assemble a placement.

    For each group two candidate layouts are generated — the greedy chain
    (anchored) and the port-proximity star — and the cheaper one is chosen
    by exact evaluation of the group's restricted subsequence (the per-DBC
    cost decomposition makes this selection globally exact).  Empty groups
    are skipped; group ``g`` lands on DBC ``g``.
    """
    frequencies = dict(problem.trace.frequencies())
    mapping: dict[str, Slot] = {}
    for dbc, group in enumerate(groups):
        group = list(group)
        if not group:
            continue
        if dbc >= problem.config.num_dbcs:
            raise OptimizationError(
                f"group index {dbc} exceeds array DBC count "
                f"{problem.config.num_dbcs}"
            )
        restricted = problem.trace.restricted_to(group)
        affinity = affinity_graph(restricted)
        chain_order = greedy_chain_order(group, affinity)
        first_touch_order = list(restricted.items)
        candidates = [
            anchored_offsets(chain_order, problem.config, frequencies),
            proximity_offsets(group, problem.config, frequencies),
            anchored_offsets(first_touch_order, problem.config, frequencies),
            {item: index for index, item in enumerate(first_touch_order)},
        ]
        best_offsets = None
        best_cost = None
        for offsets in candidates:
            cost = restricted_sequence_cost(restricted, offsets, problem.config)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_offsets = offsets
        assert best_offsets is not None
        for item, offset in best_offsets.items():
            mapping[item] = Slot(dbc, offset)
    return Placement(mapping)
