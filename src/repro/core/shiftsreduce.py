"""ShiftsReduce-style bidirectional placement (Khan et al., arXiv 1903.03597).

ShiftsReduce builds each DBC's layout *bidirectionally*: the item with the
highest total adjacency weight seeds the chain, and every later item is
attached to whichever end of the partial chain costs less, so hot items
cluster around the centre instead of drifting to one edge the way purely
left-to-right constructions do.  On the MinLA view of the single-port lazy
cost model (docs/COST_MODEL.md) the attachment rule below is the exact
greedy step: appending item ``x`` at the left end adds
``Σ_p w(x,p)·(pos(p) − left + 1)`` to the arrangement objective, and the
algorithm picks the cheaper end.

Multi-DBC instances reuse the repo's grouping portfolio (the grouping and
ordering phases decompose per DBC, see ``repro.core.heuristic``), with the
bidirectional construction replacing the ordering phase.  Selection keeps
the paper heuristic's placement in the candidate set, which makes
``shiftsreduce ≤ heuristic`` a structural guarantee — the same idiom that
makes ``heuristic ≤ declaration`` hold (its candidate set contains the
declaration layout).  Every tie-break is total (weights, then heat, then
first-touch rank), so the construction is byte-deterministic.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.cost import evaluate_placement
from repro.core.fast_eval import FAST_EVAL_MIN_ACCESSES, evaluate_placements_fast
from repro.core.grouping import greedy_min_affinity_grouping, refine_grouping
from repro.core.heuristic import (
    chain_and_cut_groups,
    declaration_block_groups,
    heuristic_placement,
    hot_spread_groups,
)
from repro.core.ordering import anchored_offsets, restricted_sequence_cost
from repro.core.placement import Placement, Slot
from repro.core.problem import PlacementProblem
from repro.errors import OptimizationError
from repro.trace.stats import affinity_graph

__all__ = ["bidirectional_order", "shiftsreduce_placement"]


def bidirectional_order(
    items: Sequence[str],
    affinity: dict[tuple[str, str], int],
    frequencies: dict[str, int] | None = None,
) -> list[str]:
    """ShiftsReduce's bidirectional chain over ``items``.

    The highest-degree item seeds the chain; each remaining item is chosen
    by maximum attachment weight to the placed set and appended to the end
    that increases the arrangement objective least.  Ties resolve by total
    degree, then access frequency, then first-touch rank — a total order,
    so the result is independent of dict/set iteration order.
    """
    items = list(items)
    if len(set(items)) != len(items):
        raise OptimizationError("ordering input contains duplicate items")
    if len(items) <= 1:
        return items
    frequencies = frequencies or {}
    member = set(items)
    rank = {item: position for position, item in enumerate(items)}
    weight: dict[tuple[str, str], int] = {}
    degree = {item: 0 for item in items}
    for (left, right), value in affinity.items():
        if left in member and right in member and left != right and value > 0:
            weight[(left, right)] = weight.get((left, right), 0) + value
            weight[(right, left)] = weight.get((right, left), 0) + value
            degree[left] += value
            degree[right] += value

    def tie_key(item: str) -> tuple[int, int, int]:
        return (degree[item], frequencies.get(item, 0), -rank[item])

    seed = max(items, key=tie_key)
    position = {seed: 0}
    left_end = right_end = 0
    remaining = [item for item in items if item != seed]
    while remaining:
        best = max(
            remaining,
            key=lambda item: (
                sum(weight.get((item, placed), 0) for placed in position),
            )
            + tie_key(item),
        )
        left_cost = sum(
            weight.get((best, placed), 0) * (q - (left_end - 1))
            for placed, q in position.items()
        )
        right_cost = sum(
            weight.get((best, placed), 0) * ((right_end + 1) - q)
            for placed, q in position.items()
        )
        if left_cost < right_cost:
            left_end -= 1
            position[best] = left_end
        else:
            right_end += 1
            position[best] = right_end
        remaining.remove(best)
    return sorted(position, key=position.get)


def _order_groups_bidirectional(
    problem: PlacementProblem,
    groups: Sequence[Sequence[str]],
) -> Placement:
    """Assemble a placement with the bidirectional construction per group.

    Mirrors :func:`repro.core.ordering.order_groups`: each group's chain
    (and its reversal) is anchored so the weighted median sits on a port,
    and the cheaper layout wins by exact evaluation of the group's
    restricted subsequence.
    """
    frequencies = dict(problem.trace.frequencies())
    mapping: dict[str, Slot] = {}
    for dbc, group in enumerate(groups):
        group = list(group)
        if not group:
            continue
        if dbc >= problem.config.num_dbcs:
            raise OptimizationError(
                f"group index {dbc} exceeds array DBC count "
                f"{problem.config.num_dbcs}"
            )
        restricted = problem.trace.restricted_to(group)
        affinity = affinity_graph(restricted)
        order = bidirectional_order(group, affinity, frequencies)
        candidates = [
            anchored_offsets(order, problem.config, frequencies),
            anchored_offsets(list(reversed(order)), problem.config, frequencies),
        ]
        best_offsets = None
        best_cost = None
        for offsets in candidates:
            cost = restricted_sequence_cost(restricted, offsets, problem.config)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_offsets = offsets
        assert best_offsets is not None
        for item, offset in best_offsets.items():
            mapping[item] = Slot(dbc, offset)
    return Placement(mapping)


def shiftsreduce_placement(
    problem: PlacementProblem,
    num_groups: int | None = None,
) -> Placement:
    """Full ShiftsReduce placement: grouping portfolio + bidirectional order.

    The candidate set is every grouping of the repo portfolio laid out
    bidirectionally, plus the paper heuristic's own placement as a guard
    candidate, so ``shiftsreduce ≤ heuristic`` holds structurally on every
    instance (E21's acceptance gate).  ShiftsReduce candidates are listed
    first, so they win cost ties.
    """
    groupings: list[list[list[str]]] = [
        refine_grouping(
            greedy_min_affinity_grouping(problem, num_groups=num_groups), problem
        ),
        chain_and_cut_groups(problem, num_groups=num_groups),
        declaration_block_groups(problem),
        hot_spread_groups(problem, num_groups=num_groups),
    ]
    placements = [
        _order_groups_bidirectional(problem, groups) for groups in groupings
    ]
    placements.append(heuristic_placement(problem))
    if len(problem.trace) >= FAST_EVAL_MIN_ACCESSES:
        costs = evaluate_placements_fast(problem, placements, validate=False)
    else:
        costs = [
            evaluate_placement(problem, placement, validate=False)
            for placement in placements
        ]
    best_placement: Placement | None = None
    best_cost: int | None = None
    for placement, cost in zip(placements, costs):
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_placement = placement
    assert best_placement is not None
    return best_placement
