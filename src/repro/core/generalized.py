"""Generalized port-aware placement (Khan et al., arXiv 1912.03507).

The generalized data placement work observes that the classic single-port
constructions stop being the right shape as soon as a DBC has several
access ports: the cheap offsets are no longer one contiguous window but a
*union of neighbourhoods around every port*, and a layout should split its
access chain across those neighbourhoods instead of anchoring the whole
chain at one port.  This module implements the port-count/position
parametric strategies:

* **port-proximity ranking** — offsets sorted by distance to their nearest
  port, hottest items on the cheapest offsets (the exact eager optimum by
  the rearrangement inequality, and a strong lazy generalization);
* **multi-port chain splitting** — the greedy affinity chain cut into one
  contiguous segment per port, each segment anchored so its access-weighted
  median sits on its port (:func:`multi_port_chain_offsets`); with one port
  this degrades exactly to the classic anchored chain;
* the single-port anchored chain itself, kept as a candidate so the
  generalization never loses to the specialization it extends.

Per group the cheapest strategy wins by exact evaluation of the restricted
subsequence (sound by the per-DBC cost decomposition); across grouping
candidates the cheapest full placement wins, with the paper heuristic's
placement kept in the candidate set so ``generalized ≤ heuristic`` is a
structural guarantee (the repo's portfolio idiom).  All tie-breaks are
total, so the construction is byte-deterministic.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.cost import evaluate_placement
from repro.core.fast_eval import FAST_EVAL_MIN_ACCESSES, evaluate_placements_fast
from repro.core.grouping import greedy_min_affinity_grouping, refine_grouping
from repro.core.heuristic import (
    chain_and_cut_groups,
    declaration_block_groups,
    heuristic_placement,
    hot_spread_groups,
)
from repro.core.ordering import (
    anchored_offsets,
    greedy_chain_order,
    proximity_offsets,
    restricted_sequence_cost,
    weighted_median_index,
)
from repro.core.placement import Placement, Slot
from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig
from repro.errors import OptimizationError
from repro.trace.stats import affinity_graph

__all__ = ["multi_port_chain_offsets", "generalized_placement"]


def multi_port_chain_offsets(
    order: Sequence[str],
    config: DWMConfig,
    frequencies: dict[str, int] | None = None,
) -> dict[str, int]:
    """Split ``order`` into one contiguous segment per port, port-anchored.

    The chain is cut into ``num_ports`` balanced contiguous segments
    (leading segments absorb the remainder) assigned to ports in ascending
    offset order.  Each segment is placed contiguously with its
    access-weighted median as close to its port as the already-placed
    prefix and the space the remaining segments need allow, so the result
    is always injective and in range.  With one port this reduces to
    :func:`repro.core.ordering.anchored_offsets`.
    """
    order = list(order)
    length = config.words_per_dbc
    if len(order) > length:
        raise OptimizationError(
            f"group of {len(order)} items exceeds DBC capacity {length}"
        )
    frequencies = frequencies or {}
    ports = config.port_offsets
    num_segments = min(len(ports), len(order)) or 1
    base, extra = divmod(len(order), num_segments)
    segments: list[list[str]] = []
    start = 0
    for index in range(num_segments):
        size = base + (1 if index < extra else 0)
        segments.append(order[start : start + size])
        start += size
    offsets: dict[str, int] = {}
    floor = 0
    remaining = len(order)
    for segment, port in zip(segments, ports):
        remaining -= len(segment)
        median = weighted_median_index(segment, frequencies)
        seg_start = port - median
        seg_start = max(floor, min(length - len(segment) - remaining, seg_start))
        for position, item in enumerate(segment):
            offsets[item] = seg_start + position
        floor = seg_start + len(segment)
    return offsets


def _order_groups_generalized(
    problem: PlacementProblem,
    groups: Sequence[Sequence[str]],
) -> Placement:
    """Assemble a placement choosing the best port-aware layout per group."""
    frequencies = dict(problem.trace.frequencies())
    mapping: dict[str, Slot] = {}
    for dbc, group in enumerate(groups):
        group = list(group)
        if not group:
            continue
        if dbc >= problem.config.num_dbcs:
            raise OptimizationError(
                f"group index {dbc} exceeds array DBC count "
                f"{problem.config.num_dbcs}"
            )
        restricted = problem.trace.restricted_to(group)
        affinity = affinity_graph(restricted)
        chain = greedy_chain_order(group, affinity)
        candidates = [
            multi_port_chain_offsets(chain, problem.config, frequencies),
            multi_port_chain_offsets(
                list(reversed(chain)), problem.config, frequencies
            ),
            proximity_offsets(group, problem.config, frequencies),
            anchored_offsets(chain, problem.config, frequencies),
        ]
        best_offsets = None
        best_cost = None
        for offsets in candidates:
            cost = restricted_sequence_cost(restricted, offsets, problem.config)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_offsets = offsets
        assert best_offsets is not None
        for item, offset in best_offsets.items():
            mapping[item] = Slot(dbc, offset)
    return Placement(mapping)


def generalized_placement(
    problem: PlacementProblem,
    num_groups: int | None = None,
) -> Placement:
    """Full generalized placement: grouping portfolio + port-aware layouts.

    The candidate set is every grouping of the repo portfolio laid out
    with the port-parametric strategies, plus the paper heuristic's own
    placement as a guard candidate, making ``generalized ≤ heuristic`` a
    structural guarantee on every instance (E21's acceptance gate).
    Generalized candidates are listed first, so they win cost ties.
    """
    groupings: list[list[list[str]]] = [
        refine_grouping(
            greedy_min_affinity_grouping(problem, num_groups=num_groups), problem
        ),
        chain_and_cut_groups(problem, num_groups=num_groups),
        declaration_block_groups(problem),
        hot_spread_groups(problem, num_groups=num_groups),
    ]
    placements = [
        _order_groups_generalized(problem, groups) for groups in groupings
    ]
    placements.append(heuristic_placement(problem))
    if len(problem.trace) >= FAST_EVAL_MIN_ACCESSES:
        costs = evaluate_placements_fast(problem, placements, validate=False)
    else:
        costs = [
            evaluate_placement(problem, placement, validate=False)
            for placement in placements
        ]
    best_placement: Placement | None = None
    best_cost: int | None = None
    for placement, cost in zip(placements, costs):
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_placement = placement
    assert best_placement is not None
    return best_placement
