"""The paper's ILP formulation of shift-minimizing placement.

The published work formulates optimal data placement as an integer linear
program and solves small instances with a commercial solver.  No solver is
available offline, but the *formulation itself* is a reproduction artifact:
this module builds it explicitly, exports it in the standard CPLEX ``.lp``
text format (so any external solver can consume it), and verifies it against
the exact subset-DP optimum by exhaustive enumeration on small instances.

Formulation (single DBC — the MinLA core; DESIGN.md §4):

* binaries ``x[v,k]`` — item ``v`` sits at position ``k``;
* assignment constraints — each item takes exactly one position, each
  position at most one item;
* continuous ``d[u,v] ≥ |pos(u) − pos(v)|`` for every affinity pair,
  linearized as ``d[u,v] ≥ pos(u) − pos(v)`` and ``d[u,v] ≥ pos(v) − pos(u)``
  with ``pos(v) = Σ_k k·x[v,k]``;
* objective — minimize ``Σ w(u,v)·d[u,v]``.

At any optimum each ``d[u,v]`` is tight (the objective presses it down onto
the larger of its two bounds), so the ILP optimum equals the MinLA optimum —
:func:`verify_formulation` checks exactly that, plus feasibility of every
permutation assignment, with fully generic constraint evaluation.

Solving is delegated to :func:`solve` (backed by the OR-Tools CP-SAT model
in :mod:`repro.core.cpsat` when the optional dependency is installed, with
the subset DP and the permutation enumeration below as pure-python
fallbacks).  The enumeration path is a *formulation validator*, not a
production solver, and is hard-capped by :data:`ENUMERATION_BUDGET`
permutations — instances above the budget are rejected with a typed
:class:`~repro.errors.OptimizationError` instead of enumerating for
minutes.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.exact import minla_optimal_cost
from repro.errors import OptimizationError

#: Hard cap on permutation assignments the enumeration backend may check,
#: regardless of the caller-supplied ``max_items`` (9! would already be
#: ~360k generic constraint evaluations — minutes, not seconds).
ENUMERATION_BUDGET = 40_320  # 8!


@dataclass(frozen=True)
class Variable:
    """One decision variable of the model."""

    name: str
    is_binary: bool = True
    lower: float = 0.0
    upper: float | None = None  # None = +inf (binaries implicitly 1)


@dataclass
class LinearExpr:
    """A linear expression: Σ coef·var + constant."""

    coefficients: dict[str, float] = field(default_factory=dict)
    constant: float = 0.0

    def add(self, variable: str, coefficient: float) -> "LinearExpr":
        self.coefficients[variable] = (
            self.coefficients.get(variable, 0.0) + coefficient
        )
        return self

    def evaluate(self, assignment: dict[str, float]) -> float:
        """Value of the expression under a full variable assignment."""
        total = self.constant
        for variable, coefficient in self.coefficients.items():
            total += coefficient * assignment[variable]
        return total

    def render(self) -> str:
        """LP-format rendering of the variable part (no constant)."""
        parts: list[str] = []
        for variable, coefficient in sorted(self.coefficients.items()):
            if coefficient == 0:
                continue
            sign = "+" if coefficient >= 0 else "-"
            magnitude = abs(coefficient)
            coeff_text = "" if magnitude == 1 else f"{magnitude:g} "
            parts.append(f"{sign} {coeff_text}{variable}")
        if not parts:
            return "0"
        first = parts[0]
        if first.startswith("+ "):
            parts[0] = first[2:]
        return " ".join(parts)


@dataclass(frozen=True)
class Constraint:
    """``expr (<=|>=|=) rhs``."""

    name: str
    expr: LinearExpr
    sense: str  # "<=", ">=", "="
    rhs: float

    def holds(self, assignment: dict[str, float], tolerance: float = 1e-9) -> bool:
        value = self.expr.evaluate(assignment)
        if self.sense == "<=":
            return value <= self.rhs + tolerance
        if self.sense == ">=":
            return value >= self.rhs - tolerance
        return abs(value - self.rhs) <= tolerance


@dataclass
class ILPModel:
    """A minimization ILP: variables, constraints, objective."""

    name: str
    variables: list[Variable] = field(default_factory=list)
    constraints: list[Constraint] = field(default_factory=list)
    objective: LinearExpr = field(default_factory=LinearExpr)

    def variable_names(self) -> list[str]:
        return [variable.name for variable in self.variables]

    def check(self, assignment: dict[str, float]) -> list[str]:
        """Names of constraints violated by ``assignment`` (empty = feasible)."""
        missing = [
            variable.name
            for variable in self.variables
            if variable.name not in assignment
        ]
        if missing:
            raise OptimizationError(
                f"assignment misses variables: {missing[:5]}"
            )
        return [
            constraint.name
            for constraint in self.constraints
            if not constraint.holds(assignment)
        ]

    def to_lp_format(self) -> str:
        """Serialise in the CPLEX LP text format."""
        lines = [f"\\ {self.name}", "Minimize", f" obj: {self.objective.render()}"]
        lines.append("Subject To")
        for constraint in self.constraints:
            sense = {"<=": "<=", ">=": ">=", "=": "="}[constraint.sense]
            lines.append(
                f" {constraint.name}: {constraint.expr.render()} "
                f"{sense} {constraint.rhs:g}"
            )
        bounded = [
            v for v in self.variables if not v.is_binary and v.upper is not None
        ]
        frees = [
            v for v in self.variables if not v.is_binary and v.upper is None
        ]
        if bounded or frees:
            lines.append("Bounds")
            for variable in bounded:
                lines.append(
                    f" {variable.lower:g} <= {variable.name} <= {variable.upper:g}"
                )
            for variable in frees:
                lines.append(f" {variable.name} >= {variable.lower:g}")
        binaries = [v.name for v in self.variables if v.is_binary]
        if binaries:
            lines.append("Binary")
            for name in binaries:
                lines.append(f" {name}")
        lines.append("End")
        return "\n".join(lines) + "\n"


def _x(item_index: int, position: int) -> str:
    return f"x_{item_index}_{position}"


def _d(left_index: int, right_index: int) -> str:
    return f"d_{left_index}_{right_index}"


def build_minla_ilp(
    items: Sequence[str],
    affinity: dict[tuple[str, str], int],
    model_name: str = "dwm-placement-minla",
) -> ILPModel:
    """Build the single-DBC placement ILP for the given affinity instance."""
    items = list(items)
    n = len(items)
    if n == 0:
        raise OptimizationError("cannot build an ILP over zero items")
    index = {item: i for i, item in enumerate(items)}
    model = ILPModel(name=model_name)
    # Assignment binaries.
    for i in range(n):
        for k in range(n):
            model.variables.append(Variable(_x(i, k)))
    # Each item exactly one position.
    for i in range(n):
        expr = LinearExpr()
        for k in range(n):
            expr.add(_x(i, k), 1.0)
        model.constraints.append(Constraint(f"item_{i}", expr, "=", 1.0))
    # Each position at most one item (exactly one, since counts match).
    for k in range(n):
        expr = LinearExpr()
        for i in range(n):
            expr.add(_x(i, k), 1.0)
        model.constraints.append(Constraint(f"pos_{k}", expr, "=", 1.0))
    # Distance variables and linearized absolute values.
    pairs = sorted(
        (
            (index[left], index[right], weight)
            for (left, right), weight in affinity.items()
            if left in index and right in index and left != right and weight > 0
        )
    )
    for i, j, weight in pairs:
        a, b = min(i, j), max(i, j)
        d_name = _d(a, b)
        model.variables.append(
            Variable(d_name, is_binary=False, lower=0.0, upper=float(n - 1))
        )
        # d >= pos(a) - pos(b)  <=>  d - pos(a) + pos(b) >= 0
        forward = LinearExpr().add(d_name, 1.0)
        backward = LinearExpr().add(d_name, 1.0)
        for k in range(n):
            forward.add(_x(a, k), -float(k))
            forward.add(_x(b, k), float(k))
            backward.add(_x(a, k), float(k))
            backward.add(_x(b, k), -float(k))
        model.constraints.append(
            Constraint(f"absf_{a}_{b}", forward, ">=", 0.0)
        )
        model.constraints.append(
            Constraint(f"absb_{a}_{b}", backward, ">=", 0.0)
        )
        model.objective.add(d_name, float(weight))
    return model


def assignment_for_order(
    items: Sequence[str],
    affinity: dict[tuple[str, str], int],
    order: Sequence[str],
) -> dict[str, float]:
    """The (tight) model assignment induced by a concrete linear order."""
    items = list(items)
    index = {item: i for i, item in enumerate(items)}
    position = {item: k for k, item in enumerate(order)}
    if set(order) != set(items):
        raise OptimizationError("order must be a permutation of the items")
    assignment: dict[str, float] = {}
    for i, item in enumerate(items):
        for k in range(len(items)):
            assignment[_x(i, k)] = 1.0 if position[item] == k else 0.0
    for (left, right), weight in affinity.items():
        if left == right or weight <= 0:
            continue
        if left not in index or right not in index:
            continue
        a, b = sorted((index[left], index[right]))
        assignment[_d(a, b)] = float(
            abs(position[items[a]] - position[items[b]])
        )
    return assignment


def solve_by_enumeration(
    items: Sequence[str],
    affinity: dict[tuple[str, str], int],
    max_items: int = 7,
) -> tuple[list[str], float]:
    """Solve the ILP by enumerating all permutation assignments.

    Every candidate is checked *generically* against the model's
    constraints, and the objective is evaluated generically too — this
    validates the formulation, not just the search.  Returns the optimal
    order and objective value.
    """
    items = list(items)
    if len(items) > max_items:
        raise OptimizationError(
            f"enumeration supports at most {max_items} items, got {len(items)}"
        )
    if math.factorial(len(items)) > ENUMERATION_BUDGET:
        raise OptimizationError(
            f"enumerating {len(items)}! = {math.factorial(len(items))} "
            f"permutation assignments exceeds the enumeration budget of "
            f"{ENUMERATION_BUDGET}; use repro.core.ilp.solve (CP-SAT / "
            f"subset DP) for larger instances"
        )
    model = build_minla_ilp(items, affinity)
    best_order: list[str] | None = None
    best_value: float | None = None
    for permutation in itertools.permutations(items):
        assignment = assignment_for_order(items, affinity, permutation)
        violated = model.check(assignment)
        if violated:
            raise OptimizationError(
                f"formulation bug: permutation assignment violates {violated[:3]}"
            )
        value = model.objective.evaluate(assignment)
        if best_value is None or value < best_value:
            best_value = value
            best_order = list(permutation)
    assert best_order is not None and best_value is not None
    return best_order, best_value


def verify_formulation(
    items: Sequence[str],
    affinity: dict[tuple[str, str], int],
    max_items: int = 8,
) -> bool:
    """Check the ILP optimum equals the exact DP optimum on this instance.

    Inherits :func:`solve_by_enumeration`'s budget guard: instances whose
    permutation count exceeds :data:`ENUMERATION_BUDGET` are rejected with
    a typed error up front rather than verified by brute force, no matter
    how high the caller raises ``max_items``.
    """
    _order, ilp_value = solve_by_enumeration(items, affinity, max_items=max_items)
    dp_value = minla_optimal_cost(list(items), affinity)
    return abs(ilp_value - dp_value) < 1e-9


def solve(
    items: Sequence[str],
    affinity: dict[tuple[str, str], int],
    time_limit: float | None = None,
    warm_start: Sequence[str] | None = None,
):
    """Solve the placement MinLA model with the best available backend.

    Thin front over :func:`repro.core.cpsat.solve_minla`: OR-Tools CP-SAT
    (warm-started, symmetry-broken, certifying optima into the hundreds of
    items) when installed, the pure-python subset DP / enumeration chain
    otherwise, with the downgrade recorded on the ``ilp`` degradation
    chain.  Returns a :class:`repro.core.cpsat.MinlaSolution`.
    """
    from repro.core.cpsat import DEFAULT_TIME_LIMIT, solve_minla

    return solve_minla(
        items,
        affinity,
        time_limit=DEFAULT_TIME_LIMIT if time_limit is None else time_limit,
        warm_start=warm_start,
    )
