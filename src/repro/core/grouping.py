"""Grouping phase: partition items across DBCs.

Because every DBC keeps its own head, a consecutive access pair placed on
*different* DBCs costs no shifts at all — the cost of a placement decomposes
over each DBC's restricted access subsequence.  The grouping phase therefore
partitions items into at most ``num_dbcs`` groups of at most ``L`` items
while **minimizing intra-group affinity** (the transition weight that remains
to be paid inside DBCs); the ordering phase then arranges each group to make
the残 remaining transitions short.

Two algorithms are provided:

* :func:`greedy_min_affinity_grouping` — items in descending frequency order,
  each assigned to the group where it adds the least intra-group affinity
  (capacity permitting).  O(n · g · deg) and the default.
* :func:`refine_grouping` — Kernighan–Lin style improvement: single-item
  moves and pairwise swaps between groups accepted when they reduce total
  intra-group affinity.
"""

from __future__ import annotations

from repro.core.problem import PlacementProblem
from repro.errors import CapacityError, OptimizationError


def _neighbor_weights(
    affinity: dict[tuple[str, str], int]
) -> dict[str, dict[str, int]]:
    """Adjacency-list view of the unordered affinity dict."""
    neighbors: dict[str, dict[str, int]] = {}
    for (left, right), weight in affinity.items():
        if left == right:
            continue
        neighbors.setdefault(left, {})[right] = (
            neighbors.get(left, {}).get(right, 0) + weight
        )
        neighbors.setdefault(right, {})[left] = (
            neighbors.get(right, {}).get(left, 0) + weight
        )
    return neighbors


def intra_group_affinity(
    groups: list[list[str]],
    affinity: dict[tuple[str, str], int],
) -> int:
    """Total affinity weight of pairs that share a group."""
    group_of: dict[str, int] = {}
    for index, group in enumerate(groups):
        for item in group:
            group_of[item] = index
    total = 0
    for (left, right), weight in affinity.items():
        if left == right:
            continue
        group_left = group_of.get(left)
        if group_left is not None and group_left == group_of.get(right):
            total += weight
    return total


def greedy_min_affinity_grouping(
    problem: PlacementProblem,
    num_groups: int | None = None,
) -> list[list[str]]:
    """Assign items (hottest first) to the least-conflicting group.

    Returns ``num_groups`` lists (some possibly empty), each of size at most
    ``words_per_dbc``.  Hot items are placed first so they get the freest
    choice; ties break toward the emptiest group to balance load.
    """
    config = problem.config
    capacity = config.words_per_dbc
    if num_groups is None:
        num_groups = min(config.num_dbcs, problem.num_items)
    if num_groups <= 0:
        raise OptimizationError(f"num_groups must be positive, got {num_groups}")
    if num_groups * capacity < problem.num_items:
        raise CapacityError(
            f"{problem.num_items} items cannot fit in {num_groups} groups "
            f"of {capacity}"
        )
    neighbors = _neighbor_weights(problem.affinity)
    groups: list[list[str]] = [[] for _ in range(num_groups)]
    membership: dict[str, int] = {}
    for item in problem.hot_order:
        item_neighbors = neighbors.get(item, {})
        best_group = None
        best_key = None
        for index, group in enumerate(groups):
            if len(group) >= capacity:
                continue
            added = sum(
                item_neighbors.get(member, 0) for member in group
            )
            key = (added, len(group), index)
            if best_key is None or key < best_key:
                best_key = key
                best_group = index
        if best_group is None:
            raise CapacityError("no group has spare capacity")  # pragma: no cover
        groups[best_group].append(item)
        membership[item] = best_group
    return groups


def refine_grouping(
    groups: list[list[str]],
    problem: PlacementProblem,
    max_passes: int = 4,
) -> list[list[str]]:
    """KL-style refinement: moves and swaps that reduce intra-group affinity.

    Runs first-improvement passes until a pass makes no change or
    ``max_passes`` is hit.  Capacity is respected throughout.
    """
    capacity = problem.config.words_per_dbc
    neighbors = _neighbor_weights(problem.affinity)
    groups = [list(group) for group in groups]
    group_of = {
        item: index for index, group in enumerate(groups) for item in group
    }

    def cost_to(item: str, group_index: int) -> int:
        """Affinity of ``item`` toward current members of a group."""
        item_neighbors = neighbors.get(item, {})
        return sum(
            weight
            for member, weight in item_neighbors.items()
            if group_of.get(member) == group_index and member != item
        )

    for _ in range(max_passes):
        changed = False
        items = [item for group in groups for item in group]
        for item in items:
            source = group_of[item]
            current_cost = cost_to(item, source)
            if current_cost == 0:
                continue
            # Try moving to a group with spare capacity.
            best_target, best_cost = source, current_cost
            for target in range(len(groups)):
                if target == source or len(groups[target]) >= capacity:
                    continue
                candidate = cost_to(item, target)
                if candidate < best_cost:
                    best_cost, best_target = candidate, target
            if best_target != source:
                groups[source].remove(item)
                groups[best_target].append(item)
                group_of[item] = best_target
                changed = True
                continue
            # Try swapping with an item of another group.
            for target in range(len(groups)):
                if target == source:
                    continue
                swapped = False
                for other in list(groups[target]):
                    pair_weight = neighbors.get(item, {}).get(other, 0)
                    gain_item = current_cost - (cost_to(item, target) - pair_weight)
                    other_cost = cost_to(other, target)
                    gain_other = other_cost - (cost_to(other, source) - pair_weight)
                    if gain_item + gain_other > 0:
                        groups[source].remove(item)
                        groups[target].remove(other)
                        groups[source].append(other)
                        groups[target].append(item)
                        group_of[item] = target
                        group_of[other] = source
                        changed = True
                        swapped = True
                        break
                if swapped:
                    break
        if not changed:
            break
    return groups
