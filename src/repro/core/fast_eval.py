"""Vectorised shift-cost evaluation (numpy) for large traces.

The pure-Python evaluator (:func:`repro.core.cost.evaluate_placement`) walks
the trace access by access — exact but interpreter-bound.  Two geometries
admit a vectorised form:

* **eager policy, any port count** — each access is an order-independent
  round trip ``2·min_p|offset−p|``, so the total collapses to
  ``Σ_items freq·2·dist(offset)`` — one gather over a precomputed
  per-offset distance table;
* **lazy policy, single port** — the per-DBC decomposition gives
  ``Σ_DBC |first target| + Σ|diff(targets)|`` — a couple of numpy ops per
  DBC over per-item access-position arrays.

Multi-port lazy geometries need the per-access argmin over ports, which
depends on the running head, so they fall back to the scalar evaluator.
All paths are differentially tested to agree exactly.

Beyond the single-placement entry point this module provides:

* :func:`evaluate_placements_fast` — **batch** evaluation of many placements
  of the *same* problem, amortising trace resolution (per-item access
  positions, frequencies, port-distance tables) across all of them; used by
  the heuristic's candidate selection and by the sweep/DSE drivers, which
  score many placements per problem.
* :func:`evaluate_placement_auto` — picks scalar vs vectorised by trace
  length (:data:`FAST_EVAL_MIN_ACCESSES`), since numpy setup overhead loses
  on short traces.

Measured speedup: ~2-3× on 10⁵-access single-port lazy traces and >10× for
eager (growing with trace length).  For *move*-structured workloads (local
search) use :class:`repro.core.incremental.CostEvaluator`, which scores
deltas in O(touched accesses) instead of re-evaluating at all.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.cost import evaluate_placement
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.dwm.config import PortPolicy

#: Below this many accesses the scalar walk beats the numpy setup cost.
FAST_EVAL_MIN_ACCESSES = 4096


class _TraceArrays:
    """Trace-side arrays shared by every placement of one problem."""

    def __init__(self, problem: PlacementProblem) -> None:
        import numpy as np

        self.np = np
        config = problem.config
        self.items = problem.items
        n = len(self.items)
        self.item_at = np.fromiter(
            problem.index_sequence, np.int64, len(problem.trace)
        )
        order = np.argsort(self.item_at, kind="stable")
        boundaries = np.searchsorted(self.item_at[order], np.arange(n + 1))
        self.positions = [
            order[boundaries[i] : boundaries[i + 1]] for i in range(n)
        ]
        self.freq = (boundaries[1:] - boundaries[:-1]).astype(np.int64)
        #: 2 × distance to the nearest port, per offset.
        self.eager_dist = np.asarray(
            [
                2 * min(abs(o - p) for p in config.port_offsets)
                for o in range(config.words_per_dbc)
            ],
            dtype=np.int64,
        )

    def resolve(self, placement: Placement):
        """(dbc, offset) dense arrays for one placement."""
        np = self.np
        n = len(self.items)
        dbc_of = np.empty(n, dtype=np.int64)
        offset_of = np.empty(n, dtype=np.int64)
        for index, item in enumerate(self.items):
            slot = placement[item]
            dbc_of[index] = slot.dbc
            offset_of[index] = slot.offset
        return dbc_of, offset_of


def _eager_total(arrays: _TraceArrays, offset_of) -> int:
    return int((arrays.freq * arrays.eager_dist[offset_of]).sum())


def _lazy_single_port_total(
    arrays: _TraceArrays, dbc_of, offset_of, port: int
) -> int:
    np = arrays.np
    total = 0
    for dbc in np.unique(dbc_of):
        members = np.flatnonzero(dbc_of == dbc)
        member_positions = [arrays.positions[i] for i in members.tolist()]
        if len(member_positions) == 1:
            positions = member_positions[0]
        else:
            positions = np.concatenate(member_positions)
            positions.sort()
        if positions.size == 0:
            continue
        targets = offset_of[arrays.item_at[positions]] - port
        total += abs(int(targets[0]))
        if targets.size > 1:
            total += int(np.abs(np.diff(targets)).sum())
    return total


def evaluate_placement_fast(
    problem: PlacementProblem,
    placement: Placement,
    validate: bool = True,
) -> int:
    """Exact total shift count, vectorised where the geometry allows.

    Semantically identical to :func:`repro.core.cost.evaluate_placement`;
    falls back to it for multi-port lazy geometries (head-dependent port
    choice is inherently sequential).
    """
    config = problem.config
    if validate:
        placement.validate(config, problem.items)
    if (
        config.port_policy is not PortPolicy.EAGER
        and len(config.port_offsets) > 1
    ):
        return evaluate_placement(problem, placement, validate=False)
    arrays = _TraceArrays(problem)
    dbc_of, offset_of = arrays.resolve(placement)
    if config.port_policy is PortPolicy.EAGER:
        return _eager_total(arrays, offset_of)
    return _lazy_single_port_total(
        arrays, dbc_of, offset_of, config.port_offsets[0]
    )


def evaluate_placements_fast(
    problem: PlacementProblem,
    placements: Sequence[Placement],
    validate: bool = True,
) -> list[int]:
    """Exact shift counts of many placements of one problem (batch).

    The trace is resolved once (access positions, frequencies, distance
    tables) and shared by every placement — the dominant setup cost of
    :func:`evaluate_placement_fast` amortises across the batch.  Multi-port
    lazy geometries fall back to the scalar evaluator per placement.
    """
    config = problem.config
    if validate:
        for placement in placements:
            placement.validate(config, problem.items)
    if (
        config.port_policy is not PortPolicy.EAGER
        and len(config.port_offsets) > 1
    ):
        return [
            evaluate_placement(problem, placement, validate=False)
            for placement in placements
        ]
    arrays = _TraceArrays(problem)
    totals: list[int] = []
    eager = config.port_policy is PortPolicy.EAGER
    port = config.port_offsets[0]
    for placement in placements:
        dbc_of, offset_of = arrays.resolve(placement)
        if eager:
            totals.append(_eager_total(arrays, offset_of))
        else:
            totals.append(
                _lazy_single_port_total(arrays, dbc_of, offset_of, port)
            )
    return totals


def evaluate_placement_auto(
    problem: PlacementProblem,
    placement: Placement,
    validate: bool = True,
) -> int:
    """Exact evaluation via whichever implementation is faster.

    Scalar walk below :data:`FAST_EVAL_MIN_ACCESSES` accesses (numpy setup
    overhead dominates there), vectorised above.
    """
    if len(problem.trace) < FAST_EVAL_MIN_ACCESSES:
        return evaluate_placement(problem, placement, validate=validate)
    return evaluate_placement_fast(problem, placement, validate=validate)
