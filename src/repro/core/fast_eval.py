"""Vectorised shift-cost evaluation (numpy) for large traces.

The pure-Python evaluator (:func:`repro.core.cost.evaluate_placement`) walks
the trace access by access — exact but interpreter-bound.  For single-port
lazy geometries the per-DBC decomposition admits a vectorised form:

* resolve the trace to per-access (dbc, target-shift) arrays once;
* for each DBC, the cost is ``Σ |diff(targets_of_that_dbc)|`` plus the
  initial approach ``|first target|`` — a couple of numpy ops per DBC.

Multi-port geometries need the per-access argmin over ports, which depends
on the running head, so they fall back to the scalar evaluator.  The two
implementations are differentially tested to agree exactly.

Measured speedup: ~2-3× on 10⁵-access traces (growing with trace length,
since the numpy setup cost amortises); on short traces the scalar walk wins,
so callers should prefer it below a few thousand accesses.
"""

from __future__ import annotations

from repro.core.cost import evaluate_placement
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.dwm.config import PortPolicy


def evaluate_placement_fast(
    problem: PlacementProblem,
    placement: Placement,
    validate: bool = True,
) -> int:
    """Exact total shift count, vectorised where the geometry allows.

    Semantically identical to :func:`repro.core.cost.evaluate_placement`;
    falls back to it for multi-port lazy geometries (head-dependent port
    choice is inherently sequential).
    """
    import numpy as np

    config = problem.config
    if validate:
        placement.validate(config, problem.items)
    ports = config.port_offsets
    eager = config.port_policy is PortPolicy.EAGER
    items = problem.items
    item_sequence = np.fromiter(
        problem.index_sequence, dtype=np.int64, count=len(problem.trace)
    )
    dbc_of = np.empty(len(items), dtype=np.int64)
    offset_of = np.empty(len(items), dtype=np.int64)
    for index, item in enumerate(items):
        slot = placement[item]
        dbc_of[index] = slot.dbc
        offset_of[index] = slot.offset
    offsets = offset_of[item_sequence]
    if eager:
        # Order-independent: 2 * min-port distance per access.
        port_array = np.asarray(ports, dtype=np.int64)
        distances = np.abs(offsets[:, None] - port_array[None, :]).min(axis=1)
        return int(2 * distances.sum())
    if len(ports) > 1:
        return evaluate_placement(problem, placement, validate=False)
    port = ports[0]
    targets = offsets - port
    dbcs = dbc_of[item_sequence]
    total = 0
    for dbc in np.unique(dbcs):
        dbc_targets = targets[dbcs == dbc]
        total += int(abs(int(dbc_targets[0])))  # approach from rest
        if dbc_targets.size > 1:
            total += int(np.abs(np.diff(dbc_targets)).sum())
    return total
