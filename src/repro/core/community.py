"""Community-detection grouping (networkx-based comparator).

An alternative grouping phase built on graph community detection: modularity
communities of the affinity graph are natural candidate DBC groups.  Note
the inversion relative to the interference-minimizing partition — community
detection puts *strongly connected* items together, which is the right call
when capacity forces items to share DBCs anyway (the chain ordering then
serves the heavy edges with short shifts), and the wrong call when free DBCs
could absorb the transitions entirely.  Included as a literature-standard
comparator; the main heuristic's candidate selection remains the default.
"""

from __future__ import annotations

from repro.core.ordering import order_groups
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.errors import OptimizationError


def affinity_to_networkx(problem: PlacementProblem):
    """The problem's affinity graph as a weighted :mod:`networkx` graph."""
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(problem.items)
    for (left, right), weight in problem.affinity.items():
        if left != right:
            graph.add_edge(left, right, weight=weight)
    return graph


def community_groups(
    problem: PlacementProblem,
    num_groups: int | None = None,
) -> list[list[str]]:
    """Modularity communities packed into capacity-bounded groups.

    Communities larger than a DBC are split into chunks (community order is
    preserved, so intra-community locality survives the split); small
    communities are first-fit packed together to respect the DBC budget.
    """
    import networkx as nx

    config = problem.config
    capacity = config.words_per_dbc
    if num_groups is None:
        num_groups = min(config.num_dbcs, problem.num_items)
    if num_groups * capacity < problem.num_items:
        raise OptimizationError(
            f"{problem.num_items} items cannot fit in {num_groups} groups "
            f"of {capacity}"
        )
    graph = affinity_to_networkx(problem)
    communities = nx.algorithms.community.greedy_modularity_communities(
        graph, weight="weight"
    )
    first_touch = {item: index for index, item in enumerate(problem.items)}
    chunks: list[list[str]] = []
    for community in communities:
        ordered = sorted(community, key=lambda item: first_touch[item])
        for start in range(0, len(ordered), capacity):
            chunks.append(ordered[start : start + capacity])
    # First-fit-decreasing pack of chunks into at most num_groups groups.
    chunks.sort(key=len, reverse=True)
    groups: list[list[str]] = [[] for _ in range(num_groups)]
    for chunk in chunks:
        target = None
        for group in groups:
            if len(group) + len(chunk) <= capacity:
                target = group
                break
        if target is None:
            # No group has room for the whole chunk: spill item by item.
            for item in chunk:
                spill = min(groups, key=len)
                if len(spill) >= capacity:  # pragma: no cover - capacity checked
                    raise OptimizationError("no capacity left while packing")
                spill.append(item)
        else:
            target.extend(chunk)
    return groups


def community_placement(problem: PlacementProblem) -> Placement:
    """Community grouping followed by the standard ordering phase."""
    return order_groups(problem, community_groups(problem))
