"""True multi-DBC optimum via set-partition dynamic programming.

The per-DBC decomposition (docs/COST_MODEL.md §2) says a placement's cost is
the sum of each DBC's cost on its *restricted* subsequence — and that cost
depends only on which items share the DBC and how they are ordered, not on
what the other DBCs do.  The optimal placement therefore factors:

```
OPT = min over partitions {S_1..S_g}   Σ_d  group_cost(S_d)
group_cost(S) = min over orders+anchors of S   cost of trace|_S
```

``group_cost`` is computed exactly per subset with the MinLA subset DP plus
an anchor sweep scored by the true restricted-sequence evaluator; the outer
minimisation is a classic subset-partition DP (3ⁿ submask enumeration) with
a group-count bound.  Exact for single-port lazy geometries up to ~12 items
— roughly double the reach of the brute-force ``exhaustive_placement`` and
the honest multi-DBC OPT column for E8-style comparisons.
"""

from __future__ import annotations

from repro.core.exact import minla_exact_order
from repro.core.ordering import restricted_sequence_cost
from repro.core.placement import Placement, Slot
from repro.core.problem import PlacementProblem
from repro.errors import OptimizationError
from repro.trace.stats import affinity_graph

#: Hard cap: 3^n submask enumeration plus a 2^n·2^s DP per subset.
MAX_PARTITION_ITEMS = 12


def _group_cost_and_layout(
    problem: PlacementProblem,
    items: list[str],
) -> tuple[int, dict[str, int]]:
    """Exact cost and offset map of one group on its own DBC."""
    config = problem.config
    restricted = problem.trace.restricted_to(items)
    if len(restricted) == 0:
        return 0, {item: index for index, item in enumerate(items)}
    affinity = affinity_graph(restricted)
    first_item = restricted[0].item
    port = config.port_offsets[0]
    max_start = config.words_per_dbc - len(items)
    # Exact port-approach cost of the first item landing at position q,
    # minimised over feasible anchors (see exact_single_dbc_placement).
    approach = [
        max(0, q - port, port - q - max_start) for q in range(len(items))
    ]
    orders = [
        minla_exact_order(items, affinity),
        minla_exact_order(
            items, affinity, first_item=first_item, approach_costs=approach
        ),
    ]
    best_cost: int | None = None
    best_offsets: dict[str, int] | None = None
    for order in orders:
        for candidate in (order, list(reversed(order))):
            for start in range(max_start + 1):
                offsets = {
                    item: start + position
                    for position, item in enumerate(candidate)
                }
                cost = restricted_sequence_cost(restricted, offsets, config)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_offsets = offsets
    assert best_cost is not None and best_offsets is not None
    return best_cost, best_offsets


def partition_minimum(
    group_cost: dict[int, int],
    num_items: int,
    max_groups: int,
) -> tuple[int, list[int]]:
    """Minimum-cost partition of items ``{0..n-1}`` into feasible groups.

    ``group_cost`` maps subset bitmasks to their exact group cost; masks
    absent from it are infeasible (e.g. oversized).  Returns the optimal
    total and the chosen subset masks (at most ``max_groups`` of them).
    Classic submask-enumeration DP, canonicalised so each partition is
    counted once (every subset must contain the lowest uncovered item).
    Raises :class:`OptimizationError` when no feasible partition exists.
    """
    full = (1 << num_items) - 1
    INF = float("inf")
    # f[g][mask] = min cost covering `mask` with exactly g groups.
    f: list[dict[int, int | float]] = [dict() for _ in range(max_groups + 1)]
    f[0][0] = 0
    parent: dict[tuple[int, int], int] = {}
    for g in range(1, max_groups + 1):
        previous = f[g - 1]
        current = f[g]
        for mask, base in previous.items():
            remaining = full ^ mask
            if remaining == 0:
                if mask not in current or base < current[mask]:
                    current[mask] = base  # allow unused groups
                    parent[(g, mask)] = 0
                continue
            low_bit = remaining & -remaining
            rest = remaining ^ low_bit
            submask = rest
            while True:
                subset = submask | low_bit
                cost = group_cost.get(subset)
                if cost is not None:
                    candidate = base + cost
                    covered = mask | subset
                    if covered not in current or candidate < current[covered]:
                        current[covered] = candidate
                        parent[(g, covered)] = subset
                if submask == 0:
                    break
                submask = (submask - 1) & rest
    best_g: int | None = None
    best_value: int | float = INF
    for g in range(1, max_groups + 1):
        value = f[g].get(full, INF)
        if value < best_value:
            best_value = value
            best_g = g
    if best_g is None:
        raise OptimizationError(
            "no feasible partition (a group exceeds DBC capacity)"
        )
    groups: list[int] = []
    mask = full
    g = best_g
    while g > 0:
        subset = parent[(g, mask)]
        if subset:
            groups.append(subset)
        mask ^= subset
        g -= 1
    groups.reverse()
    return int(best_value), groups


def exact_partitioned_placement(
    problem: PlacementProblem,
    max_items: int = MAX_PARTITION_ITEMS,
) -> Placement:
    """Exact optimal placement (single-port, lazy) via partition DP.

    Contiguous within-group layouts are without loss of generality for a
    single port (compacting an order weakly decreases every pairwise
    distance, and the anchor sweep covers the approach term); with several
    ports the optimum may need *gaps* to straddle ports, so multi-port
    geometries are rejected rather than silently approximated.  Raises
    :class:`OptimizationError` beyond ``max_items`` items, for multi-port or
    eager geometries, or when the items cannot fit the configured capacity.
    """
    from repro.dwm.config import PortPolicy

    config = problem.config
    if config.num_ports != 1:
        raise OptimizationError(
            "exact_partitioned_placement is exact only for single-port DBCs; "
            "use exhaustive_placement for small multi-port instances"
        )
    if config.port_policy is not PortPolicy.LAZY:
        raise OptimizationError(
            "exact_partitioned_placement requires the lazy shift policy"
        )
    items = list(problem.items)
    n = len(items)
    if n > max_items:
        raise OptimizationError(
            f"exact_partitioned_placement supports at most {max_items} items, "
            f"got {n}"
        )
    if n > config.num_dbcs * config.words_per_dbc:
        raise OptimizationError("items exceed array capacity")
    capacity = config.words_per_dbc
    full = (1 << n) - 1

    # Pre-compute exact group costs for every feasible subset.
    group_cost: dict[int, int] = {}
    group_layout: dict[int, dict[str, int]] = {}
    for mask in range(1, full + 1):
        size = mask.bit_count()
        if size > capacity:
            continue
        members = [items[i] for i in range(n) if mask & (1 << i)]
        cost, offsets = _group_cost_and_layout(problem, members)
        group_cost[mask] = cost
        group_layout[mask] = offsets

    _, groups = partition_minimum(group_cost, n, min(config.num_dbcs, n))
    mapping: dict[str, Slot] = {}
    for dbc, subset in enumerate(groups):
        for item, offset in group_layout[subset].items():
            mapping[item] = Slot(dbc, offset)
    return Placement(mapping)
