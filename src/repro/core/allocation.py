"""SPM allocation: which data objects deserve scratchpad residence at all.

The placement paper assumes everything fits in the DWM scratchpad.  Upstream
of placement sits the classic SPM *allocation* problem: the working set is
bigger than the scratchpad, objects (whole arrays / scalars) must be split
between the SPM and slow background memory, and the choice interacts with
placement — an object that would incur many shifts is worth less SPM space
than its raw access count suggests.

This module builds that substrate:

* :func:`partition_objects` — group word-granular trace items into objects
  (``"A[3]"`` → array ``A``; scalars stand alone) with sizes and heat;
* :func:`allocate` — select objects under a capacity budget by exact 0/1
  knapsack over object sizes, with either a **placement-oblivious** benefit
  (every SPM access saves ``dram − spm`` latency) or a **placement-aware**
  benefit (the shift cost of the would-be resident set, estimated by
  actually running the placement heuristic on it, is charged against the
  saving);
* :func:`simulate_allocation` — total latency of a run where non-resident
  accesses pay the background-memory latency.

Experiment E14 sweeps the capacity and compares the two benefit models.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.cost import evaluate_placement
from repro.core.heuristic import heuristic_placement
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig
from repro.dwm.energy import DWMEnergyParams
from repro.errors import OptimizationError
from repro.trace.model import AccessTrace

_ARRAY_ELEMENT = re.compile(r"^(?P<base>.+)\[(?P<index>-?\d+)\]$")


@dataclass(frozen=True)
class DataObject:
    """An allocatable unit: a whole array or a standalone scalar."""

    name: str
    items: tuple[str, ...]
    accesses: int

    @property
    def size_words(self) -> int:
        return len(self.items)

    @property
    def heat_density(self) -> float:
        """Accesses per word — the greedy allocation ranking."""
        return self.accesses / self.size_words


def object_name_of(item: str) -> str:
    """Object an item belongs to (array base name, or the item itself)."""
    match = _ARRAY_ELEMENT.match(item)
    return match.group("base") if match else item


def partition_objects(trace: AccessTrace) -> list[DataObject]:
    """Group the trace's items into objects, ordered by first touch."""
    members: dict[str, list[str]] = {}
    accesses: dict[str, int] = {}
    for item in trace.items:
        members.setdefault(object_name_of(item), []).append(item)
    for access in trace:
        name = object_name_of(access.item)
        accesses[name] = accesses.get(name, 0) + 1
    return [
        DataObject(
            name=name,
            items=tuple(items),
            accesses=accesses.get(name, 0),
        )
        for name, items in members.items()
    ]


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of an SPM allocation decision."""

    resident_objects: tuple[str, ...]
    placement: Placement
    capacity_words: int
    used_words: int
    policy: str

    def is_resident(self, item: str) -> bool:
        return item in self.placement


def _knapsack_select(
    objects: list[DataObject],
    benefits: list[float],
    capacity: int,
) -> list[int]:
    """Exact 0/1 knapsack: indices of the benefit-maximal object subset."""
    n = len(objects)
    best = [[0.0] * (capacity + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        size = objects[i - 1].size_words
        benefit = max(0.0, benefits[i - 1])
        for c in range(capacity + 1):
            best[i][c] = best[i - 1][c]
            if size <= c:
                candidate = best[i - 1][c - size] + benefit
                if candidate > best[i][c]:
                    best[i][c] = candidate
    chosen: list[int] = []
    c = capacity
    for i in range(n, 0, -1):
        if best[i][c] != best[i - 1][c]:
            chosen.append(i - 1)
            c -= objects[i - 1].size_words
    chosen.reverse()
    return chosen


def _resident_placement(
    trace: AccessTrace,
    resident_items: set[str],
    config: DWMConfig,
    placement_method: str = "heuristic",
) -> Placement:
    """Placement of the resident sub-trace (empty set allowed)."""
    sub_trace = trace.restricted_to(resident_items)
    if len(sub_trace) == 0:
        return Placement({})
    problem = PlacementProblem(trace=sub_trace, config=config)
    if placement_method == "heuristic":
        return heuristic_placement(problem)
    if placement_method == "declaration":
        from repro.core.baselines import declaration_order_placement

        return declaration_order_placement(problem)
    raise OptimizationError(
        f"unknown placement_method {placement_method!r}; "
        "expected 'heuristic' or 'declaration'"
    )


def allocate(
    trace: AccessTrace,
    config: DWMConfig,
    policy: str = "placement_aware",
    dram_latency_ns: float = 50.0,
    params: DWMEnergyParams | None = None,
    placement_method: str = "heuristic",
) -> AllocationResult:
    """Choose SPM-resident objects under the array's capacity.

    ``policy``:

    * ``"oblivious"`` — benefit = accesses × (dram − spm access latency);
      shifts are ignored, the classical SPM-allocation formulation.
    * ``"placement_aware"`` — each object's benefit is reduced by the shift
      latency it would pay in the SPM, measured by placing the object's own
      restricted trace with the heuristic (a solo estimate: interference
      between objects is second-order once each has its own DBC region).
      Shift-hungry objects therefore lose SPM space to cooler-but-cheaper
      ones in the same knapsack.
    """
    params = params or DWMEnergyParams()
    if policy not in ("oblivious", "placement_aware"):
        raise OptimizationError(
            f"unknown allocation policy {policy!r}; "
            "expected 'oblivious' or 'placement_aware'"
        )
    objects = partition_objects(trace)
    capacity = config.capacity_words
    spm_access = (params.read_latency_ns + params.write_latency_ns) / 2
    saving_per_access = max(0.0, dram_latency_ns - spm_access)
    benefits = [obj.accesses * saving_per_access for obj in objects]
    if policy == "placement_aware":
        for index, obj in enumerate(objects):
            if obj.size_words > capacity:
                benefits[index] = 0.0
                continue
            solo_placement = _resident_placement(trace, set(obj.items), config)
            solo_problem = PlacementProblem(
                trace=trace.restricted_to(obj.items), config=config
            )
            shifts = evaluate_placement(
                solo_problem, solo_placement, validate=False
            )
            benefits[index] -= shifts * params.shift_latency_ns
    chosen = _knapsack_select(objects, benefits, capacity)
    resident_items = {
        item for index in chosen for item in objects[index].items
    }
    placement = _resident_placement(
        trace, resident_items, config, placement_method=placement_method
    )
    return AllocationResult(
        resident_objects=tuple(objects[index].name for index in chosen),
        placement=placement,
        capacity_words=capacity,
        used_words=len(resident_items),
        policy=policy,
    )


@dataclass(frozen=True)
class AllocationSimulation:
    """Latency of a run split between SPM and background memory."""

    spm_accesses: int
    dram_accesses: int
    spm_shifts: int
    total_latency_ns: float

    @property
    def spm_hit_fraction(self) -> float:
        total = self.spm_accesses + self.dram_accesses
        if not total:
            return 0.0
        return self.spm_accesses / total


def simulate_allocation(
    trace: AccessTrace,
    config: DWMConfig,
    allocation: AllocationResult,
    dram_latency_ns: float = 50.0,
    params: DWMEnergyParams | None = None,
) -> AllocationSimulation:
    """Total latency with non-resident accesses served by background memory."""
    from repro.dwm.dbc import HeadModel

    params = params or DWMEnergyParams()
    heads = {dbc: HeadModel(config) for dbc in range(config.num_dbcs)}
    spm_accesses = 0
    dram_accesses = 0
    spm_shifts = 0
    latency = 0.0
    for access in trace:
        if allocation.is_resident(access.item):
            slot = allocation.placement[access.item]
            result = heads[slot.dbc].access(slot.offset, is_write=access.is_write)
            spm_shifts += result.shifts
            spm_accesses += 1
            latency += result.shifts * params.shift_latency_ns
            latency += (
                params.write_latency_ns if access.is_write
                else params.read_latency_ns
            )
        else:
            dram_accesses += 1
            latency += dram_latency_ns
    return AllocationSimulation(
        spm_accesses=spm_accesses,
        dram_accesses=dram_accesses,
        spm_shifts=spm_shifts,
        total_latency_ns=latency,
    )
