"""Analytical shift-cost evaluation of a placement against a trace.

:func:`evaluate_placement` is the reference cost function used by every
optimizer: it walks the trace once maintaining a head state per DBC, exactly
mirroring :class:`repro.dwm.dbc.HeadModel` (tests assert the two agree).  It
is written dictionary-light so that local-search loops can call it thousands
of times on small traces.

Also provided:

* :func:`linear_arrangement_cost` — the pairwise-decomposed cost
  ``Σ w(u,v)·|pos(u)−pos(v)|`` of a single-DBC order, which equals the true
  trace cost for a single DBC with a single port under the lazy policy
  (up to the first access's port approach).  This is the objective the exact
  DP optimizes.
* :func:`shift_lower_bound` — a cheap instance-wide lower bound used by the
  branch-and-bound exact search.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.dwm.config import PortPolicy
from repro.errors import PlacementError


def evaluate_placement(
    problem: PlacementProblem,
    placement: Placement,
    validate: bool = True,
) -> int:
    """Total shift operations of running the trace under ``placement``.

    Exactly reproduces the event-driven simulator's shift count (the two are
    differentially tested); this function is the optimizer-facing hot path.
    """
    config = problem.config
    if validate:
        placement.validate(config, problem.items)
    ports = config.port_offsets
    eager = config.port_policy is PortPolicy.EAGER
    # Pre-resolve every item to (dbc, offset) once.
    slot_of: dict[str, tuple[int, int]] = {}
    for item in problem.items:
        slot = placement[item]
        slot_of[item] = (slot.dbc, slot.offset)
    heads: dict[int, int] = {}
    total = 0
    if len(ports) == 1:
        port = ports[0]
        for access in problem.trace:
            dbc, offset = slot_of[access.item]
            target = offset - port
            head = heads.get(dbc, 0)
            if eager:
                total += 2 * abs(target)
            else:
                total += abs(target - head)
                heads[dbc] = target
    else:
        for access in problem.trace:
            dbc, offset = slot_of[access.item]
            head = heads.get(dbc, 0)
            best_cost = None
            best_target = 0
            for port in ports:
                target = offset - port
                cost = abs(target - head)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_target = target
            if eager:
                # Cheapest approach from rest, then return to rest.
                approach = min(abs(offset - port) for port in ports)
                total += 2 * approach
            else:
                total += best_cost
                heads[dbc] = best_target
    return total


def per_dbc_costs(
    problem: PlacementProblem,
    placement: Placement,
) -> dict[int, int]:
    """Shift cost attributed to each DBC (sums to the total)."""
    config = problem.config
    placement.validate(config, problem.items)
    ports = config.port_offsets
    eager = config.port_policy is PortPolicy.EAGER
    heads: dict[int, int] = {}
    costs: dict[int, int] = {}
    for access in problem.trace:
        slot = placement[access.item]
        head = heads.get(slot.dbc, 0)
        best_cost = None
        best_target = 0
        for port in ports:
            target = slot.offset - port
            cost = abs(target - head)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_target = target
        if eager:
            approach = min(abs(slot.offset - port) for port in ports)
            costs[slot.dbc] = costs.get(slot.dbc, 0) + 2 * approach
        else:
            costs[slot.dbc] = costs.get(slot.dbc, 0) + best_cost
            heads[slot.dbc] = best_target
    return costs


def linear_arrangement_cost(
    order: Sequence[str],
    affinity: dict[tuple[str, str], int],
) -> int:
    """Pairwise cost ``Σ w(u,v)·|pos(u)−pos(v)|`` of a linear order.

    For a *single* DBC with a *single* port and the lazy policy, the trace's
    intra-DBC shift cost equals exactly this quantity plus the initial port
    approach, because each consecutive access pair (u, v) contributes
    ``|pos(u) − pos(v)|`` shifts.  This is the Minimum Linear Arrangement
    objective over the affinity graph.
    """
    position = {item: index for index, item in enumerate(order)}
    if len(position) != len(order):
        raise PlacementError("order contains duplicate items")
    total = 0
    for (left, right), weight in affinity.items():
        if left in position and right in position:
            total += weight * abs(position[left] - position[right])
    return total


def shift_lower_bound(problem: PlacementProblem) -> int:
    """Instance-wide lower bound on the shift count of *any* placement.

    Three sound cases, by geometry:

    * **Eager policy** (any port count) — the total is exactly
      ``Σ_items freq(item) · 2·dist(offset(item))`` and the per-slot distance
      multiset is fixed by the geometry, so the minimum over injective
      assignments is the sorted pairing (rearrangement inequality): hottest
      items on the closest-to-port slots.  This bound is *tight* — some
      placement achieves it.
    * **Lazy, single port** — whenever ``n > num_dbcs``, capacity forces at
      least ``n − num_dbcs`` co-located item pairs (a partition into ``g ≤
      num_dbcs`` groups merges ``n − g`` times, and each merge co-locates at
      least one new pair).  A co-located adjacent pair (u, v) costs at least
      its full-trace affinity weight ``w(u, v)`` (restriction to the DBC's
      subsequence preserves adjacency, and ``|pos(u) − pos(v)| ≥ 1``).  An
      adversary co-locates the lightest pairs first — zero-weight pairs
      (never adjacent in the trace) before any weighted edge — so the bound
      is the sum of the smallest ``n − num_dbcs`` pairwise weights, zeros
      included.
    * **Lazy, multi port** — a co-located adjacent pair can be *free* (the
      head can leave u under one port with v under another), so the only
      sound cheap bound is 0.

    Used by the exhaustive search as an optimality early-exit; see
    :func:`single_dbc_lower_bound` for the per-order bound branch-and-bound
    uses inside one DBC.
    """
    config = problem.config
    n = problem.num_items
    if config.port_policy is PortPolicy.EAGER:
        # Distance multiset: each per-DBC offset distance repeated num_dbcs
        # times; pair ascending distances with descending frequencies.
        per_dbc = sorted(
            2 * min(abs(offset - port) for port in config.port_offsets)
            for offset in range(config.words_per_dbc)
        )
        frequencies = sorted(
            problem.trace.frequencies().values(), reverse=True
        )
        total = 0
        rank = 0
        for distance in per_dbc:
            for _ in range(config.num_dbcs):
                if rank >= len(frequencies):
                    return total
                total += frequencies[rank] * distance
                rank += 1
        return total
    if len(config.port_offsets) > 1:
        return 0
    forced_pairs = n - config.num_dbcs
    if forced_pairs <= 0:
        return 0
    zero_pairs = n * (n - 1) // 2 - len(problem.affinity)
    if forced_pairs <= zero_pairs:
        return 0
    weights = sorted(problem.affinity.values())
    return sum(weights[: forced_pairs - zero_pairs])


def single_dbc_lower_bound(
    remaining: Sequence[str],
    affinity: dict[tuple[str, str], int],
) -> int:
    """Lower bound on the MinLA cost of any order of ``remaining`` items.

    Every affinity edge between distinct items contributes at least
    ``weight * 1`` (adjacent positions); summing edge weights therefore lower
    bounds the arrangement cost.  Cheap and admissible — used to prune the
    exact search.
    """
    members = set(remaining)
    total = 0
    for (left, right), weight in affinity.items():
        if left in members and right in members and left != right:
            total += weight
    return total
