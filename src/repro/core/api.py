"""High-level placement API.

:func:`optimize_placement` is the one-call entry point used by the examples
and the benchmark harness: give it a trace (and optionally a geometry) and a
method name, get back a :class:`~repro.core.problem.PlacementResult` holding
the placement, its exact shift count, and the algorithm runtime.

Available methods (see :data:`ALGORITHMS`):

``declaration``, ``random``, ``frequency``, ``heuristic`` (the paper's
algorithm), ``heuristic+ls`` (with local-search polish), ``grouping_only``,
``ordering_only`` (ablations), ``spectral``, ``annealing``,
``shiftsreduce`` (bidirectional placement, arXiv 1903.03597),
``generalized`` (port-aware strategies, arXiv 1912.03507), ``exact``
(small instances only).

Staged pipeline
---------------
:func:`optimize_placement` is a thin composition of three explicit stages,
each independently callable:

1. :func:`resolve_placement` — trace + geometry → validated
   :class:`~repro.core.problem.PlacementProblem`, with the trace's dense
   arrays resolved once (and shared by every later consumer of the same
   trace object);
2. :func:`plan_placement` — problem + method → :class:`PlacementPlan`
   (the chosen placement plus the algorithm runtime);
3. :func:`execute_plan` — problem + plan → evaluated
   :class:`~repro.core.problem.PlacementResult`.

Long-running services hold the resolved problem across many requests,
interleave planning and execution of different jobs, and can shed or
preempt between stages; the composition is bit-identical to calling
:func:`optimize_placement` directly (``tests/test_serve_stages.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.baselines import (
    declaration_order_placement,
    frequency_placement,
    random_placement,
)
from repro.core.community import community_placement
from repro.core.exact import (
    MAX_BRUTE_FORCE_ITEMS,
    exact_single_dbc_placement,
    exhaustive_placement,
)
from repro.core.fast_eval import evaluate_placement_auto
from repro.core.generalized import generalized_placement
from repro.core.heuristic import (
    grouping_only_placement,
    heuristic_placement,
    ordering_only_placement,
)
from repro.core.shiftsreduce import shiftsreduce_placement
from repro.core.local_search import (
    simulated_annealing,
    swap_refinement,
    two_opt_refinement,
)
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem, PlacementResult
from repro.core.spectral import spectral_placement
from repro.dwm.config import DWMConfig
from repro.errors import OptimizationError
from repro.trace.model import AccessTrace


def _exact_dispatch(problem: PlacementProblem, **kwargs) -> Placement:
    """Strongest exact method the instance admits.

    Single-port lazy geometries: the MinLA subset DP when everything fits
    one DBC (n ≤ 16), else the set-partition DP (n ≤ 12).  Anything else
    falls back to the guarded brute force.
    """
    from repro.core.exact_partition import (
        MAX_PARTITION_ITEMS,
        exact_partitioned_placement,
    )
    from repro.dwm.config import PortPolicy

    single_port_lazy = (
        problem.config.num_ports == 1
        and problem.config.port_policy is PortPolicy.LAZY
    )
    if single_port_lazy and problem.num_items <= problem.config.words_per_dbc:
        if problem.num_items <= 16 and problem.config.num_dbcs == 1:
            return exact_single_dbc_placement(problem)
    if single_port_lazy and problem.num_items <= MAX_PARTITION_ITEMS:
        return exact_partitioned_placement(problem)
    return exhaustive_placement(
        problem, max_items=kwargs.get("max_items", MAX_BRUTE_FORCE_ITEMS)
    )


def _heuristic_with_ls(problem: PlacementProblem, **kwargs) -> Placement:
    placement = heuristic_placement(problem)
    placement = two_opt_refinement(
        problem,
        placement,
        max_evaluations=kwargs.get("max_evaluations", 5000),
    )
    return swap_refinement(
        problem,
        placement,
        max_evaluations=kwargs.get("max_evaluations", 5000),
    )


ALGORITHMS: dict[str, Callable[..., Placement]] = {
    "declaration": lambda problem, **kw: declaration_order_placement(problem),
    "random": lambda problem, **kw: random_placement(problem, seed=kw.get("seed", 0)),
    "frequency": lambda problem, **kw: frequency_placement(
        problem, distribute=kw.get("distribute", "round_robin")
    ),
    "heuristic": lambda problem, **kw: heuristic_placement(
        problem,
        refine_groups=kw.get("refine_groups", True),
        num_groups=kw.get("num_groups"),
    ),
    "heuristic+ls": _heuristic_with_ls,
    "grouping_only": lambda problem, **kw: grouping_only_placement(problem),
    "ordering_only": lambda problem, **kw: ordering_only_placement(problem),
    "spectral": lambda problem, **kw: spectral_placement(problem),
    "community": lambda problem, **kw: community_placement(problem),
    "shiftsreduce": lambda problem, **kw: shiftsreduce_placement(
        problem, num_groups=kw.get("num_groups")
    ),
    "generalized": lambda problem, **kw: generalized_placement(
        problem, num_groups=kw.get("num_groups")
    ),
    "annealing": lambda problem, **kw: simulated_annealing(
        problem,
        heuristic_placement(problem),
        seed=kw.get("seed", 0),
        max_evaluations=kw.get("max_evaluations", 20000),
    ),
    "exact": _exact_dispatch,
}


# Optional process-global placement cache.  The core layer must not import
# the analysis layer, so the cache object (repro.analysis.cache.ResultCache)
# is injected through this hook; ``None`` means caching is off.  The hook
# only requires ``lookup_placement``/``store_placement`` methods.
_PLACEMENT_CACHE = None


def set_placement_cache(cache):
    """Install (or, with ``None``, remove) the global placement cache.

    Returns the previously installed cache so callers can scope activation
    with try/finally.
    """
    global _PLACEMENT_CACHE
    previous = _PLACEMENT_CACHE
    _PLACEMENT_CACHE = cache
    return previous


def get_placement_cache():
    """The currently installed placement cache, or ``None``."""
    return _PLACEMENT_CACHE


def build_problem(
    trace: AccessTrace,
    config: DWMConfig | None = None,
    words_per_dbc: int = 64,
    num_ports: int = 1,
) -> PlacementProblem:
    """Wrap a trace into a problem, sizing the array to fit if needed."""
    if config is None:
        config = DWMConfig.for_items(
            trace.num_items,
            words_per_dbc=words_per_dbc,
            num_ports=num_ports,
        )
    return PlacementProblem(trace=trace, config=config)


@dataclass(frozen=True)
class PlacementPlan:
    """Output of the planning stage: a placement awaiting evaluation.

    Carries everything :func:`execute_plan` needs plus the bookkeeping
    (method, kwargs, algorithm runtime) that ends up in the final
    :class:`~repro.core.problem.PlacementResult`.
    """

    method: str
    placement: Placement
    runtime_seconds: float
    kwargs: dict = field(default_factory=dict)


def resolve_placement(
    trace: AccessTrace,
    config: DWMConfig | None = None,
) -> PlacementProblem:
    """Stage 1: wrap ``trace`` into a validated problem, resolving once.

    For in-memory traces the dense per-access arrays are resolved eagerly
    and cached on the trace object, so every later stage — and every other
    request sharing the same trace object, which is how the placement
    server amortises resolution across its clients — reuses them instead
    of re-running the O(accesses) Python loop.
    """
    problem = build_problem(trace, config)
    if isinstance(trace, AccessTrace):
        from repro.memory.batch_sim import resolve_trace

        resolve_trace(trace)
    return problem


def plan_placement(
    problem: PlacementProblem,
    method: str = "heuristic",
    **kwargs,
) -> PlacementPlan:
    """Stage 2: run the placement algorithm (the compute-heavy stage)."""
    if method not in ALGORITHMS:
        raise OptimizationError(
            f"unknown method {method!r}; available: {sorted(ALGORITHMS)}"
        )
    from repro.obs.metrics import get_registry
    from repro.obs.tracing import trace_span

    registry = get_registry()
    registry.inc("optimize.runs", method=method)
    start = time.perf_counter()
    with trace_span("optimize", method=method):
        placement = ALGORITHMS[method](problem, **kwargs)
    runtime = time.perf_counter() - start
    registry.observe("optimize.seconds", runtime, method=method)
    return PlacementPlan(
        method=method,
        placement=placement,
        runtime_seconds=runtime,
        kwargs=dict(kwargs),
    )


def execute_plan(
    problem: PlacementProblem,
    plan: PlacementPlan,
) -> PlacementResult:
    """Stage 3: validate the planned placement and evaluate it exactly."""
    plan.placement.validate(problem.config, problem.items)
    shifts = evaluate_placement_auto(problem, plan.placement, validate=False)
    return PlacementResult(
        method=plan.method,
        placement=plan.placement,
        total_shifts=shifts,
        runtime_seconds=plan.runtime_seconds,
        details={
            "num_accesses": len(problem.trace),
            "num_items": problem.trace.num_items,
            "config": problem.config.describe(),
            "trace": problem.trace.name,
        },
    )


def optimize_placement(
    trace: AccessTrace,
    config: DWMConfig | None = None,
    method: str = "heuristic",
    **kwargs,
) -> PlacementResult:
    """Run a placement algorithm and evaluate it exactly.

    Composes the staged pipeline (:func:`resolve_placement` →
    :func:`plan_placement` → :func:`execute_plan`) behind the original
    one-call signature, with the injected result cache consulted between
    resolution and planning.

    Parameters
    ----------
    trace:
        The access trace to place for.
    config:
        Array geometry; defaults to the smallest single-port array with
        64-word DBCs that fits the trace's items.
    method:
        Algorithm name from :data:`ALGORITHMS`.
    kwargs:
        Passed through to the algorithm (``seed``, ``max_evaluations``, …).

    Returns
    -------
    PlacementResult
        Placement, exact total shift count, runtime, and bookkeeping.
    """
    if method not in ALGORITHMS:
        raise OptimizationError(
            f"unknown method {method!r}; available: {sorted(ALGORITHMS)}"
        )
    if not isinstance(trace, AccessTrace) and hasattr(trace, "sample_trace"):
        # Out-of-core traces (repro.trace.binio.StreamingTrace) are placed
        # from a bounded-size sample: the sample covers every item (so the
        # placement is complete) and approximates the affinity statistics;
        # the placement's true cost is then evaluated exactly by whichever
        # engine replays the full trace.
        sampled = trace.sample_trace()
        result = optimize_placement(sampled, config, method=method, **kwargs)
        result.details["sampled_from"] = trace.name
        result.details["sampled_accesses"] = len(sampled)
        result.details["full_accesses"] = len(trace)
        return result
    problem = resolve_placement(trace, config)
    cache = _PLACEMENT_CACHE
    if cache is not None:
        cached = cache.lookup_placement(trace, problem.config, method, kwargs)
        if cached is not None:
            return cached
    plan = plan_placement(problem, method, **kwargs)
    result = execute_plan(problem, plan)
    if cache is not None:
        cache.store_placement(trace, problem.config, method, kwargs, result)
    return result


def compare_methods(
    trace: AccessTrace,
    config: DWMConfig | None = None,
    methods: tuple[str, ...] = ("declaration", "random", "frequency", "heuristic"),
    **kwargs,
) -> dict[str, PlacementResult]:
    """Run several methods on the same problem (one row of the E3 figure)."""
    return {
        method: optimize_placement(trace, config, method=method, **kwargs)
        for method in methods
    }
