"""Shift-aware access reordering (compiler-side companion optimization).

Placement fixes *where* data lives; a compiler can additionally reorder
nearby independent accesses so the head sweeps monotonically instead of
ping-ponging — the DWM analogue of instruction scheduling for address
registers.  This module implements the conservative runtime-safe version:

* accesses are drawn from a sliding window of size ``window``;
* **program order is preserved per item** (two accesses to the same item
  never swap, so every read still sees the same last write), which is the
  only dependence the word-granular trace exposes;
* within the ready set the scheduler greedily issues the access whose slot
  is cheapest to reach from the current head of its DBC (ties: earliest in
  program order).

``window=1`` degenerates to the original order, so reordering composes with
any placement and can only be evaluated as a delta (experiment E16).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.dwm.config import PortPolicy
from repro.errors import OptimizationError
from repro.trace.model import AccessTrace


@dataclass(frozen=True)
class ReorderingResult:
    """Outcome of scheduling one trace."""

    trace: AccessTrace
    total_shifts: int
    original_shifts: int
    moved_accesses: int

    @property
    def reduction_percent(self) -> float:
        if not self.original_shifts:
            return 0.0
        return 100.0 * (self.original_shifts - self.total_shifts) / self.original_shifts


def reorder_accesses(
    problem: PlacementProblem,
    placement: Placement,
    window: int = 8,
) -> ReorderingResult:
    """Greedy shift-aware scheduling within a sliding window.

    Returns the reordered trace plus its exact shift cost; the per-item
    subsequences of the result equal those of the input (tested property).
    """
    if window < 1:
        raise OptimizationError(f"window must be >= 1, got {window}")
    config = problem.config
    placement.validate(config, problem.items)
    ports = config.port_offsets
    eager = config.port_policy is PortPolicy.EAGER
    accesses = list(problem.trace)
    slot_of = {item: placement[item] for item in problem.items}
    heads: dict[int, int] = {}
    scheduled = []
    total = 0
    moved = 0
    next_index = 0  # first access not yet inside the window
    pending: list[int] = []  # indices currently in the window, program order
    issued_count_per_item: dict[str, int] = {}
    # Pre-compute each access's per-item sequence number so readiness is O(1):
    # an access is ready when all earlier accesses to the same item issued.
    per_item_rank: list[int] = []
    seen: dict[str, int] = {}
    for access in accesses:
        rank = seen.get(access.item, 0)
        per_item_rank.append(rank)
        seen[access.item] = rank + 1

    def access_cost(index: int) -> tuple[int, int]:
        """(cost, new_head) of issuing access ``index`` now."""
        slot = slot_of[accesses[index].item]
        head = heads.get(slot.dbc, 0)
        best_cost = None
        best_target = 0
        for port in ports:
            target = slot.offset - port
            cost = abs(target - head)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_target = target
        if eager:
            approach = min(abs(slot.offset - port) for port in ports)
            return 2 * approach, 0
        assert best_cost is not None
        return best_cost, best_target

    position = 0
    while pending or next_index < len(accesses):
        while len(pending) < window and next_index < len(accesses):
            pending.append(next_index)
            next_index += 1
        # Ready accesses: all earlier same-item accesses already issued.
        best_pending_pos = None
        best_key = None
        for pending_pos, index in enumerate(pending):
            access = accesses[index]
            if per_item_rank[index] != issued_count_per_item.get(access.item, 0):
                continue
            cost, _target = access_cost(index)
            key = (cost, index)
            if best_key is None or key < best_key:
                best_key = key
                best_pending_pos = pending_pos
        assert best_pending_pos is not None  # the window head is always ready
        index = pending.pop(best_pending_pos)
        access = accesses[index]
        cost, new_head = access_cost(index)
        slot = slot_of[access.item]
        heads[slot.dbc] = new_head
        total += cost
        if index != position:
            moved += 1
        position += 1
        issued_count_per_item[access.item] = (
            issued_count_per_item.get(access.item, 0) + 1
        )
        scheduled.append(access)
    from repro.core.fast_eval import evaluate_placement_auto

    original = evaluate_placement_auto(problem, placement, validate=False)
    if total > original:
        # The greedy schedule is myopic and can lose; a compiler would keep
        # the original order in that case, and so do we (total <= original
        # is therefore an invariant of this function).
        return ReorderingResult(
            trace=problem.trace,
            total_shifts=original,
            original_shifts=original,
            moved_accesses=0,
        )
    reordered_trace = AccessTrace(
        scheduled,
        name=f"{problem.trace.name}|reordered(w={window})",
        metadata=problem.trace.metadata,
    )
    return ReorderingResult(
        trace=reordered_trace,
        total_shifts=total,
        original_shifts=original,
        moved_accesses=moved,
    )
