"""Online (adaptive) data placement with migration accounting.

The paper's algorithm is *static*: it sees the whole trace up front.  Real
workloads shift phase, so a natural extension — flagged as future work in
this literature — is an online placer that periodically re-optimizes from
the recent access window and migrates data accordingly.  Migration is not
free on DWM: moving a word costs a read and a write plus the shifts both
accesses incur, and this module charges all of it.

:class:`OnlinePlacer` implements the policy; :func:`compare_static_vs_online`
runs the three-way comparison of experiment E13 (static-on-first-window vs
oracle static vs online) on phase-changing workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import evaluate_placement
from repro.core.fast_eval import (
    FAST_EVAL_MIN_ACCESSES,
    evaluate_placement_auto,
    evaluate_placements_fast,
)
from repro.core.heuristic import heuristic_placement
from repro.core.placement import Placement
from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig
from repro.dwm.dbc import HeadModel
from repro.errors import OptimizationError
from repro.trace.model import AccessTrace


@dataclass(frozen=True)
class OnlineResult:
    """Outcome of an online-placement run."""

    access_shifts: int
    migration_shifts: int
    migrated_words: int
    replacements: int

    @property
    def total_shifts(self) -> int:
        """Shifts paid for accesses plus shifts paid to migrate data."""
        return self.access_shifts + self.migration_shifts


class OnlinePlacer:
    """Window-based adaptive placement.

    Every ``window`` accesses the placer re-optimizes using the just-finished
    window as its trace sample.  The new placement is adopted only if its
    *predicted* saving on that sample exceeds the migration bill
    (``hysteresis`` scales how much better it must be).
    """

    def __init__(
        self,
        config: DWMConfig,
        window: int = 512,
        hysteresis: float = 1.5,
        amortization_windows: int = 4,
    ) -> None:
        if window <= 0:
            raise OptimizationError(f"window must be positive, got {window}")
        if hysteresis < 1.0:
            raise OptimizationError("hysteresis must be >= 1.0")
        if amortization_windows < 1:
            raise OptimizationError("amortization_windows must be >= 1")
        self.config = config
        self.window = window
        self.hysteresis = hysteresis
        # A migration pays off over future windows, not just the one that
        # triggered it; the saving is amortized over this horizon.
        self.amortization_windows = amortization_windows

    # ------------------------------------------------------------------
    def _migration_bill(
        self,
        old: Placement,
        new: Placement,
        items,
        heads: dict[int, HeadModel],
    ) -> tuple[int, int]:
        """(shifts, words) to move every relocated item old→new slot.

        Each relocated word costs a read at its old slot and a write at the
        new one, using (and updating) the live head state of both DBCs.
        """
        shifts = 0
        moved = 0
        for item in items:
            src = old[item]
            dst = new[item]
            if src == dst:
                continue
            moved += 1
            shifts += heads[src.dbc].access(src.offset, is_write=False).shifts
            shifts += heads[dst.dbc].access(dst.offset, is_write=True).shifts
        return shifts, moved

    def run(self, trace: AccessTrace) -> OnlineResult:
        """Run the adaptive policy over the whole trace."""
        if len(trace) == 0:
            return OnlineResult(0, 0, 0, 0)
        first_window = trace.truncated(min(self.window, len(trace)))
        problem = PlacementProblem(trace=first_window, config=self.config)
        # The first placement must cover items that appear only later:
        # unknown items are appended in first-touch order to free slots.
        placement = _extend_placement(
            heuristic_placement(problem), trace, self.config
        )
        heads = {
            dbc: HeadModel(self.config) for dbc in range(self.config.num_dbcs)
        }
        access_shifts = 0
        migration_shifts = 0
        migrated = 0
        replacements = 0
        window_accesses: list = []
        for access in trace:
            slot = placement[access.item]
            access_shifts += heads[slot.dbc].access(
                slot.offset, is_write=access.is_write
            ).shifts
            window_accesses.append(access)
            if len(window_accesses) < self.window:
                continue
            sample = AccessTrace(window_accesses, name="window")
            window_accesses = []
            sample_problem = PlacementProblem(trace=sample, config=self.config)
            candidate = _extend_placement(
                heuristic_placement(sample_problem), trace, self.config
            )
            if len(sample) >= FAST_EVAL_MIN_ACCESSES:
                # Batch evaluation shares the window's trace resolution
                # between the incumbent and the candidate.
                current_cost, candidate_cost = evaluate_placements_fast(
                    sample_problem, [placement, candidate], validate=False
                )
            else:
                current_cost = evaluate_placement(
                    sample_problem, placement, validate=False
                )
                candidate_cost = evaluate_placement(
                    sample_problem, candidate, validate=False
                )
            saving = (current_cost - candidate_cost) * self.amortization_windows
            bill, _words = _predict_migration(placement, candidate, trace.items)
            if saving > self.hysteresis * bill:
                shifts, moved = self._migration_bill(
                    placement, candidate, trace.items, heads
                )
                migration_shifts += shifts
                migrated += moved
                replacements += 1
                placement = candidate
        return OnlineResult(
            access_shifts=access_shifts,
            migration_shifts=migration_shifts,
            migrated_words=migrated,
            replacements=replacements,
        )


def _predict_migration(old: Placement, new: Placement, items) -> tuple[int, int]:
    """Cheap upper-ish estimate of a migration bill (no head state)."""
    shifts = 0
    words = 0
    for item in items:
        src, dst = old[item], new[item]
        if src != dst:
            words += 1
            shifts += abs(src.offset) + abs(dst.offset)
    return shifts, words


def _extend_placement(
    placement: Placement, full_trace: AccessTrace, config: DWMConfig
) -> Placement:
    """Give slots to items the optimization window never saw."""
    mapping = dict(placement.as_dict())
    occupied = {tuple(slot) for slot in mapping.values()}
    free = [
        (dbc, offset)
        for dbc in range(config.num_dbcs)
        for offset in range(config.words_per_dbc)
        if (dbc, offset) not in occupied
    ]
    free_iter = iter(free)
    for item in full_trace.items:
        if item not in mapping:
            try:
                mapping[item] = next(free_iter)
            except StopIteration:  # pragma: no cover - capacity checked upstream
                raise OptimizationError("no free slot for late item") from None
    return Placement(mapping)


def compare_static_vs_online(
    trace: AccessTrace,
    config: DWMConfig,
    window: int = 512,
) -> dict[str, int]:
    """Three-way comparison on one (typically phase-changing) trace.

    Returns total shifts for: ``static_first_window`` (optimize on the first
    window only — what a profile-once deployment does), ``oracle_static``
    (the paper's algorithm with the whole trace), and ``online`` (adaptive,
    including migration costs).
    """
    problem = PlacementProblem(trace=trace, config=config)
    first = trace.truncated(min(window, len(trace)))
    first_problem = PlacementProblem(trace=first, config=config)
    static_first = _extend_placement(
        heuristic_placement(first_problem), trace, config
    )
    oracle = heuristic_placement(problem)
    online = OnlinePlacer(config, window=window).run(trace)
    return {
        "static_first_window": evaluate_placement_auto(problem, static_first),
        "oracle_static": evaluate_placement_auto(problem, oracle),
        "online": online.total_shifts,
        "online_migration": online.migration_shifts,
        "online_replacements": online.replacements,
    }
