"""Incremental (delta) shift-cost evaluation — the optimizer hot path.

Every local-search optimizer scores candidate moves (swap two items, move an
item to a free slot, reverse a segment) against the exact trace cost.  The
reference evaluator (:func:`repro.core.cost.evaluate_placement`) re-walks the
*entire* trace per candidate — O(T) per move.  :class:`CostEvaluator`
exploits the per-DBC decomposition (docs/COST_MODEL.md §2) to score a move
as a **delta touching only the affected DBCs' access subsequences** —
O(T_affected) per move, exact for every port count and policy:

* **eager** (any port count) — each access costs ``2·min_p|offset−p|``
  independent of history, so an item's contribution is
  ``freq(item)·2·dist(offset)`` and a move is O(1) per moved item;
* **lazy, single port** — a DBC's cost is ``|t₁| + Σ|Δt|`` over its
  restricted target subsequence (the diff decomposition proven in
  :mod:`repro.core.fast_eval`), recomputed vectorised for the touched DBCs
  only;
* **lazy, multi port** — head-dependent port choice is sequential, so the
  touched DBCs' subsequences are replayed scalar — still only the touched
  DBCs, never the full trace.

The evaluator maintains the current assignment mutably with ``apply_*`` /
``undo`` (no :class:`Placement` dict rebuild per candidate) and materialises
a :class:`Placement` only on demand.  Differential tests assert that totals
and deltas agree exactly with the reference evaluator under every policy ×
port-count combination, including after arbitrary apply/undo sequences.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core import kernels
from repro.core.placement import Placement, Slot
from repro.core.problem import PlacementProblem
from repro.dwm.config import PortPolicy
from repro.errors import PlacementError

#: Multi-port lazy subsequences at least this long replay through the
#: vectorised port-state fold (numpy fallback only; the compiled kernel
#: backend has no minimum); shorter ones use the scalar walk, which has
#: lower constant overhead.
MULTI_PORT_VECTOR_MIN = 256


def two_port_access_costs(offsets, ports):
    """Per-access shift costs of a lazy two-port replay.

    Dispatches to the compiled kernel backend
    (:func:`repro.core.kernels.compiled`) when one is active — a single
    fused walk, bit-identical by construction — and otherwise to the
    closed-form numpy formulation
    (:func:`two_port_access_costs_numpy`).
    """
    backend = kernels.compiled()
    if backend is not None:
        import numpy as np

        return backend.lazy_costs(offsets, np.asarray(ports, dtype=np.int64))
    return two_port_access_costs_numpy(offsets, ports)


def multi_port_access_costs(offsets, ports):
    """Per-access shift costs of a lazy multi-port replay (``P ≥ 2``).

    Compiled-kernel dispatch with the Hillis–Steele numpy scan
    (:func:`multi_port_access_costs_numpy`) as the fallback.
    """
    backend = kernels.compiled()
    if backend is not None:
        import numpy as np

        return backend.lazy_costs(offsets, np.asarray(ports, dtype=np.int64))
    return multi_port_access_costs_numpy(offsets, ports)


def two_port_access_costs_numpy(offsets, ports):
    """Per-access shift costs of a lazy two-port replay (closed form).

    Vectorised over the whole offset sequence: with two ports every step's
    transition on the (previous-port) state is either a constant (both
    states pick the same port — the chain converges and forgets its history)
    or a permutation (identity or swap, i.e. an XOR by 0 or 1).  The state
    before step ``t`` is therefore the last convergence value before ``t``
    (or the initial state) XOR-ed with the parity of swaps in between — all
    prefix scans, no sequential walk.  Strict ``<`` comparisons keep the
    lower port on ties, matching :func:`repro.dwm.dbc.port_access_cost`.

    Returns an int64 array of the same length as ``offsets`` whose sum is
    the total lazy cost of the sequence.  Shared by the incremental
    evaluator (which only needs the sum) and the vectorized simulation
    engine (which also needs per-access maxima and per-DBC attribution).
    """
    import numpy as np

    port_a, port_b = ports
    head_a = offsets if port_a == 0 else offsets - port_a
    head_b = offsets - port_b
    out = np.empty(offsets.size, dtype=np.int64)
    first_a = abs(int(head_a[0]))
    first_b = abs(int(head_b[0]))
    state = first_b < first_a  # tie → lower port
    out[0] = first_b if state else first_a
    if offsets.size == 1:
        return out
    # Step t serves access t+1; cost_qp = |head_p[t+1] − head_q[t]|.
    cost_aa = np.abs(head_a[1:] - head_a[:-1])
    cost_ab = np.abs(head_b[1:] - head_a[:-1])
    cost_ba = np.abs(head_a[1:] - head_b[:-1])
    cost_bb = np.abs(head_b[1:] - head_b[:-1])
    pick_b0 = cost_ab < cost_aa  # next state given previous state 0
    pick_b1 = cost_bb < cost_ba  # next state given previous state 1
    min0 = np.where(pick_b0, cost_ab, cost_aa)
    min1 = np.where(pick_b1, cost_bb, cost_ba)
    const = pick_b0 == pick_b1
    swap_flag = pick_b0 & ~const
    inclusive = np.bitwise_xor.accumulate(swap_flag)
    prefix = np.empty_like(inclusive)
    prefix[0] = False
    prefix[1:] = inclusive[:-1]
    # vals[j] carries a const step's output back to prefix-XOR space so
    # that state_before[t] = vals[j] ^ prefix[t] for the last const j < t.
    vals = pick_b0 ^ inclusive
    steps = offsets.size - 1
    anchors = np.where(const, np.arange(steps), -1)
    np.maximum.accumulate(anchors, out=anchors)
    last_const = np.empty_like(anchors)
    last_const[0] = -1
    last_const[1:] = anchors[:-1]
    base = np.where(last_const >= 0, vals[np.maximum(last_const, 0)], state)
    states = base ^ prefix
    out[1:] = np.where(states, min1, min0)
    return out


def multi_port_access_costs_numpy(offsets, ports):
    """Per-access shift costs of a lazy multi-port replay (``P ≥ 2``).

    After any access the head equals ``offset − p`` for exactly one port
    ``p``, so the walk is a deterministic automaton over ``P`` states.  The
    per-step (cost, next-state) tables over all P previous states are built
    vectorised, then the *prefix* state sequence is recovered with a
    Hillis–Steele scan of transition-function composition — O(k·P·log k)
    numpy work instead of an O(k·P) interpreted walk.  Greedy tie-breaks
    resolve to the lowest port (argmin-first), matching the reference
    evaluator exactly.

    Unlike :meth:`CostEvaluator._multi_port_vector_cost` (a pointer-doubling
    fold that only yields the total), this returns the full per-access cost
    vector, which the vectorized simulation engine needs for
    ``max_access_shifts`` and per-DBC attribution.
    """
    import numpy as np

    ports_arr = np.asarray(ports, dtype=np.int64)
    num_ports = ports_arr.size
    out = np.empty(offsets.size, dtype=np.int64)
    first_costs = np.abs(int(offsets[0]) - ports_arr)
    state = int(first_costs.argmin())
    out[0] = int(first_costs[state])
    if offsets.size == 1:
        return out
    targets = offsets[:, None] - ports_arr[None, :]  # (k, P) head candidates
    prev = targets[:-1]
    cur = targets[1:]
    # costs[t, q] / nexts[t, q]: cheapest port for access t+1 given the
    # previous access used port q; strict ``<`` keeps the lowest port on
    # ties, matching the reference evaluator.
    costs = np.abs(cur[:, 0, None] - prev)
    nexts = np.zeros_like(costs)
    for port_index in range(1, num_ports):
        candidate = np.abs(cur[:, port_index, None] - prev)
        better = candidate < costs
        costs = np.where(better, candidate, costs)
        nexts = np.where(better, port_index, nexts)
    # Hillis–Steele prefix composition: after the scan, comp[t][q] is the
    # state after steps 0..t given initial state q.
    comp = nexts
    steps = comp.shape[0]
    distance = 1
    while distance < steps:
        comp = np.concatenate(
            [
                comp[:distance],
                np.take_along_axis(comp[distance:], comp[:-distance], axis=1),
            ]
        )
        distance *= 2
    states = np.empty(steps, dtype=np.int64)
    states[0] = state
    states[1:] = comp[:-1, state]
    out[1:] = costs[np.arange(steps), states]
    return out


def lazy_costs_from_state(offsets, ports, head0):
    """Per-access lazy costs of a replay that starts with the head at
    ``head0`` instead of the fresh position 0.

    This is the boundary-state primitive of the streaming engine
    (:mod:`repro.memory.stream_sim`): a chunk's DBC subsequence is priced
    exactly as if it continued the previous chunk's walk, without the
    kernels growing a ``head0`` parameter.  The trick is pure arithmetic
    on the access sequence (docs/STREAMING.md §3):

    * **prepend** a synthetic access ``head0 + max(ports)`` (or
      ``head0 + min(ports)`` when ``head0 < 0``) — the greedy argmin
      provably serves it through that extreme port, leaving the head at
      exactly ``head0``; its cost is dropped;
    * **append** a probe access larger than every other target — the
      argmin provably serves it through ``max(ports)``, so the head the
      walk ended on is ``probe − max(ports) − cost(probe)``.

    Both paddings resolve their port strictly (no ties), so the result is
    bit-identical under every backend (numba / cc / numpy): they all
    compute the same forward-causal integer recurrence.

    ``ports`` must be ascending (as :class:`~repro.dwm.config.DWMConfig`
    normalises them).  Returns ``(costs, head_out)`` where ``costs`` has
    one entry per offset and ``head_out`` is the head position after the
    last access (``head0`` itself for an empty sequence).
    """
    import numpy as np

    offsets = np.asarray(offsets, dtype=np.int64)
    head0 = int(head0)
    if offsets.size == 0:
        return np.empty(0, dtype=np.int64), head0
    if len(ports) == 1:
        port = int(ports[0])
        targets = offsets if port == 0 else offsets - port
        costs = np.empty(targets.size, dtype=np.int64)
        costs[0] = abs(int(targets[0]) - head0)
        if targets.size > 1:
            np.abs(np.diff(targets), out=costs[1:])
        return costs, int(targets[-1])
    min_port = int(ports[0])
    max_port = int(ports[-1])
    anchor = head0 + (max_port if head0 >= 0 else min_port)
    probe = max(int(offsets.max()), head0, anchor) + max_port + 1
    padded = np.empty(offsets.size + 2, dtype=np.int64)
    padded[0] = anchor
    padded[1:-1] = offsets
    padded[-1] = probe
    if len(ports) == 2:
        full = two_port_access_costs(padded, ports)
    else:
        full = multi_port_access_costs(padded, ports)
    head_out = probe - max_port - int(full[-1])
    return full[1:-1].copy(), head_out


class CostEvaluator:
    """Exact incremental cost evaluation of moves on one placement.

    Parameters
    ----------
    problem:
        The placement problem (trace + geometry).  The trace is resolved
        once into per-item access-position arrays.
    placement:
        Starting placement.  Items of the placement that the problem's trace
        never touches are tracked for occupancy (they block slots) but
        contribute zero cost, mirroring the reference evaluator.
    validate:
        Validate the placement against the geometry first (default True).
    """

    def __init__(
        self,
        problem: PlacementProblem,
        placement: Placement,
        validate: bool = True,
    ) -> None:
        import numpy as np

        self._np = np
        self._problem = problem
        config = problem.config
        self._config = config
        self._ports: tuple[int, ...] = config.port_offsets
        self._ports_np = np.asarray(config.port_offsets, dtype=np.int64)
        self._eager = config.port_policy is PortPolicy.EAGER
        self._single_port = len(self._ports) == 1
        self._port = self._ports[0]
        #: compiled lazy-walk kernels (None → numpy/scalar fallback).
        self._kernel = None if self._eager else kernels.compiled()
        if validate:
            placement.validate(config, problem.items)

        items = problem.items
        self._items = items
        self._index = problem.item_index
        n = len(items)
        trace_len = len(problem.trace)
        item_at = np.fromiter(problem.index_sequence, np.int64, trace_len)
        self._item_at = item_at
        order = np.argsort(item_at, kind="stable")
        boundaries = np.searchsorted(item_at[order], np.arange(n + 1))
        #: trace positions of each item's accesses, ascending.
        self._positions: list = [
            order[boundaries[i] : boundaries[i + 1]] for i in range(n)
        ]
        self._freq = [int(boundaries[i + 1] - boundaries[i]) for i in range(n)]

        # Current assignment (dense per-item arrays; _offset_np mirrors
        # _offset for vectorised gathers).
        self._dbc: list[int] = [0] * n
        self._offset: list[int] = [0] * n
        self._offset_np = np.zeros(n, dtype=np.int64)
        self._members: dict[int, set[int]] = {}
        for i, item in enumerate(items):
            slot = placement[item]
            self._dbc[i] = slot.dbc
            self._offset[i] = slot.offset
            self._offset_np[i] = slot.offset
            self._members.setdefault(slot.dbc, set()).add(i)
        #: placement entries outside the trace: occupancy only, zero cost.
        self._extra: dict[str, tuple[int, int]] = {
            item: (slot.dbc, slot.offset)
            for item, slot in placement.items()
            if item not in self._index
        }
        self._occupied: set[tuple[int, int]] = {
            (self._dbc[i], self._offset[i]) for i in range(n)
        }
        self._occupied.update(self._extra.values())

        # Eager: 2 * distance-to-nearest-port per offset, precomputed.
        self._eager_dist: list[int] = [
            2 * min(abs(o - p) for p in self._ports)
            for o in range(config.words_per_dbc)
        ]
        self._item_cost: list[int] = [0] * n
        self._dbc_cost: dict[int, int] = {}
        self._dbc_positions: dict[int, object] = {}
        self._undo: list = []
        self._probe: tuple | None = None
        #: instrumentation: number of delta computations performed.
        self.delta_evaluations = 0
        #: instrumentation: number of applied (committed) moves.
        self.applied_moves = 0

        if self._eager:
            total = 0
            for i in range(n):
                cost = self._freq[i] * self._eager_dist[self._offset[i]]
                self._item_cost[i] = cost
                total += cost
            self._total = total
        else:
            total = 0
            for dbc, members in self._members.items():
                positions = self._merged_positions(members)
                self._dbc_positions[dbc] = positions
                cost = self._lazy_dbc_cost(positions)
                self._dbc_cost[dbc] = cost
                total += cost
            self._total = total

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Current exact total shift count."""
        return self._total

    def slot_of(self, item: str) -> Slot:
        """Current slot of ``item``."""
        if item in self._extra:
            return Slot(*self._extra[item])
        i = self._index.get(item)
        if i is None:
            raise PlacementError(f"item {item!r} has no placement")
        return Slot(self._dbc[i], self._offset[i])

    def placement(self) -> Placement:
        """Materialise the current assignment as a :class:`Placement`."""
        mapping: dict[str, Slot] = {
            item: Slot(self._dbc[i], self._offset[i])
            for i, item in enumerate(self._items)
        }
        for item, slot in self._extra.items():
            mapping[item] = Slot(*slot)
        return Placement(mapping)

    def dbcs_used(self) -> list[int]:
        """Sorted DBC indices holding at least one item (incl. extras)."""
        used = {dbc for dbc, members in self._members.items() if members}
        used.update(dbc for dbc, _ in self._extra.values())
        return sorted(used)

    def dbc_contents(self, dbc: int) -> dict[int, str]:
        """``{offset: item}`` for one DBC (incl. extras)."""
        contents = {
            self._offset[i]: self._items[i]
            for i in self._members.get(dbc, ())
        }
        for item, (extra_dbc, offset) in self._extra.items():
            if extra_dbc == dbc:
                contents[offset] = item
        return contents

    def free_slots(self) -> list[Slot]:
        """Unoccupied slots on used DBCs, in (DBC, offset) order.

        Matches the enumeration the local-search refiners historically used,
        so seeded runs stay reproducible.
        """
        occupied = self._occupied
        free: list[Slot] = []
        for dbc in self.dbcs_used():
            for offset in range(self._config.words_per_dbc):
                if (dbc, offset) not in occupied:
                    free.append(Slot(dbc, offset))
        return free

    # ------------------------------------------------------------------
    # Per-DBC machinery
    # ------------------------------------------------------------------
    def _merged_positions(self, members: Iterable[int]):
        """Ascending trace positions of all accesses to ``members``."""
        np = self._np
        arrays = [self._positions[i] for i in members]
        if not arrays:
            return np.empty(0, dtype=np.int64)
        if len(arrays) == 1:
            return arrays[0]
        merged = np.concatenate(arrays)
        merged.sort()
        return merged

    def _item_positions_union(self, indices):
        """Ascending trace positions of all accesses to ``indices``."""
        np = self._np
        if not indices:
            return np.empty(0, dtype=np.int64)
        if len(indices) == 1:
            return self._positions[next(iter(indices))]
        merged = np.concatenate([self._positions[i] for i in indices])
        merged.sort()
        return merged

    def _lazy_dbc_cost(self, positions) -> int:
        """Exact lazy-policy cost of one DBC's restricted subsequence."""
        np = self._np
        if positions.size == 0:
            return 0
        if self._kernel is not None:
            # Fused gather + walk in native code: no intermediate arrays,
            # one call for every port count.
            return self._kernel.lazy_chain_cost(
                positions, self._item_at, self._offset_np, self._ports_np
            )
        sequence = self._item_at[positions]
        offsets = self._offset_np[sequence]
        if self._single_port:
            targets = offsets - self._port
            cost = abs(int(targets[0]))
            if targets.size > 1:
                cost += int(np.abs(np.diff(targets)).sum())
            return cost
        # Multi-port: the chosen port depends on the running head, so the
        # subsequence replays sequentially (ties break to lower port,
        # matching the reference evaluator).  Long subsequences use the
        # vectorised port-state fold instead of the scalar walk.
        if offsets.size >= MULTI_PORT_VECTOR_MIN:
            if len(self._ports) == 2:
                return self._two_port_vector_cost(offsets)
            return self._multi_port_vector_cost(offsets)
        ports = self._ports
        head = 0
        total = 0
        for offset in offsets.tolist():
            best_cost = None
            best_target = 0
            for port in ports:
                target = offset - port
                cost = abs(target - head)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_target = target
            total += best_cost
            head = best_target
        return total

    def _multi_port_vector_cost(self, offsets) -> int:
        """Vectorised multi-port lazy replay via port-state folding.

        After any access the head equals ``offset − p`` for exactly one port
        ``p``, so the walk is a deterministic automaton over ``P`` states.
        Each step's (cost, next-state) tables over all P previous states are
        computed vectorised, then the chain is folded by associative pairwise
        composition (pointer doubling) — O(k·P²) numpy work and O(log k)
        python iterations instead of an O(k·P) interpreted walk.  Greedy
        tie-breaks resolve to the lowest port (argmin-first), matching the
        reference evaluator exactly.
        """
        np = self._np
        ports = np.asarray(self._ports, dtype=np.int64)
        num_ports = ports.size
        first_costs = np.abs(int(offsets[0]) - ports)
        state = int(first_costs.argmin())
        total = int(first_costs[state])
        if offsets.size == 1:
            return total
        targets = offsets[:, None] - ports[None, :]  # (k, P) head candidates
        prev = targets[:-1]
        cur = targets[1:]
        # costs[t, q] / nexts[t, q]: cheapest port for access t+1 given the
        # previous access used port q.  Built with one pass per port (P is
        # tiny) instead of a (k, P, P) reduction; strict ``<`` keeps the
        # lowest port on ties, matching the reference evaluator.
        costs = np.abs(cur[:, 0, None] - prev)
        nexts = np.zeros_like(costs)
        for port_index in range(1, num_ports):
            candidate = np.abs(cur[:, port_index, None] - prev)
            better = candidate < costs
            costs = np.where(better, candidate, costs)
            nexts = np.where(better, port_index, nexts)
        # Fold the chain by pairwise composition (pointer doubling); flat
        # gathers keep per-round numpy overhead low.
        while nexts.shape[0] > 1:
            length = nexts.shape[0]
            even = length // 2 * 2
            half = even // 2
            paired_next = np.ascontiguousarray(nexts[:even]).reshape(
                half, 2, num_ports
            )
            paired_cost = np.ascontiguousarray(costs[:even]).reshape(
                half, 2, num_ports
            )
            rows = np.arange(half)[:, None]
            first_next = paired_next[:, 0, :]
            folded_next = paired_next[:, 1, :][rows, first_next]
            folded_cost = (
                paired_cost[:, 0, :] + paired_cost[:, 1, :][rows, first_next]
            )
            if even < length:
                folded_next = np.concatenate([folded_next, nexts[-1:]])
                folded_cost = np.concatenate([folded_cost, costs[-1:]])
            nexts, costs = folded_next, folded_cost
        return total + int(costs[0, state])

    def _two_port_vector_cost(self, offsets) -> int:
        """Closed-form vectorised replay for the two-port automaton.

        With two ports every step's transition on the (previous-port) state
        is either a constant (both states pick the same port — the chain
        converges and forgets its history) or a permutation (identity or
        swap, i.e. an XOR by 0 or 1).  The state before step ``t`` is
        therefore the last convergence value before ``t`` (or the initial
        state) XOR-ed with the parity of swaps in between — all prefix
        scans, no sequential walk and no log-rounds fold.  Strict ``<``
        comparisons keep the lower port on ties, matching the reference.
        """
        np = self._np
        port_a, port_b = self._ports
        head_a = offsets if port_a == 0 else offsets - port_a
        head_b = offsets - port_b
        first_a = abs(int(head_a[0]))
        first_b = abs(int(head_b[0]))
        state = first_b < first_a  # tie → lower port
        total = first_b if state else first_a
        if offsets.size == 1:
            return total
        # Step t serves access t+1; cost_qp = |head_p[t+1] − head_q[t]|.
        cost_aa = np.abs(head_a[1:] - head_a[:-1])
        cost_ab = np.abs(head_b[1:] - head_a[:-1])
        cost_ba = np.abs(head_a[1:] - head_b[:-1])
        cost_bb = np.abs(head_b[1:] - head_b[:-1])
        pick_b0 = cost_ab < cost_aa  # next state given previous state 0
        pick_b1 = cost_bb < cost_ba  # next state given previous state 1
        min0 = np.where(pick_b0, cost_ab, cost_aa)
        min1 = np.where(pick_b1, cost_bb, cost_ba)
        const = pick_b0 == pick_b1
        swap_flag = pick_b0 & ~const
        inclusive = np.bitwise_xor.accumulate(swap_flag)
        prefix = np.empty_like(inclusive)
        prefix[0] = False
        prefix[1:] = inclusive[:-1]
        # vals[j] carries a const step's output back to prefix-XOR space so
        # that state_before[t] = vals[j] ^ prefix[t] for the last const j < t.
        vals = pick_b0 ^ inclusive
        steps = offsets.size - 1
        anchors = np.where(const, np.arange(steps), -1)
        np.maximum.accumulate(anchors, out=anchors)
        last_const = np.empty_like(anchors)
        last_const[0] = -1
        last_const[1:] = anchors[:-1]
        base = np.where(
            last_const >= 0, vals[np.maximum(last_const, 0)], state
        )
        states = base ^ prefix
        return total + int(np.where(states, min1, min0).sum())

    def _positions_of_dbc(self, dbc: int):
        cached = self._dbc_positions.get(dbc)
        if cached is None:
            cached = self._merged_positions(self._members.get(dbc, ()))
            self._dbc_positions[dbc] = cached
        return cached

    # ------------------------------------------------------------------
    # Delta computation
    # ------------------------------------------------------------------
    def _compute(self, changes: Mapping[int, tuple[int, int]]):
        """(delta, commit-info) for moving each item index to a new slot."""
        self.delta_evaluations += 1
        if self._eager:
            delta = 0
            new_item_costs: dict[int, int] = {}
            for i, (_dbc, offset) in changes.items():
                cost = self._freq[i] * self._eager_dist[offset]
                new_item_costs[i] = cost
                delta += cost - self._item_cost[i]
            return delta, new_item_costs
        affected: set[int] = set()
        for i, (dbc, _offset) in changes.items():
            affected.add(self._dbc[i])
            affected.add(dbc)
        # Temporarily poke the hypothetical offsets into the gather array.
        saved = [(i, int(self._offset_np[i])) for i in changes]
        for i, (_dbc, offset) in changes.items():
            self._offset_np[i] = offset
        new_costs: dict[int, tuple[int, object]] = {}
        delta = 0
        try:
            for dbc in affected:
                base = self._members.get(dbc, set())
                outgoing = {
                    i for i in changes
                    if self._dbc[i] == dbc and changes[i][0] != dbc
                }
                incoming = {
                    i for i in changes
                    if changes[i][0] == dbc and self._dbc[i] != dbc
                }
                if outgoing or incoming:
                    if self._kernel is not None:
                        # Walk (base \ outgoing) ∪ incoming merged on the
                        # fly — no concatenate/sort per probe.  The merged
                        # positions are only materialised if the move is
                        # actually committed (see ``_apply``).
                        cost = self._kernel.lazy_merge_cost(
                            self._positions_of_dbc(dbc),
                            self._item_positions_union(outgoing),
                            self._item_positions_union(incoming),
                            self._item_at,
                            self._offset_np,
                            self._ports_np,
                        )
                        payload: object = frozenset(
                            (base - outgoing) | incoming
                        )
                    else:
                        positions = self._merged_positions(
                            (base - outgoing) | incoming
                        )
                        cost = self._lazy_dbc_cost(positions)
                        payload = positions
                else:
                    cost = self._lazy_dbc_cost(self._positions_of_dbc(dbc))
                    payload = None
                new_costs[dbc] = (cost, payload)
                delta += cost - self._dbc_cost.get(dbc, 0)
        finally:
            for i, offset in saved:
                self._offset_np[i] = offset
        return delta, new_costs

    def _probe_delta(self, changes: dict[int, tuple[int, int]]) -> int:
        key = tuple(sorted(changes.items()))
        delta, info = self._compute(changes)
        self._probe = (key, delta, info)
        return delta

    def _changes_for_swap(self, item_a: str, item_b: str):
        try:
            a = self._index[item_a]
            b = self._index[item_b]
        except KeyError as exc:
            raise PlacementError(
                f"item {exc.args[0]!r} is not part of the problem trace"
            ) from None
        return {
            a: (self._dbc[b], self._offset[b]),
            b: (self._dbc[a], self._offset[a]),
        }

    def _changes_for_move(self, item: str, slot: Slot | tuple[int, int]):
        slot = slot if isinstance(slot, Slot) else Slot(*slot)
        try:
            i = self._index[item]
        except KeyError:
            raise PlacementError(
                f"item {item!r} is not part of the problem trace"
            ) from None
        target = (slot.dbc, slot.offset)
        if target != (self._dbc[i], self._offset[i]) and target in self._occupied:
            raise PlacementError(
                f"slot {slot} is occupied; moves require a free slot"
            )
        return {i: target}

    def _changes_for_reversal(self, dbc: int, offsets: Sequence[int]):
        contents = self.dbc_contents(dbc)
        changes: dict[int, tuple[int, int]] = {}
        for source, target in zip(offsets, reversed(list(offsets))):
            if source not in contents:
                raise PlacementError(
                    f"offset {source} on DBC {dbc} holds no item"
                )
            item = contents[source]
            if item in self._extra:
                raise PlacementError(
                    f"cannot reverse over untraced item {item!r}"
                )
            changes[self._index[item]] = (dbc, target)
        return changes

    # ------------------------------------------------------------------
    # Public deltas (no state change)
    # ------------------------------------------------------------------
    def swap_delta(self, item_a: str, item_b: str) -> int:
        """Cost change if the two items' slots were exchanged."""
        return self._probe_delta(self._changes_for_swap(item_a, item_b))

    def move_delta(self, item: str, slot: Slot | tuple[int, int]) -> int:
        """Cost change if ``item`` moved to the (free) ``slot``."""
        return self._probe_delta(self._changes_for_move(item, slot))

    def reversal_delta(self, dbc: int, offsets: Sequence[int]) -> int:
        """Cost change if the occupied ``offsets`` of ``dbc`` were reversed.

        ``offsets`` lists occupied offsets in ascending order; the items at
        those offsets are re-laid in reverse (the 2-opt move).
        """
        return self._probe_delta(self._changes_for_reversal(dbc, offsets))

    # ------------------------------------------------------------------
    # Apply / undo
    # ------------------------------------------------------------------
    def _apply(self, changes: dict[int, tuple[int, int]]) -> int:
        key = tuple(sorted(changes.items()))
        if self._probe is not None and self._probe[0] == key:
            _key, delta, info = self._probe
        else:
            delta, info = self._compute(changes)
        self._probe = None
        record_slots = [
            (i, self._dbc[i], self._offset[i]) for i in changes
        ]
        if self._eager:
            record_costs = [(i, self._item_cost[i]) for i in changes]
            for i, cost in info.items():
                self._item_cost[i] = cost
            record = ("eager", record_slots, record_costs, delta)
        else:
            affected = list(info)
            record_costs = [
                (dbc, self._dbc_cost.get(dbc, 0), self._dbc_positions.get(dbc))
                for dbc in affected
            ]
            for dbc, (cost, payload) in info.items():
                self._dbc_cost[dbc] = cost
                if payload is None:
                    continue
                if isinstance(payload, frozenset):
                    # Compiled-kernel probes defer materialisation of the
                    # merged position array to commit time.
                    self._dbc_positions[dbc] = self._merged_positions(payload)
                else:
                    self._dbc_positions[dbc] = payload
            record = ("lazy", record_slots, record_costs, delta)
        self._reassign(changes.items())
        self._total += delta
        self._undo.append(record)
        self.applied_moves += 1
        return self._total

    def _reassign(self, assignments) -> None:
        """Commit new (dbc, offset) slots, keeping occupancy/members in sync."""
        assignments = list(assignments)
        for i, _slot in assignments:
            self._occupied.discard((self._dbc[i], self._offset[i]))
        for i, (dbc, offset) in assignments:
            old_dbc = self._dbc[i]
            if old_dbc != dbc:
                self._members[old_dbc].discard(i)
                self._members.setdefault(dbc, set()).add(i)
            self._dbc[i] = dbc
            self._offset[i] = offset
            self._offset_np[i] = offset
            self._occupied.add((dbc, offset))

    def apply_swap(self, item_a: str, item_b: str) -> int:
        """Exchange the two items' slots; returns the new total."""
        return self._apply(self._changes_for_swap(item_a, item_b))

    def apply_move(self, item: str, slot: Slot | tuple[int, int]) -> int:
        """Move ``item`` to the free ``slot``; returns the new total."""
        return self._apply(self._changes_for_move(item, slot))

    def apply_reversal(self, dbc: int, offsets: Sequence[int]) -> int:
        """Reverse the items at ``offsets`` on ``dbc``; returns the total."""
        return self._apply(self._changes_for_reversal(dbc, offsets))

    def undo(self) -> int:
        """Revert the most recent applied move; returns the restored total."""
        if not self._undo:
            raise PlacementError("nothing to undo")
        kind, record_slots, record_costs, delta = self._undo.pop()
        self._reassign((i, (dbc, offset)) for i, dbc, offset in record_slots)
        if kind == "eager":
            for i, cost in record_costs:
                self._item_cost[i] = cost
        else:
            for dbc, cost, positions in record_costs:
                self._dbc_cost[dbc] = cost
                if positions is None:
                    self._dbc_positions.pop(dbc, None)
                else:
                    self._dbc_positions[dbc] = positions
        self._total -= delta
        self._probe = None
        return self._total
