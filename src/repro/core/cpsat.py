"""CP-SAT backend for the MinLA placement model (optional OR-Tools).

``repro.core.ilp`` keeps the paper's ILP as an explicit, exportable
formulation; this module is the *solver* behind it.  When OR-Tools is
installed, :func:`solve_minla_cpsat` builds the CP-SAT position model —

* ``pos[v] ∈ [0, n-1]`` position variables under ``AllDifferent``;
* ``d[u,v] ∈ [1, n-1]`` distance variables tied to ``|pos[u] − pos[v]|``
  (the lower bound of 1 is valid because positions are all-different, and
  it lets the solver certify chain-structured instances instantly);
* objective ``min Σ w(u,v)·d[u,v]``;
* **mirror symmetry breaking** — every arrangement and its reflection
  cost the same, so the heaviest-degree item is pinned to the lower half
  (``2·pos[anchor] ≤ n−1``), halving the search space;
* **warm start** — the chain/heuristic order is supplied via
  ``AddHint`` so the solver starts from a good incumbent.

Solving is fully deterministic (one worker, fixed seed).  When OR-Tools
is absent — it is an optional dependency — :func:`solve_minla` degrades
along the declarative ``ilp`` chain (``cpsat → dp → enumeration``,
:data:`repro.robust.DEGRADATION_CHAINS`), recording the downgrade through
:func:`repro.robust.record_degradation`, and raises a typed
:class:`~repro.errors.OptimizationError` when the instance exceeds every
remaining backend's budget instead of silently grinding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.cost import linear_arrangement_cost
from repro.core.exact import MAX_DP_ITEMS, minla_exact_order
from repro.core.ordering import greedy_chain_order
from repro.errors import OptimizationError
from repro.robust import record_degradation

__all__ = [
    "CPSAT_MAX_ITEMS",
    "DEFAULT_TIME_LIMIT",
    "MinlaSolution",
    "cpsat_available",
    "solve_minla",
    "solve_minla_cpsat",
]

#: Item-count cap for the CP-SAT model (certified optima reach hundreds of
#: items on structured affinity graphs; beyond this the model itself gets
#: unwieldy).
CPSAT_MAX_ITEMS = 400

#: Default solver wall-clock budget in seconds.
DEFAULT_TIME_LIMIT = 10.0


@dataclass(frozen=True)
class MinlaSolution:
    """One solved MinLA instance: order, objective, provenance."""

    order: tuple[str, ...]
    cost: int
    backend: str  # "cpsat" | "dp" | "enumeration"
    certified: bool  # True iff the backend proved optimality

    def to_dict(self) -> dict:
        return {
            "order": list(self.order),
            "cost": self.cost,
            "backend": self.backend,
            "certified": self.certified,
        }


def cpsat_available() -> bool:
    """Whether the optional OR-Tools CP-SAT solver can be imported."""
    try:
        from ortools.sat.python import cp_model  # noqa: F401
    except Exception:  # pragma: no cover - exercised on the no-ortools leg
        return False
    return True


def _clean_pairs(
    items: Sequence[str],
    affinity: dict[tuple[str, str], int],
) -> list[tuple[str, str, int]]:
    """Canonical positive-weight pairs restricted to ``items``, merged."""
    member = {item: index for index, item in enumerate(items)}
    merged: dict[tuple[str, str], int] = {}
    for (left, right), weight in affinity.items():
        if left in member and right in member and left != right and weight > 0:
            key = (left, right) if member[left] < member[right] else (right, left)
            merged[key] = merged.get(key, 0) + weight
    return sorted(
        (left, right, weight) for (left, right), weight in merged.items()
    )


def solve_minla_cpsat(
    items: Sequence[str],
    affinity: dict[tuple[str, str], int],
    time_limit: float = DEFAULT_TIME_LIMIT,
    warm_start: Sequence[str] | None = None,
) -> MinlaSolution:
    """Solve one MinLA instance with CP-SAT (requires OR-Tools).

    Raises :class:`~repro.errors.OptimizationError` if OR-Tools is absent,
    the instance exceeds :data:`CPSAT_MAX_ITEMS`, or the solver finds no
    feasible arrangement inside ``time_limit`` (with a warm start supplied
    the hint is always feasible, so that last case means a solver bug).
    """
    if not cpsat_available():
        raise OptimizationError(
            "OR-Tools is not installed; solve_minla_cpsat needs the "
            "optional ortools dependency"
        )
    from ortools.sat.python import cp_model

    items = list(items)
    n = len(items)
    if n == 0:
        raise OptimizationError("cannot solve a MinLA instance over zero items")
    if n > CPSAT_MAX_ITEMS:
        raise OptimizationError(
            f"CP-SAT MinLA supports at most {CPSAT_MAX_ITEMS} items, got {n}"
        )
    if n == 1:
        return MinlaSolution((items[0],), 0, "cpsat", True)
    pairs = _clean_pairs(items, affinity)
    model = cp_model.CpModel()
    pos = {item: model.NewIntVar(0, n - 1, f"pos_{i}") for i, item in enumerate(items)}
    model.AddAllDifferent(list(pos.values()))
    objective_terms = []
    for left, right, weight in pairs:
        diff = model.NewIntVar(-(n - 1), n - 1, f"diff_{left}_{right}")
        model.Add(diff == pos[left] - pos[right])
        # Positions are AllDifferent, so |pos[left] - pos[right]| >= 1; the
        # tightened domain lets propagation alone certify chain instances.
        dist = model.NewIntVar(1, n - 1, f"d_{left}_{right}")
        model.AddAbsEquality(dist, diff)
        objective_terms.append(weight * dist)
    model.Minimize(sum(objective_terms))
    # Mirror symmetry: reflection preserves cost; pin the heaviest-degree
    # item (ties by first-touch rank) into the lower half.
    degree = {item: 0 for item in items}
    for left, right, weight in pairs:
        degree[left] += weight
        degree[right] += weight
    rank = {item: index for index, item in enumerate(items)}
    anchor = max(items, key=lambda item: (degree[item], -rank[item]))
    model.Add(2 * pos[anchor] <= n - 1)
    hint = list(warm_start) if warm_start is not None else greedy_chain_order(
        items, affinity
    )
    if sorted(hint) == sorted(items):
        hint_pos = {item: position for position, item in enumerate(hint)}
        # Respect the symmetry-breaking constraint: reflect the hint if it
        # puts the anchor in the upper half (reflection preserves cost).
        if 2 * hint_pos[anchor] > n - 1:
            hint_pos = {item: n - 1 - position for item, position in hint_pos.items()}
        for item in items:
            model.AddHint(pos[item], hint_pos[item])
    solver = cp_model.CpSolver()
    solver.parameters.max_time_in_seconds = float(time_limit)
    solver.parameters.num_search_workers = 1
    solver.parameters.random_seed = 0
    status = solver.Solve(model)
    if status not in (cp_model.OPTIMAL, cp_model.FEASIBLE):
        raise OptimizationError(
            f"CP-SAT found no arrangement within {time_limit}s "
            f"(status {solver.StatusName(status)})"
        )
    order = tuple(
        sorted(items, key=lambda item: solver.Value(pos[item]))
    )
    cost = linear_arrangement_cost(list(order), affinity)
    return MinlaSolution(order, cost, "cpsat", status == cp_model.OPTIMAL)


#: Permutation budget for the enumeration backend (8! = 40320).
ENUMERATION_MAX_ITEMS = 8


def solve_minla(
    items: Sequence[str],
    affinity: dict[tuple[str, str], int],
    time_limit: float = DEFAULT_TIME_LIMIT,
    warm_start: Sequence[str] | None = None,
) -> MinlaSolution:
    """Solve MinLA with the best available backend (the ``ilp`` chain).

    Best-first: CP-SAT (optional dependency, certifies up to hundreds of
    items), then the subset DP (``n ≤ 16``), then permutation enumeration
    through the generic ILP formulation checker (``n ≤ 8``).  Each skipped
    level records a degradation on the ``ilp`` chain; when no backend can
    take the instance a typed error names the tightest budget exceeded.
    """
    items = list(items)
    n = len(items)
    if n == 0:
        raise OptimizationError("cannot solve a MinLA instance over zero items")
    if cpsat_available():
        if n <= CPSAT_MAX_ITEMS:
            return solve_minla_cpsat(
                items, affinity, time_limit=time_limit, warm_start=warm_start
            )
        raise OptimizationError(
            f"instance of {n} items exceeds the CP-SAT cap "
            f"({CPSAT_MAX_ITEMS} items)"
        )
    record_degradation(
        "ilp", "cpsat", "dp", "ortools unavailable", warn=False
    )
    if n <= MAX_DP_ITEMS:
        order = minla_exact_order(items, affinity)
        return MinlaSolution(
            tuple(order),
            linear_arrangement_cost(order, affinity),
            "dp",
            True,
        )
    record_degradation(
        "ilp",
        "dp",
        "enumeration",
        f"{n} items exceed the subset-DP cap ({MAX_DP_ITEMS})",
        warn=False,
    )
    if n <= ENUMERATION_MAX_ITEMS:
        from repro.core.ilp import solve_by_enumeration

        order, value = solve_by_enumeration(items, affinity, max_items=n)
        return MinlaSolution(tuple(order), int(value), "enumeration", True)
    raise OptimizationError(
        f"instance of {n} items exceeds every available MinLA backend: "
        f"install ortools for CP-SAT (≤{CPSAT_MAX_ITEMS} items), or stay "
        f"within the subset DP (≤{MAX_DP_ITEMS}) / enumeration "
        f"(≤{ENUMERATION_MAX_ITEMS}) budgets"
    )
