"""Exact placement search for small instances (the paper's OPT column).

The published paper solves small instances optimally with an ILP; no ILP
solver is available offline, so we provide two exact substitutes that compute
the same optima:

* :func:`minla_exact_order` — optimal linear arrangement of one DBC's items
  by dynamic programming over subsets (the prefix-cut formulation of MinLA):
  placing items left to right, the total cost ``Σ w(u,v)·|pos u − pos v|``
  equals ``Σ_k cut(prefix_k)``, so ``f(S) = cut(S) + min_{u∈S} f(S∖{u})``.
  Exact for the single-DBC / single-port / lazy-policy objective; O(2ⁿ·n).
* :func:`exhaustive_placement` — true-trace-cost brute force for very small
  item counts: per item subset it enumerates every within-group order and
  every offset assignment (all ``C(L, k)`` combinations while that count
  stays under :data:`MAX_OFFSET_COMBINATIONS`, else every contiguous
  window), then combines subset optima with a partition DP over the per-DBC
  cost decomposition.  Exact whenever the full combination enumeration
  applies — in particular for every single-port-lazy geometry (contiguous
  windows are optimal there) and every eager geometry (solved directly by
  frequency/offset pairing); see :func:`exhaustive_search_is_exact`.

Both raise :class:`OptimizationError` beyond their size guards rather than
silently taking hours.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, Sequence

from repro.core.cost import evaluate_placement, linear_arrangement_cost
from repro.core.ordering import restricted_sequence_cost
from repro.core.placement import Placement, Slot
from repro.core.problem import PlacementProblem
from repro.dwm.config import DWMConfig
from repro.errors import OptimizationError

#: Hard cap for the subset DP (2^n states with an n-way min each).
MAX_DP_ITEMS = 16

#: Hard cap for the brute-force search over grouped placements.
MAX_BRUTE_FORCE_ITEMS = 7

#: Per-subset cap on full offset-combination enumeration in the brute
#: force; beyond it the search falls back to contiguous anchor windows
#: (optimal for single-port lazy, best-effort for multi-port lazy).
MAX_OFFSET_COMBINATIONS = 4096


def minla_exact_order(
    items: Sequence[str],
    affinity: dict[tuple[str, str], int],
    first_item: str | None = None,
    approach_costs: Sequence[int] | None = None,
) -> list[str]:
    """Optimal MinLA order of ``items`` under the pairwise affinity objective.

    Dynamic program over prefix subsets; see module docstring.  Ties resolve
    deterministically (lowest item index first).

    When ``first_item`` is given, the objective additionally charges the
    port-approach cost of the position ``first_item`` ends up at:
    ``approach_costs[q]`` for position ``q`` when ``approach_costs`` is
    supplied, else ``q`` itself (+1 per item placed before it — the
    port-at-offset-0, anchored-at-0 special case).  ``approach_costs`` lets
    callers model an arbitrary port position with anchor freedom exactly:
    pass ``min over feasible starts of |start + q - port|`` per position.
    """
    items = list(items)
    n = len(items)
    if n == 0:
        return []
    if n > MAX_DP_ITEMS:
        raise OptimizationError(
            f"minla_exact_order supports at most {MAX_DP_ITEMS} items, got {n}"
        )
    if approach_costs is not None and first_item is None:
        raise OptimizationError("approach_costs requires first_item")
    if approach_costs is not None and len(approach_costs) < n:
        raise OptimizationError(
            f"approach_costs needs {n} entries, got {len(approach_costs)}"
        )
    first_index = items.index(first_item) if first_item is not None else -1
    penalties = (
        list(approach_costs) if approach_costs is not None else list(range(n))
    )
    index = {item: i for i, item in enumerate(items)}
    # weights[i][j] symmetric matrix of affinities among the given items.
    weights = [[0] * n for _ in range(n)]
    for (left, right), weight in affinity.items():
        if left in index and right in index and left != right:
            i, j = index[left], index[right]
            weights[i][j] += weight
            weights[j][i] += weight
    row_totals = [sum(row) for row in weights]

    full = (1 << n) - 1
    # f[S] = minimal Σ cut(prefix) over orders of S as the prefix set.
    INF = float("inf")
    f = [INF] * (1 << n)
    parent = [-1] * (1 << n)
    f[0] = 0
    # cut(S) = Σ_{i∈S, j∉S} w(i,j); computed incrementally per transition:
    # cut(S) = cut(S\{u}) + row_totals[u] - 2 * w(u, S\{u}).
    cut = [0] * (1 << n)
    for mask in range(1, 1 << n):
        low_bit = mask & -mask
        u = low_bit.bit_length() - 1
        rest = mask ^ low_bit
        w_u_rest = 0
        probe = rest
        while probe:
            bit = probe & -probe
            v = bit.bit_length() - 1
            w_u_rest += weights[u][v]
            probe ^= bit
        cut[mask] = cut[rest] + row_totals[u] - 2 * w_u_rest
    first_bit = (1 << first_index) if first_index >= 0 else 0
    for mask in range(1, 1 << n):
        position = mask.bit_count() - 1
        best = INF
        best_u = -1
        probe = mask
        while probe:
            bit = probe & -probe
            u = bit.bit_length() - 1
            candidate = f[mask ^ bit]
            # Charge the port-approach penalty of the position the trace's
            # first item lands at (it is placed as the prefix's last element,
            # i.e. at index |mask| - 1).
            if bit == first_bit:
                candidate += penalties[position]
            if candidate < best:
                best = candidate
                best_u = u
            probe ^= bit
        f[mask] = best + cut[mask]
        parent[mask] = best_u
    # Recover the order: parent[full] is the last-placed item of the prefix
    # == the item at the highest position.
    order_indices: list[int] = []
    mask = full
    while mask:
        u = parent[mask]
        order_indices.append(u)
        mask ^= 1 << u
    order_indices.reverse()
    return [items[i] for i in order_indices]


def minla_optimal_cost(
    items: Sequence[str],
    affinity: dict[tuple[str, str], int],
) -> int:
    """Optimal MinLA objective value for ``items`` (see DP above)."""
    order = minla_exact_order(items, affinity)
    return linear_arrangement_cost(order, affinity)


def _offset_candidates(size: int, config: DWMConfig) -> Iterator[tuple[int, ...]]:
    """Ascending offset tuples a group of ``size`` items may occupy.

    Full ``C(L, size)`` enumeration while it fits the combination cap (the
    exact search space — multi-port optima may need gaps to straddle
    ports); contiguous windows beyond it (optimal for single-port lazy by
    the compaction argument, best-effort otherwise).
    """
    words = config.words_per_dbc
    if math.comb(words, size) <= MAX_OFFSET_COMBINATIONS:
        yield from itertools.combinations(range(words), size)
    else:
        for start in range(words - size + 1):
            yield tuple(range(start, start + size))


def exhaustive_search_is_exact(config: DWMConfig, num_items: int) -> bool:
    """Whether :func:`exhaustive_placement` provably reaches the optimum.

    True for every eager or single-port geometry, and for multi-port lazy
    geometries whose offset combinations are fully enumerable.
    """
    from repro.dwm.config import PortPolicy

    if config.port_policy is PortPolicy.EAGER or config.num_ports == 1:
        return True
    largest = min(num_items, config.words_per_dbc)
    return all(
        math.comb(config.words_per_dbc, size) <= MAX_OFFSET_COMBINATIONS
        for size in range(1, largest + 1)
    )


def _eager_group_layout(
    members: list[str],
    config: DWMConfig,
    frequencies: dict[str, int],
) -> tuple[int, dict[str, int]]:
    """Optimal eager layout of one group: hot items on cheap offsets.

    Each eager access costs ``2·dist(offset, nearest port)`` independently
    of history, so pairing descending frequencies with ascending offset
    costs is exact (rearrangement inequality).
    """
    ranked = sorted(members, key=lambda item: (-frequencies.get(item, 0), item))
    ports = config.port_offsets
    by_cost = sorted(
        range(config.words_per_dbc),
        key=lambda offset: (min(abs(offset - port) for port in ports), offset),
    )
    offsets = {item: by_cost[rank] for rank, item in enumerate(ranked)}
    cost = sum(
        frequencies.get(item, 0)
        * 2
        * min(abs(offset - port) for port in ports)
        for item, offset in offsets.items()
    )
    return cost, offsets


def _lazy_group_layout(
    problem: PlacementProblem,
    members: list[str],
) -> tuple[int, dict[str, int]]:
    """Optimal lazy layout of one group by order × offset enumeration."""
    config = problem.config
    restricted = problem.trace.restricted_to(members)
    if len(restricted) == 0:
        return 0, {item: index for index, item in enumerate(members)}
    best_cost: int | None = None
    best_offsets: dict[str, int] | None = None
    for order in itertools.permutations(members):
        for chosen in _offset_candidates(len(members), config):
            offsets = dict(zip(order, chosen))
            cost = restricted_sequence_cost(restricted, offsets, config)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_offsets = offsets
                if best_cost == 0:
                    return best_cost, best_offsets
    assert best_cost is not None and best_offsets is not None
    return best_cost, best_offsets


def exhaustive_placement(
    problem: PlacementProblem,
    max_items: int = MAX_BRUTE_FORCE_ITEMS,
) -> Placement:
    """True-cost brute force via the per-DBC cost decomposition.

    A placement's cost is the sum of each DBC's cost on its *restricted*
    subsequence (docs/COST_MODEL.md §2), so the search solves each item
    subset exactly — every within-group order crossed with every offset
    assignment from :func:`_offset_candidates`, scored by the exact
    restricted-sequence evaluator (eager groups are solved directly by
    frequency/offset pairing) — and combines subset optima with a partition
    DP.  Exponential; guarded to ``max_items`` items.  Exact whenever
    :func:`exhaustive_search_is_exact` holds for the geometry.
    """
    from repro.core.exact_partition import partition_minimum
    from repro.dwm.config import PortPolicy

    items = list(problem.items)
    n = len(items)
    if n > max_items:
        raise OptimizationError(
            f"exhaustive_placement supports at most {max_items} items, "
            f"got {n}"
        )
    config = problem.config
    capacity = config.words_per_dbc
    eager = config.port_policy is PortPolicy.EAGER
    frequencies = dict(problem.trace.frequencies())
    group_cost: dict[int, int] = {}
    group_layout: dict[int, dict[str, int]] = {}
    for mask in range(1, 1 << n):
        if mask.bit_count() > capacity:
            continue
        members = [items[i] for i in range(n) if mask >> i & 1]
        if eager:
            cost, offsets = _eager_group_layout(members, config, frequencies)
        else:
            cost, offsets = _lazy_group_layout(problem, members)
        group_cost[mask] = cost
        group_layout[mask] = offsets
    _, groups = partition_minimum(group_cost, n, min(config.num_dbcs, n))
    mapping: dict[str, Slot] = {}
    for dbc, mask in enumerate(groups):
        for item, offset in group_layout[mask].items():
            mapping[item] = Slot(dbc, offset)
    return Placement(mapping)


def exact_single_dbc_placement(problem: PlacementProblem) -> Placement:
    """Optimal single-DBC placement via the MinLA DP, port-anchored.

    Requires all items to fit in one DBC (single port, lazy policy).  The
    trace cost of an order anchored at ``start`` is its pairwise MinLA cost
    plus the initial port approach ``|start + index(first) − port|``.  The
    pairwise part is anchor-independent, so minimising over starts leaves
    ``approach(q) = min over starts of |start + q − port|`` — a function of
    the first item's position ``q`` only — which the DP charges exactly via
    ``approach_costs``.  The pure MinLA variant is kept as a cheap extra
    candidate; every feasible anchor of each order (and its reversal) is
    scored with the exact evaluator.
    """
    from repro.dwm.config import PortPolicy

    config = problem.config
    if config.num_ports != 1:
        raise OptimizationError(
            "exact_single_dbc_placement is exact only for single-port DBCs; "
            "use exhaustive_placement for small multi-port instances"
        )
    if config.port_policy is not PortPolicy.LAZY:
        raise OptimizationError(
            "exact_single_dbc_placement requires the lazy shift policy"
        )
    if problem.num_items > config.words_per_dbc:
        raise OptimizationError(
            f"{problem.num_items} items exceed a single DBC "
            f"({config.words_per_dbc} words)"
        )
    items = list(problem.items)
    first_item = problem.trace[0].item
    port = config.port_offsets[0]
    max_start = config.words_per_dbc - len(items)
    approach = [
        max(0, q - port, port - q - max_start) for q in range(len(items))
    ]
    orders = [
        minla_exact_order(items, problem.affinity),
        minla_exact_order(
            items,
            problem.affinity,
            first_item=first_item,
            approach_costs=approach,
        ),
    ]
    best_cost: int | None = None
    best_placement: Placement | None = None
    for order in orders:
        reversed_order = list(reversed(order))
        for candidate_order in (order, reversed_order):
            for start in range(max_start + 1):
                placement = Placement(
                    {
                        item: Slot(0, start + position)
                        for position, item in enumerate(candidate_order)
                    }
                )
                cost = evaluate_placement(problem, placement, validate=False)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_placement = placement
    assert best_placement is not None
    return best_placement
