"""Exact placement search for small instances (the paper's OPT column).

The published paper solves small instances optimally with an ILP; no ILP
solver is available offline, so we provide two exact substitutes that compute
the same optima:

* :func:`minla_exact_order` — optimal linear arrangement of one DBC's items
  by dynamic programming over subsets (the prefix-cut formulation of MinLA):
  placing items left to right, the total cost ``Σ w(u,v)·|pos u − pos v|``
  equals ``Σ_k cut(prefix_k)``, so ``f(S) = cut(S) + min_{u∈S} f(S∖{u})``.
  Exact for the single-DBC / single-port / lazy-policy objective; O(2ⁿ·n).
* :func:`exhaustive_placement` — true-trace-cost brute force over grouped,
  ordered, port-anchored placements for very small item counts; exact for
  the multi-DBC problem restricted to contiguous anchored blocks (the class
  every algorithm here emits).

Both raise :class:`OptimizationError` beyond their size guards rather than
silently taking hours.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.core.cost import evaluate_placement, linear_arrangement_cost
from repro.core.ordering import anchored_offsets
from repro.core.placement import Placement, Slot
from repro.core.problem import PlacementProblem
from repro.errors import OptimizationError

#: Hard cap for the subset DP (2^n states with an n-way min each).
MAX_DP_ITEMS = 16

#: Hard cap for the brute-force search over grouped placements.
MAX_BRUTE_FORCE_ITEMS = 7


def minla_exact_order(
    items: Sequence[str],
    affinity: dict[tuple[str, str], int],
    first_item: str | None = None,
) -> list[str]:
    """Optimal MinLA order of ``items`` under the pairwise affinity objective.

    Dynamic program over prefix subsets; see module docstring.  Ties resolve
    deterministically (lowest item index first).

    When ``first_item`` is given, the objective additionally charges +1 for
    every item placed before it — exactly the initial port-approach cost of
    a trace starting with that item on a DBC whose port sits at offset 0
    with the order anchored at offset 0.
    """
    items = list(items)
    n = len(items)
    if n == 0:
        return []
    if n > MAX_DP_ITEMS:
        raise OptimizationError(
            f"minla_exact_order supports at most {MAX_DP_ITEMS} items, got {n}"
        )
    first_index = items.index(first_item) if first_item is not None else -1
    index = {item: i for i, item in enumerate(items)}
    # weights[i][j] symmetric matrix of affinities among the given items.
    weights = [[0] * n for _ in range(n)]
    for (left, right), weight in affinity.items():
        if left in index and right in index and left != right:
            i, j = index[left], index[right]
            weights[i][j] += weight
            weights[j][i] += weight
    row_totals = [sum(row) for row in weights]

    full = (1 << n) - 1
    # f[S] = minimal Σ cut(prefix) over orders of S as the prefix set.
    INF = float("inf")
    f = [INF] * (1 << n)
    parent = [-1] * (1 << n)
    f[0] = 0
    # cut(S) = Σ_{i∈S, j∉S} w(i,j); computed incrementally per transition:
    # cut(S) = cut(S\{u}) + row_totals[u] - 2 * w(u, S\{u}).
    cut = [0] * (1 << n)
    for mask in range(1, 1 << n):
        low_bit = mask & -mask
        u = low_bit.bit_length() - 1
        rest = mask ^ low_bit
        w_u_rest = 0
        probe = rest
        while probe:
            bit = probe & -probe
            v = bit.bit_length() - 1
            w_u_rest += weights[u][v]
            probe ^= bit
        cut[mask] = cut[rest] + row_totals[u] - 2 * w_u_rest
    first_bit = (1 << first_index) if first_index >= 0 else 0
    for mask in range(1, 1 << n):
        best = INF
        best_u = -1
        probe = mask
        while probe:
            bit = probe & -probe
            u = bit.bit_length() - 1
            candidate = f[mask ^ bit]
            # Charge the port-approach penalty when u is placed before the
            # trace's first item (u != first and first not yet in the prefix).
            if first_bit and bit != first_bit and not (mask & first_bit):
                candidate += 1
            if candidate < best:
                best = candidate
                best_u = u
            probe ^= bit
        f[mask] = best + cut[mask]
        parent[mask] = best_u
    # Recover the order: parent[full] is the last-placed item of the prefix
    # == the item at the highest position.
    order_indices: list[int] = []
    mask = full
    while mask:
        u = parent[mask]
        order_indices.append(u)
        mask ^= 1 << u
    order_indices.reverse()
    return [items[i] for i in order_indices]


def minla_optimal_cost(
    items: Sequence[str],
    affinity: dict[tuple[str, str], int],
) -> int:
    """Optimal MinLA objective value for ``items`` (see DP above)."""
    order = minla_exact_order(items, affinity)
    return linear_arrangement_cost(order, affinity)


def _ordered_partitions(items: list[str], max_groups: int, capacity: int):
    """Yield all partitions of ``items`` into ≤ max_groups lists of ≤ capacity.

    Groups are *sets* here (ordering is enumerated separately); to avoid
    symmetric duplicates the first item of each group is its minimum-index
    element.
    """

    def recurse(remaining: list[str], groups: list[list[str]]):
        if not remaining:
            yield [list(group) for group in groups]
            return
        head, rest = remaining[0], remaining[1:]
        for group in groups:
            if len(group) < capacity:
                group.append(head)
                yield from recurse(rest, groups)
                group.pop()
        if len(groups) < max_groups:
            groups.append([head])
            yield from recurse(rest, groups)
            groups.pop()

    yield from recurse(items, [])


def exhaustive_placement(
    problem: PlacementProblem,
    max_items: int = MAX_BRUTE_FORCE_ITEMS,
) -> Placement:
    """True-cost brute force over grouped, ordered, anchored placements.

    Enumerates every partition of the items into at most ``num_dbcs`` groups
    of at most ``L``, every within-group order, and both canonical anchors
    (port-anchored and offset-0), evaluating the *true* trace cost of each.
    Exponential; guarded to ``max_items`` items.  The instance-wide
    :func:`~repro.core.cost.shift_lower_bound` prunes the search: once a
    candidate matches it, no better placement can exist and the scan stops.
    """
    from repro.core.cost import shift_lower_bound

    items = list(problem.items)
    if len(items) > max_items:
        raise OptimizationError(
            f"exhaustive_placement supports at most {max_items} items, "
            f"got {len(items)}"
        )
    config = problem.config
    frequencies = dict(problem.trace.frequencies())
    lower_bound = shift_lower_bound(problem)
    best_cost: int | None = None
    best_placement: Placement | None = None
    for partition in _ordered_partitions(
        items, config.num_dbcs, config.words_per_dbc
    ):
        for ordered_groups in itertools.product(
            *[itertools.permutations(group) for group in partition]
        ):
            candidates = []
            anchored: dict[str, Slot] = {}
            for dbc, group in enumerate(ordered_groups):
                offsets = anchored_offsets(list(group), config, frequencies)
                for item, offset in offsets.items():
                    anchored[item] = Slot(dbc, offset)
            candidates.append(Placement(anchored))
            zeroed: dict[str, Slot] = {}
            for dbc, group in enumerate(ordered_groups):
                for position, item in enumerate(group):
                    zeroed[item] = Slot(dbc, position)
            candidates.append(Placement(zeroed))
            for placement in candidates:
                cost = evaluate_placement(problem, placement, validate=False)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_placement = placement
                    if best_cost <= lower_bound:
                        return best_placement
    assert best_placement is not None
    return best_placement


def exact_single_dbc_placement(problem: PlacementProblem) -> Placement:
    """Optimal single-DBC placement via the MinLA DP, port-anchored.

    Requires all items to fit in one DBC (single port, lazy policy).  The
    trace cost of an order anchored at ``start`` is its pairwise MinLA cost
    plus the initial port approach ``|start + index(first) − port|``; the
    pairwise part is anchor-independent, so:

    * when an anchor can zero the approach term, the pure MinLA optimum is
      the true optimum (both DP variants are swept over all anchors and the
      true evaluator picks the winner);
    * when it cannot (e.g. an end-mounted port with a full DBC), the DP
      variant that charges +1 per item placed before the trace's first item
      models the approach term exactly.

    Both variants are generated, every feasible anchor is tried, and each
    candidate is scored with the exact evaluator.
    """
    config = problem.config
    if problem.num_items > config.words_per_dbc:
        raise OptimizationError(
            f"{problem.num_items} items exceed a single DBC "
            f"({config.words_per_dbc} words)"
        )
    items = list(problem.items)
    first_item = problem.trace[0].item
    orders = [
        minla_exact_order(items, problem.affinity),
        minla_exact_order(items, problem.affinity, first_item=first_item),
    ]
    best_cost: int | None = None
    best_placement: Placement | None = None
    max_start = config.words_per_dbc - len(items)
    for order in orders:
        reversed_order = list(reversed(order))
        for candidate_order in (order, reversed_order):
            for start in range(max_start + 1):
                placement = Placement(
                    {
                        item: Slot(0, start + position)
                        for position, item in enumerate(candidate_order)
                    }
                )
                cost = evaluate_placement(problem, placement, validate=False)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_placement = placement
    assert best_placement is not None
    return best_placement
