"""The paper's contribution: shift-minimizing data placement for DWM."""

from repro.core.allocation import (
    AllocationResult,
    AllocationSimulation,
    DataObject,
    allocate,
    partition_objects,
    simulate_allocation,
)
from repro.core.api import (
    ALGORITHMS,
    build_problem,
    compare_methods,
    optimize_placement,
)
from repro.core.baselines import (
    declaration_order_placement,
    frequency_placement,
    random_placement,
    random_placement_mean_shifts,
)
from repro.core.community import (
    affinity_to_networkx,
    community_groups,
    community_placement,
)
from repro.core.cost import (
    evaluate_placement,
    linear_arrangement_cost,
    per_dbc_costs,
    shift_lower_bound,
    single_dbc_lower_bound,
)
from repro.core.exact_partition import (
    exact_partitioned_placement,
    partition_minimum,
)
from repro.core.fast_eval import (
    evaluate_placement_auto,
    evaluate_placement_fast,
    evaluate_placements_fast,
)
from repro.core.incremental import CostEvaluator
from repro.core.exact import (
    exact_single_dbc_placement,
    exhaustive_placement,
    exhaustive_search_is_exact,
    minla_exact_order,
    minla_optimal_cost,
)
from repro.core.grouping import (
    greedy_min_affinity_grouping,
    intra_group_affinity,
    refine_grouping,
)
from repro.core.heuristic import (
    chain_and_cut_groups,
    declaration_block_groups,
    grouping_only_placement,
    heuristic_placement,
    hot_spread_groups,
    ordering_only_placement,
)
from repro.core.local_search import (
    simulated_annealing,
    swap_refinement,
    two_opt_refinement,
)
from repro.core.ordering import (
    anchored_offsets,
    greedy_chain_order,
    order_groups,
    restricted_affinity,
    weighted_median_index,
)
from repro.core.ilp import (
    ILPModel,
    build_minla_ilp,
    solve_by_enumeration,
    verify_formulation,
)
from repro.core.online import (
    OnlinePlacer,
    OnlineResult,
    compare_static_vs_online,
)
from repro.core.placement import Placement, Slot
from repro.core.reordering import ReorderingResult, reorder_accesses
from repro.core.problem import PlacementProblem, PlacementResult
from repro.core.spectral import fiedler_order, spectral_placement

__all__ = [
    "ALGORITHMS",
    "AllocationResult",
    "AllocationSimulation",
    "DataObject",
    "ILPModel",
    "OnlinePlacer",
    "build_minla_ilp",
    "solve_by_enumeration",
    "verify_formulation",
    "OnlineResult",
    "Placement",
    "ReorderingResult",
    "allocate",
    "reorder_accesses",
    "compare_static_vs_online",
    "partition_objects",
    "simulate_allocation",
    "PlacementProblem",
    "PlacementResult",
    "Slot",
    "anchored_offsets",
    "affinity_to_networkx",
    "build_problem",
    "chain_and_cut_groups",
    "community_groups",
    "community_placement",
    "compare_methods",
    "declaration_block_groups",
    "hot_spread_groups",
    "CostEvaluator",
    "declaration_order_placement",
    "evaluate_placement",
    "evaluate_placement_auto",
    "evaluate_placement_fast",
    "evaluate_placements_fast",
    "shift_lower_bound",
    "exact_partitioned_placement",
    "exact_single_dbc_placement",
    "exhaustive_placement",
    "exhaustive_search_is_exact",
    "partition_minimum",
    "fiedler_order",
    "frequency_placement",
    "greedy_chain_order",
    "greedy_min_affinity_grouping",
    "grouping_only_placement",
    "heuristic_placement",
    "intra_group_affinity",
    "linear_arrangement_cost",
    "minla_exact_order",
    "minla_optimal_cost",
    "optimize_placement",
    "order_groups",
    "ordering_only_placement",
    "per_dbc_costs",
    "random_placement",
    "random_placement_mean_shifts",
    "refine_grouping",
    "restricted_affinity",
    "simulated_annealing",
    "single_dbc_lower_bound",
    "spectral_placement",
    "swap_refinement",
    "two_opt_refinement",
    "weighted_median_index",
]
